"""Setup shim so that `pip install -e .` works without network access.

The environment has no `wheel` package and no network to fetch one, so the
PEP 660 editable path (which needs bdist_wheel) is unavailable; this shim
lets pip fall back to the legacy `setup.py develop` editable install.
All project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()

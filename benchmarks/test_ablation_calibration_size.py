"""Ablation: calibration-dataset size for rounding learning.

The paper chooses its calibration-set sizes empirically (Section VI-A).  This
ablation measures the rounding-learned layer-output MSE as a function of how
many calibration activations each layer sees, on a trained LDM layer: more
calibration data should not make the learned rounding worse, and even a
single sample should beat nothing (round-to-nearest).
"""

from conftest import BENCH_SETTINGS, write_result

from repro import nn
from repro.core import (
    PAPER_CONFIGS,
    RoundingLearningConfig,
    collect_calibration_data,
    learn_rounding,
    search_tensor_format,
)
from repro.core.calibration import quantizable_layer_paths
from repro.experiments.harness import load_benchmark_pipeline

SAMPLE_COUNTS = (1, 2, 4)


def test_ablation_calibration_size(benchmark):
    pipeline = load_benchmark_pipeline("ldm-bedroom", BENCH_SETTINGS)
    config = BENCH_SETTINGS.scale_config(PAPER_CONFIGS["FP4/FP8"])
    calibration = collect_calibration_data(pipeline, config.calibration)

    # Pick the first convolution with enough recorded samples.
    candidates = [(path, layer) for path, layer
                  in quantizable_layer_paths(pipeline.model.unet)
                  if isinstance(layer, nn.Conv2d)
                  and len(calibration.samples(path)) >= max(SAMPLE_COUNTS)]
    path, layer = candidates[0]
    fmt = search_tensor_format(layer.weight.data, 4, num_bias_candidates=15).fmt
    samples = calibration.samples(path)

    def run():
        results = {}
        for count in SAMPLE_COUNTS:
            outcome = learn_rounding(
                layer, fmt, samples[:count],
                RoundingLearningConfig(iterations=40, samples_per_iteration=count,
                                       seed=0))
            results[count] = (outcome.initial_output_mse, outcome.final_output_mse)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"Ablation: calibration samples for rounding learning (layer {path})",
             f"{'samples':>8} {'nearest MSE':>14} {'learned MSE':>14}"]
    for count in SAMPLE_COUNTS:
        before, after = results[count]
        lines.append(f"{count:>8} {before:>14.3e} {after:>14.3e}")
    text = "\n".join(lines)
    write_result("ablation_calibration_size", text)
    print("\n" + text)

    # Every calibration size should at least match round-to-nearest on the
    # objective it optimizes.
    for count in SAMPLE_COUNTS:
        before, after = results[count]
        assert after <= before * 1.05

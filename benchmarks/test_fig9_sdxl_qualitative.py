"""Figure 9: SDXL qualitative comparison (FP32 vs FP8/FP8 vs INT8/INT8).

The paper's SDXL example shows the FP8/FP8 image closely resembling the
full-precision one while the INT8/INT8 image loses scene content entirely.
The reproduction saves the seed-matched images and checks that the FP8 output
is at least as close to the full-precision output as the INT8 output.
"""

from pathlib import Path

import numpy as np

from conftest import RESULTS_DIR, SDXL_ROWS, write_result


def test_fig9_sdxl_qualitative(benchmark, table_cache):
    table = benchmark.pedantic(lambda: table_cache.get("sdxl", labels=SDXL_ROWS),
                               rounds=1, iterations=1)

    reference = table.row("FP32/FP32").generated
    grid = np.stack([table.row(label).generated[:2] for label in SDXL_ROWS])
    RESULTS_DIR.mkdir(exist_ok=True)
    grid_path = Path(RESULTS_DIR) / "fig9_sdxl_qualitative.npy"
    np.save(grid_path, grid)

    lines = ["Figure 9: SDXL qualitative comparison (per-image MSE vs full precision)",
             f"grid saved to {grid_path} with config order {SDXL_ROWS}"]
    drifts = {}
    for label in SDXL_ROWS:
        drift = float(np.mean((table.row(label).generated - reference) ** 2))
        drifts[label] = drift
        lines.append(f"{label:<12} mse vs FP32 = {drift:.3e}")
    text = "\n".join(lines)
    write_result("fig9_sdxl_qualitative", text)
    print("\n" + text)

    assert drifts["FP32/FP32"] == 0.0
    assert drifts["FP8/FP8"] <= drifts["INT8/INT8"] * 1.2

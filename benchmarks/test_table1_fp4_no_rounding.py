"""Table I: FP4 weights without rounding learning degrade output quality.

Paper: with FP4 weights / FP8 activations and plain round-to-nearest, FID
collapses from 22.71 to 262.8 on Stable Diffusion and from 2.95 to 288.2 on
LDM(LSUN-Bedrooms) - the motivation for the gradient-based rounding learning
of Section V-B.

Reproduction shape: for both models the FP4-no-RL row is the farthest of all
configurations from the full-precision model's own generations, by a clear
margin over the FP8 row.
"""

from conftest import write_result


def test_table1_fp4_without_rounding_learning(benchmark, table_cache):
    def run():
        return (table_cache.get("stable-diffusion"), table_cache.get("ldm-bedroom"))

    sd_table, ldm_table = benchmark.pedantic(run, rounds=1, iterations=1)

    fp_ref = "full-precision generated"
    lines = ["Table I: FP4/FP8 without rounding learning, FID vs full-precision "
             "generated reference",
             f"{'model':<18} {'FP8/FP8':>10} {'FP4/FP8 no RL':>14} {'FP4/FP8 (RL)':>13}"]
    for name, table in (("stable-diffusion", sd_table), ("ldm-bedroom", ldm_table)):
        fp8 = table.row("FP8/FP8").metrics[fp_ref]
        no_rl = table.row("FP4/FP8 (no RL)").metrics[fp_ref]
        with_rl = table.row("FP4/FP8").metrics[fp_ref]
        lines.append(f"{name:<18} {fp8.fid:10.4f} {no_rl.fid:14.4f} {with_rl.fid:13.4f}")

        # The no-rounding-learning row must be clearly worse than FP8.
        assert no_rl.sfid > fp8.sfid

    # On the text-to-image model the benefit of rounding learning is clearly
    # visible end to end (paper: FID 262.6 -> 21.75).  On the scaled-down LDM
    # the no-RL row does not collapse, so the two FP4 rows end up comparable
    # there; see EXPERIMENTS.md.
    sd_no_rl = sd_table.row("FP4/FP8 (no RL)").metrics[fp_ref]
    sd_with_rl = sd_table.row("FP4/FP8").metrics[fp_ref]
    assert sd_no_rl.fid > sd_with_rl.fid * 1.5
    assert sd_no_rl.sfid > sd_with_rl.sfid * 1.5

    text = "\n".join(lines)
    write_result("table1_fp4_no_rounding", text)
    print("\n" + text)

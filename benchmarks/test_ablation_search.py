"""Ablations of the format search (Algorithm 1 design choices).

The paper fixes two design choices empirically: 111 bias candidates per
tensor, and searching over all candidate encodings rather than committing to
a single one.  These ablations quantify both on real (trained) U-Net weight
tensors: weight-quantization MSE should improve rapidly with the first few
dozen bias candidates and saturate, and the searched per-tensor encoding
should never be worse than any single fixed encoding.
"""

import numpy as np

from conftest import BENCH_SETTINGS, write_result

from repro.core import (
    FPFormat,
    quantization_mse,
    search_tensor_format,
)
from repro.core.calibration import quantizable_layer_paths
from repro.experiments.harness import load_benchmark_pipeline

BIAS_CANDIDATE_COUNTS = (1, 3, 11, 31, 111)
FIXED_ENCODINGS = ("E2M5", "E3M4", "E4M3", "E5M2")
NUM_LAYERS = 12


def _weight_tensors():
    pipeline = load_benchmark_pipeline("ddim-cifar10", BENCH_SETTINGS)
    layers = quantizable_layer_paths(pipeline.model.unet)[:NUM_LAYERS]
    return [(path, layer.weight.data) for path, layer in layers]


def test_ablation_bias_candidate_count(benchmark):
    weights = _weight_tensors()

    def sweep():
        results = {}
        for count in BIAS_CANDIDATE_COUNTS:
            mses = [search_tensor_format(w, 8, num_bias_candidates=count).mse
                    for _, w in weights]
            results[count] = float(np.mean(mses))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: number of bias candidates vs mean weight-quantization MSE "
             f"({NUM_LAYERS} layers, FP8)",
             f"{'candidates':>10} {'mean MSE':>12}"]
    for count in BIAS_CANDIDATE_COUNTS:
        lines.append(f"{count:>10} {results[count]:>12.3e}")
    text = "\n".join(lines)
    write_result("ablation_bias_candidates", text)
    print("\n" + text)

    # More candidates never hurt, and going from 1 to 111 helps substantially.
    for smaller, larger in zip(BIAS_CANDIDATE_COUNTS, BIAS_CANDIDATE_COUNTS[1:]):
        assert results[larger] <= results[smaller] * (1 + 1e-9)
    assert results[111] < results[1]


def test_ablation_searched_vs_fixed_encoding(benchmark):
    weights = _weight_tensors()

    def sweep():
        searched = [search_tensor_format(w, 8, num_bias_candidates=31).mse
                    for _, w in weights]
        fixed = {}
        for name in FIXED_ENCODINGS:
            fmt = FPFormat.from_name(name)
            fixed[name] = [quantization_mse(w, fmt) for _, w in weights]
        return np.asarray(searched), {k: np.asarray(v) for k, v in fixed.items()}

    searched, fixed = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: per-tensor searched encoding vs fixed encodings "
             "(mean weight MSE, FP8)",
             f"{'encoding':>10} {'mean MSE':>12}"]
    lines.append(f"{'searched':>10} {float(np.mean(searched)):>12.3e}")
    for name in FIXED_ENCODINGS:
        lines.append(f"{name:>10} {float(np.mean(fixed[name])):>12.3e}")
    text = "\n".join(lines)
    write_result("ablation_encodings", text)
    print("\n" + text)

    # The searched format is at least as good as every fixed default-bias
    # encoding on every tensor, and strictly better on average than the best
    # fixed one.
    for name in FIXED_ENCODINGS:
        assert np.all(searched <= fixed[name] + 1e-12)
    best_fixed = min(float(np.mean(fixed[name])) for name in FIXED_ENCODINGS)
    assert float(np.mean(searched)) < best_fixed

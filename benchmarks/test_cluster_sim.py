"""Cluster simulation smoke benchmark: the CI-facing distributed-serving run.

Simulates a multi-tenant, diurnal + bursty trace against a replicated
serving fleet (affinity routing, token-bucket admission, autoscaling) on
one shared :class:`~repro.serving.VirtualClock`, then gates on the
service-level outcomes:

* overall SLO-violation rate stays under a calibrated ceiling;
* every tenant that completed enough requests to have a stable tail sees
  a p99 latency within budget (fairness: admission + routing must not
  starve cold tenants to please hot ones);
* request conservation (offered = admitted + rejected, admitted all
  complete) and byte-identical determinism across two runs of the same
  seed.

Scale is environment-driven: ``CLUSTER_SIM_REQUESTS`` (default 20 000
locally; CI's cluster-sim-smoke job sets 100 000).  Virtual time makes
the result an exact function of (trace, config) — wall load on the
runner cannot flake the gate.  The full ``cluster_report.json`` lands in
``benchmarks/results/`` and is uploaded as a CI artifact.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/test_cluster_sim.py -q``
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.serving.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    TraceConfig,
    generate_trace,
    run_cluster_sim,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

NUM_REQUESTS = int(os.environ.get("CLUSTER_SIM_REQUESTS", "20000"))
NUM_REPLICAS = 4
SEED = 2024

#: Calibrated gates: measured violation rate 0.16 at 2e4 requests / 0.12
#: at 1e5, max gated tenant p99 7.1 s / 5.5 s (the tail rides how bursts
#: align with autoscaler warmup, so the short trace is the worse case).
#: Thresholds leave headroom for config drift without letting a real
#: admission/routing break through.
MAX_SLO_VIOLATION_RATE = 0.20
MAX_TENANT_P99_S = 8.0
#: Tail percentiles need mass: tenants below this completion count get a
#: conservation check but no p99 gate.
MIN_REQUESTS_FOR_TAIL = 200


def cluster_config() -> ClusterConfig:
    return ClusterConfig(
        initial_replicas=NUM_REPLICAS,
        policy="affinity",
        autoscaler=AutoscalerConfig(min_replicas=NUM_REPLICAS,
                                    max_replicas=2 * NUM_REPLICAS,
                                    target_utilization=0.5,
                                    cooldown_seconds=30.0),
    )


@pytest.fixture(scope="module")
def report():
    trace = generate_trace(TraceConfig(num_requests=NUM_REQUESTS, seed=SEED))
    path = RESULTS_DIR / "cluster_report.json"
    return run_cluster_sim(trace, cluster_config(), report_path=path)


def test_report_written(report):
    path = RESULTS_DIR / "cluster_report.json"
    assert path.exists()
    on_disk = json.loads(path.read_text())
    assert on_disk["schema"] == "cluster_report/v1"
    assert on_disk["trace"]["num_requests"] == NUM_REQUESTS


def test_request_conservation(report):
    requests = report["requests"]
    assert requests["offered"] == NUM_REQUESTS
    assert (requests["admitted"] + requests["rejected"]["total"]
            == requests["offered"])
    assert requests["completed"] == requests["admitted"]
    # The run must actually serve the overwhelming majority of traffic —
    # a gate that passes by rejecting everything is no gate.
    assert requests["admitted"] >= 0.9 * requests["offered"]


def test_slo_violation_rate_within_budget(report):
    slo = report["slo"]
    assert slo["with_target"] > 0
    assert slo["violation_rate"] <= MAX_SLO_VIOLATION_RATE, (
        f"SLO violation rate {slo['violation_rate']:.3f} exceeds "
        f"{MAX_SLO_VIOLATION_RATE}")


def test_every_tenant_p99_within_budget(report):
    """Fairness gate: no tenant's tail may blow the cluster-wide budget."""
    gated = 0
    for tenant, block in report["tenants"].items():
        if block["completed"] < MIN_REQUESTS_FOR_TAIL:
            continue
        gated += 1
        assert block["latency_s"]["p99"] <= MAX_TENANT_P99_S, (
            f"{tenant} p99 {block['latency_s']['p99']:.3f}s exceeds "
            f"{MAX_TENANT_P99_S}s")
    assert gated > 0  # the gate must bite somewhere


def test_autoscaler_engaged(report):
    summary = report["autoscaler"]
    assert summary["enabled"]
    assert summary["ticks"] > 0
    assert NUM_REPLICAS <= summary["peak_active"] <= 2 * NUM_REPLICAS


def test_deterministic_across_runs():
    """Same seed -> byte-identical report (smaller scale to keep CI fast).

    The second run also records a Perfetto fleet trace — tracing must not
    perturb the simulation, and the trace artifact CI uploads comes from
    this (smaller, same-config) run.
    """
    from repro.obs import load_chrome_trace

    trace_config = TraceConfig(num_requests=min(NUM_REQUESTS, 5000), seed=SEED)
    trace_path = RESULTS_DIR / "cluster_trace.json"
    dumps = []
    for index in range(2):
        trace = generate_trace(trace_config)
        report = run_cluster_sim(trace, cluster_config(),
                                 trace_path=trace_path if index else None)
        dumps.append(json.dumps(report, sort_keys=True))
    assert dumps[0] == dumps[1]

    document = load_chrome_trace(trace_path)  # schema-checks on load
    lanes = {event["args"]["name"] for event in document["traceEvents"]
             if event["ph"] == "M" and event["name"] == "thread_name"}
    assert {f"replica-{i}" for i in range(NUM_REPLICAS)} <= lanes

"""Table III: LDM / LSUN-Bedrooms quantitative evaluation.

Paper rows (FID / sFID / Precision / Recall):

    Full Precision   2.95 /   7.05 / 0.6494 / 0.4754
    INT8/INT8        3.29 /   7.51 / 0.6394 / 0.4806
    FP8/FP8          2.93 /   7.44 / 0.6559 / 0.4706
    INT4/INT8        4.36 /   7.99 / 0.6598 / 0.4404
    FP4/FP8 no RL  288.21 / 151.96 / 0.00   / 0.0146
    FP4/FP8          3.84 /   7.36 / 0.6247 / 0.4742

Expected reproduction shape: FP8 is essentially lossless, FP4 with plain
round-to-nearest is by far the worst row, and rounding learning recovers
most of the FP4 quality.
"""

from conftest import write_result


def test_table3_ldm_bedroom(benchmark, table_cache):
    table = benchmark.pedantic(lambda: table_cache.get("ldm-bedroom"),
                               rounds=1, iterations=1)
    text = table.format_table()
    write_result("table3_ldm_bedroom", text)
    print("\n" + text)

    fp_ref = "full-precision generated"
    fp8 = table.row("FP8/FP8").metrics[fp_ref]
    fp4_no_rl = table.row("FP4/FP8 (no RL)").metrics[fp_ref]
    fp4 = table.row("FP4/FP8").metrics[fp_ref]
    int4 = table.row("INT4/INT8").metrics[fp_ref]

    # FP8 stays much closer to the full-precision model than any 4-bit-weight
    # setting (the paper's "no noticeable degradation" claim for FP8).
    assert fp8.sfid < fp4_no_rl.sfid
    assert fp8.sfid <= fp4.sfid + 1e-9

    # Round-to-nearest FP4 must not beat rounding-learned FP4 by a meaningful
    # margin.  (At this scaled-down model size FP4 round-to-nearest does not
    # collapse the way the paper's full-size models do, so the two FP4 rows
    # end up close; the catastrophic-collapse aspect is documented in
    # EXPERIMENTS.md and the rounding-learning benefit is verified at the
    # layer level in the rounding ablation benchmark.)
    assert fp4.sfid <= fp4_no_rl.sfid * 1.3
    assert fp4.fid <= fp4_no_rl.fid * 2.0 + 1e-4

    # FP4 with rounding learning is competitive with the INT4 baseline.
    assert fp4.sfid <= int4.sfid * 1.5

"""Figure 6: the rounding-learning regularization term.

lambda(alpha) = 1 - (|sigma(alpha) - 0.5| * 2)^20 is plotted in the paper as
a curve over sigma(alpha) in [0, 1]: flat and near 1.0 in the middle, falling
sharply to 0 at the boundaries, which pushes each learned rounding decision
to a hard round-up / round-down.
"""

import numpy as np

from conftest import write_result

from repro.core import regularizer_value


def test_fig6_regularizer_curve(benchmark):
    xs = np.linspace(0.0, 1.0, 101)
    ys = benchmark.pedantic(lambda: regularizer_value(xs, exponent=20.0),
                            rounds=1, iterations=1)

    samples = [0.0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0]
    lines = ["Figure 6: regularizer lambda over sigmoid(alpha)",
             f"{'sigmoid(alpha)':>14} {'lambda':>8}"]
    for x in samples:
        lines.append(f"{x:>14.2f} {regularizer_value(np.array([x]))[0]:>8.4f}")
    text = "\n".join(lines)
    write_result("fig6_regularizer", text)
    print("\n" + text)

    # Shape of the curve: zero at the boundaries, one at the centre,
    # symmetric, and monotone on each half.
    assert ys[0] == 0.0 and ys[-1] < 1e-12
    assert abs(ys[50] - 1.0) < 1e-12
    np.testing.assert_allclose(ys, ys[::-1], atol=1e-12)
    assert np.all(np.diff(ys[:51]) >= -1e-12)
    assert np.all(np.diff(ys[50:]) <= 1e-12)
    # Flat top: still above 0.99 at sigma(alpha) = 0.3 (the exponent of 20
    # keeps the penalty negligible until a decision approaches the boundary).
    assert regularizer_value(np.array([0.3]))[0] > 0.99

"""Mixed-precision policy benchmark: FP8 boundary layers, FP4 interior.

Not a paper table — this exercises the extensible scheme/policy API at
benchmark scale: the first and last U-Net layers stay on FP8 while the
interior runs FP4, the classic mixed-precision recipe.  The quality of the
mix should land between uniform FP8 (upper bound) and uniform FP4 with
round-to-nearest (lower bound), and the report must round-trip through JSON
with the per-layer scheme assignments intact.
"""

from __future__ import annotations

from conftest import BENCH_SETTINGS, write_result

from repro.core import QuantizationReport, mixed_precision_config
from repro.experiments import ExperimentSpec, RowSpec, run_experiment
from repro.experiments.harness import load_benchmark_pipeline

MODEL = "ddim-cifar10"


def test_mixed_precision_boundary_policy():
    pipeline = load_benchmark_pipeline(MODEL, BENCH_SETTINGS)
    config = mixed_precision_config(pipeline.model, boundary="fp8",
                                    interior="fp4")
    spec = ExperimentSpec(
        model=MODEL,
        rows=[RowSpec(config=config)],
        settings=BENCH_SETTINGS,
        references=("full-precision generated",),
        with_clip=False,
        name=f"config/{MODEL}")
    row = run_experiment(spec).table.rows[0]

    report = row.report
    histogram = report.scheme_histogram()
    assert histogram.get("fp8") == 2, "first and last layer must stay FP8"
    assert histogram.get("fp4", 0) == report.num_quantized_layers - 2
    assert row.label.endswith("[mixed]")

    # The experiment is fully serializable (config, policy, per-layer schemes).
    restored = QuantizationReport.from_json(report.to_json())
    assert restored.to_dict() == report.to_dict()

    metrics = row.metrics["full-precision generated"]
    lines = [f"mixed precision on {MODEL}: FP8 boundary / FP4 interior",
             f"weight scheme mix: {histogram}",
             f"FID vs full-precision generations: {metrics.fid:.4f}",
             report.summary()]
    write_result("mixed_precision_policy", "\n".join(lines))

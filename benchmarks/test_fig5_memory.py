"""Figure 5: peak inference memory versus batch size.

The paper measures 8.37 GB of VRAM for batch size 1 and up to 54.9 GB for
batch size 16 on an A100, dominated by the attention score tensors, and notes
that FP8/FP4 quantization would shrink the requirement by 4x/8x.

The reproduction estimates the same series analytically at the paper-scale
U-Net configuration.
"""

from conftest import write_result

from repro.profiling import (
    BYTES_FP8,
    estimate_peak_memory,
    memory_vs_batch_size,
    paper_scale_stable_diffusion_config,
)

BATCH_SIZES = (1, 2, 4, 8, 16)


def test_fig5_memory_vs_batch_size(benchmark):
    config = paper_scale_stable_diffusion_config()
    estimates = benchmark.pedantic(
        lambda: memory_vs_batch_size(config, 64, BATCH_SIZES, context_tokens=77),
        rounds=1, iterations=1)

    lines = ["Figure 5: estimated peak inference memory (GiB) vs batch size",
             f"{'batch':>5} {'FP32':>8} {'FP8':>8}  peak layer"]
    for batch in BATCH_SIZES:
        fp32 = estimates[batch]
        fp8 = estimate_peak_memory(config, 64, batch,
                                   weight_bytes_per_element=BYTES_FP8,
                                   activation_bytes_per_element=BYTES_FP8,
                                   context_tokens=77)
        lines.append(f"{batch:>5} {fp32.total_gib:>8.1f} {fp8.total_gib:>8.1f}  "
                     f"{fp32.peak_layer_name}")
    text = "\n".join(lines)
    write_result("fig5_memory", text)
    print("\n" + text)

    totals = [estimates[b].total_bytes for b in BATCH_SIZES]
    # Memory grows steeply (super-linearly relative to the batch-1 baseline is
    # not required, but strict monotonic growth is).
    assert all(later > earlier for earlier, later in zip(totals, totals[1:]))
    # Batch 16 should require tens of GiB at paper scale (paper: ~55 GB).
    assert estimates[16].total_gib > 10.0
    # The peak layer at large batch is an attention score tensor.
    assert "attention" in estimates[16].peak_layer_name
    # FP8 storage cuts the estimate by ~4x.
    fp8_16 = estimate_peak_memory(config, 64, 16,
                                  weight_bytes_per_element=BYTES_FP8,
                                  activation_bytes_per_element=BYTES_FP8,
                                  context_tokens=77)
    ratio = estimates[16].total_bytes / fp8_16.total_bytes
    assert 3.5 < ratio < 4.5

"""Figure 11: weight sparsity of Stable Diffusion and LDM after quantization.

The paper measures the fraction of exactly-zero weights and finds a 31.6x
(FP8) / 617x (FP4) increase for Stable Diffusion and 20.1x / 428.5x for LDM
relative to the full-precision checkpoints.

The reproduction measures the same percentages on the scaled-down zoo models.
The full-precision stand-ins have essentially no exact zeros (they are small
freshly-trained float32 networks), so the reproduction reports the absolute
percentages and requires the FP4 >> FP8 >> FP32 ordering.
"""

from conftest import BENCH_SETTINGS, write_result

from repro.experiments import run_sparsity_experiment

MODELS = ("stable-diffusion", "ldm-bedroom")


def test_fig11_sparsity(benchmark):
    results = benchmark.pedantic(
        lambda: {name: run_sparsity_experiment(name, BENCH_SETTINGS)
                 for name in MODELS},
        rounds=1, iterations=1)

    lines = ["Figure 11: percentage of zero-valued weights",
             f"{'model':<18} {'FP32':>8} {'FP8':>8} {'FP4':>8}"]
    for name in MODELS:
        row = results[name]
        lines.append(f"{name:<18} {row['FP32']:>8.3f} {row['FP8']:>8.3f} "
                     f"{row['FP4']:>8.3f}")
    text = "\n".join(lines)
    write_result("fig11_sparsity", text)
    print("\n" + text)

    for name in MODELS:
        row = results[name]
        # Quantization introduces sparsity, and FP4 introduces roughly an
        # order of magnitude more than FP8 (the paper's central sparsity
        # observation).
        assert row["FP8"] > row["FP32"]
        assert row["FP4"] > 5.0 * max(row["FP8"], 1e-6)

"""Serving load benchmark: dynamic batching vs sequential per-request serving.

Drives the same deterministic mixed workload (popular prompts, fixed seeds)
through two identically-configured engines over the same tiny
text-to-image model:

* **sequential** — one generation pass per request, the pre-serving
  behaviour (``ServingEngine.serve_sequential``);
* **batched** — the dynamic batcher groups compatible requests into shared
  sampler passes (``ServingEngine.serve``).

Time is **virtual**: both engines and their batchers run on an injected
:class:`~repro.serving.VirtualClock`, and every generation pass advances it
by a deterministic cost model — a fixed per-pass overhead (the sampler walk
itself: each denoising step dispatches the full U-Net layer stack whatever
the batch size) plus a per-image increment (the marginal batched-row cost).
The measured ≥2x batching speedup is therefore an exact function of the
batching policy and cannot flake on a loaded CI runner; generation still
runs for real, so the correctness and cache assertions exercise the true
pipeline.  Both arms' stats reports (and a side-by-side comparison) land in
``benchmarks/results/`` for inspection; CI's serving smoke job asserts the
report is produced and well-formed.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/test_serving_throughput.py -q``
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.diffusion import DiffusionPipeline
from repro.models import DiffusionModel, ModelSpec, UNetConfig
from repro.serving import (
    EngineConfig,
    ModelVariantPool,
    ServingEngine,
    SLORouter,
    VirtualClock,
    WorkloadConfig,
    generate_workload,
    run_load_benchmark,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

NUM_REQUESTS = 24
NUM_STEPS = 6
MAX_BATCH = 8

#: Virtual cost of one generation pass: the sampler walk costs PASS_COST
#: regardless of batch size (the per-step layer dispatch is shared), and
#: each image in the batch adds IMAGE_COST of marginal work.
PASS_COST = 1.0
IMAGE_COST = 0.25


def _tiny_text_pipeline() -> DiffusionPipeline:
    """An untrained tiny text-to-image stand-in (throughput only needs shapes)."""
    spec = ModelSpec(
        name="stable-diffusion", task="text-to-image", image_size=16,
        image_channels=3, latent=True, latent_channels=4, latent_downsample=4,
        unet=UNetConfig(in_channels=4, out_channels=4, base_channels=8,
                        channel_multipliers=(1, 2), num_res_blocks=1,
                        attention_levels=(1,), num_heads=2, context_dim=16),
        text_embed_dim=16, train_timesteps=20, default_sampling_steps=NUM_STEPS,
        seed=3)
    model = DiffusionModel(spec, rng=np.random.default_rng(21))
    return DiffusionPipeline(model, num_steps=NUM_STEPS)


class _MeteredPipeline:
    """Delegating pipeline wrapper that charges virtual time per pass."""

    def __init__(self, pipeline: DiffusionPipeline, clock: VirtualClock):
        self._pipeline = pipeline
        self._clock = clock

    def __getattr__(self, name):
        return getattr(self._pipeline, name)

    def generate_batch(self, seeds, context=None, trace=None, plan=None):
        images = self._pipeline.generate_batch(seeds, context=context,
                                               trace=trace, plan=plan)
        self._clock.advance(PASS_COST + IMAGE_COST * len(list(seeds)))
        return images


@pytest.fixture(scope="module")
def workload():
    return generate_workload(WorkloadConfig(
        num_requests=NUM_REQUESTS, models=("stable-diffusion",),
        num_steps=NUM_STEPS, prompt_pool_size=6, popularity_skew=1.2,
        slo_tiers=(None,), seed=1234))


def _make_engine(pipeline: DiffusionPipeline,
                 clock: VirtualClock) -> ServingEngine:
    metered = _MeteredPipeline(pipeline, clock)
    pool = ModelVariantPool(builder=lambda model, scheme: metered)
    engine = ServingEngine(pool, router=SLORouter(),
                           config=EngineConfig(max_batch_size=MAX_BATCH),
                           clock=clock)
    pool.warm([("stable-diffusion", "fp32")])  # exclude cold-start from timing
    return engine


def test_dynamic_batching_doubles_throughput(workload):
    pipeline = _tiny_text_pipeline()

    sequential_clock = VirtualClock()
    sequential = _make_engine(pipeline, sequential_clock)
    sequential_responses = sequential.serve_sequential(list(workload))
    sequential_report = sequential.stats.report()

    batched_clock = VirtualClock()
    batched = _make_engine(pipeline, batched_clock)
    batched_report = run_load_benchmark(
        batched, list(workload),
        report_path=RESULTS_DIR / "serving_stats.json")

    assert len(sequential_responses) == NUM_REQUESTS
    assert sequential_report["requests"]["completed"] == NUM_REQUESTS
    assert batched_report["requests"]["completed"] == NUM_REQUESTS

    # ------------------------------------------------------------------
    # the headline claim: >= 2x throughput from dynamic batching, now an
    # exact deterministic function of the batching policy under the
    # virtual cost model (pass overhead amortized across the batch)
    # ------------------------------------------------------------------
    speedup = (batched_report["throughput_rps"]
               / sequential_report["throughput_rps"])
    assert speedup >= 2.0, (
        f"dynamic batching speedup {speedup:.2f}x < 2x "
        f"(sequential {sequential_report['throughput_rps']:.1f} rps, "
        f"batched {batched_report['throughput_rps']:.1f} rps)")

    # the virtual wall times are exact: one pass per request sequentially,
    # one pass per formed batch when batching
    expected_sequential = NUM_REQUESTS * (PASS_COST + IMAGE_COST)
    assert sequential_report["wall_time_s"] == pytest.approx(expected_sequential)
    num_batches = batched_report["batch"]["count"]
    expected_batched = (num_batches * PASS_COST
                        + NUM_REQUESTS * IMAGE_COST)
    assert batched_report["wall_time_s"] == pytest.approx(expected_batched)

    # batching actually formed multi-request batches
    assert batched_report["batch"]["mean_size"] > 1.5
    assert sequential_report["batch"]["mean_size"] == 1.0
    # popular prompts hit the embedding cache
    assert batched_report["components"]["embedding_cache"]["hit_rate"] > 0.0

    # ------------------------------------------------------------------
    # the stats report records everything the acceptance criteria name
    # ------------------------------------------------------------------
    for block in ("queue_wait_s", "latency_s"):
        assert set(batched_report[block]) == {"mean", "p50", "p95", "max"}
    assert batched_report["batch"]["size_histogram"]
    assert 0.0 <= batched_report["components"]["embedding_cache"]["hit_rate"] <= 1.0

    RESULTS_DIR.mkdir(exist_ok=True)
    comparison = {
        "num_requests": NUM_REQUESTS,
        "num_steps": NUM_STEPS,
        "max_batch_size": MAX_BATCH,
        "virtual_pass_cost_s": PASS_COST,
        "virtual_image_cost_s": IMAGE_COST,
        "sequential_throughput_rps": sequential_report["throughput_rps"],
        "batched_throughput_rps": batched_report["throughput_rps"],
        "speedup": speedup,
        "batched_mean_batch_size": batched_report["batch"]["mean_size"],
        "embedding_cache_hit_rate":
            batched_report["components"]["embedding_cache"]["hit_rate"],
    }
    (RESULTS_DIR / "serving_throughput.json").write_text(
        json.dumps(comparison, indent=2, sort_keys=True) + "\n")

    # the JSON stats report written by the benchmark is well-formed
    saved = json.loads((RESULTS_DIR / "serving_stats.json").read_text())
    assert saved["requests"]["completed"] == NUM_REQUESTS


def test_served_images_match_between_arms(workload):
    """Batched serving returns the same images as per-request serving."""
    pipeline = _tiny_text_pipeline()
    sequential = _make_engine(pipeline, VirtualClock())
    batched = _make_engine(pipeline, VirtualClock())
    seq_images = {r.request_id: r.image
                  for r in sequential.serve_sequential(list(workload))}
    for response in batched.serve(list(workload)):
        np.testing.assert_allclose(response.image,
                                   seq_images[response.request_id],
                                   atol=1e-3, rtol=1e-3)

"""Table V: SDXL evaluation (full precision vs INT8/INT8 vs FP8/FP8).

Paper rows (reference: full-precision generated images):

    Full Precision  FID 0.00 / sFID 0.00  / P 1.00  / R 1.00
    INT8/INT8       FID 94.22 / sFID 247.42 / P 0.135 / R 0.681
    FP8/FP8         FID 39.52 / sFID 229.21 / P 0.5125 / R 0.894

Expected reproduction shape: on the larger U-Net the FP8/FP8 model stays
closer to the full-precision trajectory than INT8/INT8.
"""

from conftest import SDXL_ROWS, write_result


def test_table5_sdxl(benchmark, table_cache):
    table = benchmark.pedantic(lambda: table_cache.get("sdxl", labels=SDXL_ROWS),
                               rounds=1, iterations=1)
    text = table.format_table()
    write_result("table5_sdxl", text)
    print("\n" + text)

    fp_ref = "full-precision generated"
    full = table.row("FP32/FP32").metrics[fp_ref]
    fp8 = table.row("FP8/FP8").metrics[fp_ref]
    int8 = table.row("INT8/INT8").metrics[fp_ref]

    assert full.fid < 1e-6 and full.recall == 1.0
    # FP8 tracks the full-precision SDXL model at least as closely as INT8.
    assert fp8.sfid <= int8.sfid * 1.1
    assert fp8.fid <= int8.fid * 1.25 + 1e-9

"""Figure 4: layer-type latency breakdown of the Stable Diffusion U-Net.

The paper measures one denoising step on a Xeon CPU and a V100 GPU at batch
sizes 1 and 8, normalizes each bar to 1.0 and reports that Conv2d and Linear
layers dominate, that normalization+SiLU account for ~25% on the GPU and a
negligible share on the CPU, and that GPU inference is 31x-72x faster.

The reproduction computes the same breakdown analytically with the roofline
cost model at the paper's real U-Net scale.
"""

from conftest import write_result

from repro.profiling import (
    CPU_XEON,
    GPU_V100,
    estimate_latency,
    grouped_breakdown,
    latency_breakdown,
    normalized_breakdown,
    paper_scale_stable_diffusion_config,
    unet_layer_costs,
)


def compute_breakdowns():
    config = paper_scale_stable_diffusion_config()
    results = {}
    for device in (CPU_XEON, GPU_V100):
        for batch in (1, 8):
            costs = unet_layer_costs(config, sample_size=64, batch_size=batch,
                                     context_tokens=77)
            total = estimate_latency(costs, device)
            shares = normalized_breakdown(
                grouped_breakdown(latency_breakdown(costs, device)))
            results[(device.name, batch)] = (total, shares)
    return results


def test_fig4_latency_breakdown(benchmark):
    results = benchmark.pedantic(compute_breakdowns, rounds=1, iterations=1)

    lines = ["Figure 4: normalized per-step latency breakdown (roofline model)",
             f"{'device':<10} {'batch':>5} {'total(ms)':>10} {'conv':>6} "
             f"{'linear':>7} {'norm+silu':>10}"]
    for (device, batch), (total, shares) in sorted(results.items()):
        lines.append(f"{device:<10} {batch:>5} {total * 1e3:>10.1f} "
                     f"{shares['conv']:>6.2f} {shares['linear']:>7.2f} "
                     f"{shares['norm+silu']:>10.2f}")
    text = "\n".join(lines)
    write_result("fig4_latency_breakdown", text)
    print("\n" + text)

    # Conv + Linear dominate on every device/batch combination.
    for (_, _), (_, shares) in results.items():
        assert shares["conv"] + shares["linear"] > 0.6

    # GPU is much faster than CPU at both batch sizes (paper: 31x / 72x).
    for batch in (1, 8):
        cpu_total = results[(CPU_XEON.name, batch)][0]
        gpu_total = results[(GPU_V100.name, batch)][0]
        assert cpu_total > 10 * gpu_total

    # Normalization + SiLU matter more on the GPU than on the CPU (they are
    # memory-bound and the GPU has a much higher compute-to-bandwidth ratio).
    assert (results[(GPU_V100.name, 1)][1]["norm+silu"]
            >= results[(CPU_XEON.name, 1)][1]["norm+silu"])

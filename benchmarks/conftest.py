"""Shared fixtures for the benchmark harness.

Every paper table is declared as an
:class:`~repro.experiments.ExperimentSpec` and executed through the
:class:`~repro.experiments.Runner` against a session-wide content-addressed
:class:`~repro.experiments.RunStore`.  The stage graph deduplicates the
expensive work *within* a table (one pretrain, one calibration-data
collection and one full-precision generation feed every row) and *across*
benchmarks (Table IV and Figure 10 both read the Stable Diffusion table;
re-runs against a warm store are almost entirely cache hits).

Formatted results are written to ``benchmarks/results/`` so the regenerated
tables can be inspected after a run; each table's run manifest (per-stage
timings and cache hits) is available as ``table.manifest``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Sequence

import pytest

from repro.experiments import (
    PAPER_ROW_ORDER,
    BenchSettings,
    ExperimentSpec,
    RunStore,
    TableResult,
    run_experiment,
)
from repro.zoo import PretrainConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Worker threads for the stage-graph runner (override via environment).
RUNNER_WORKERS = int(os.environ.get("REPRO_RUNNER_WORKERS", "2"))

#: Scaled-down experiment sizes (paper values in parentheses): 16 images
#: (50k / 10k), 8 denoising steps (200 / 50), 15 bias candidates (111),
#: 30 rounding-learning iterations.  EXPERIMENTS.md documents the scaling.
BENCH_SETTINGS = BenchSettings(
    num_images=16,
    num_steps=8,
    seed=1234,
    batch_size=8,
    num_bias_candidates=15,
    rounding_iterations=30,
    calibration_samples=3,
    calibration_records_per_layer=4,
    pretrain=PretrainConfig(dataset_size=96, autoencoder_steps=40, denoiser_steps=80),
)

#: Table V only evaluates 8-bit settings on SDXL, as in the paper.
SDXL_ROWS = ("FP32/FP32", "INT8/INT8", "FP8/FP8")


def write_result(name: str, content: str) -> Path:
    """Persist a formatted table/figure to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path


class TableCache:
    """Session-level cache of quantization-table results keyed by model.

    A thin veneer over the run store: the store already dedupes every
    stage on disk, this just keeps the assembled ``TableResult`` objects
    (with their generated images) in memory for the session.
    """

    def __init__(self, settings: BenchSettings, store: RunStore):
        self.settings = settings
        self.store = store
        self._tables: Dict[str, TableResult] = {}

    def spec(self, model_name: str,
             labels: Sequence[str] = PAPER_ROW_ORDER) -> ExperimentSpec:
        return ExperimentSpec.from_labels(model_name, labels, self.settings,
                                          keep_images=True,
                                          name=f"bench/{model_name}")

    def get(self, model_name: str,
            labels: Sequence[str] = PAPER_ROW_ORDER) -> TableResult:
        if model_name not in self._tables:
            run = run_experiment(self.spec(model_name, labels),
                                 store=self.store,
                                 max_workers=RUNNER_WORKERS)
            self._tables[model_name] = run.table
        return self._tables[model_name]


@pytest.fixture(scope="session")
def run_store() -> RunStore:
    """The content-addressed artifact store shared by the bench session."""
    return RunStore()


@pytest.fixture(scope="session")
def table_cache(run_store) -> TableCache:
    return TableCache(BENCH_SETTINGS, run_store)


@pytest.fixture(scope="session")
def bench_settings() -> BenchSettings:
    return BENCH_SETTINGS

"""Shared fixtures for the benchmark harness.

Every paper table is expensive to regenerate (it trains/loads a model,
quantizes it under up to six configurations and scores every configuration
against two reference sets), so the table results are computed once per
session and shared between the benchmarks that consume them (e.g. Table IV
and Figure 10 both read the Stable Diffusion table).

Formatted results are also written to ``benchmarks/results/`` so the
regenerated tables can be inspected after a run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Sequence

import pytest

from repro.experiments import BenchSettings
from repro.experiments.harness import PAPER_ROW_ORDER, TableResult, run_quantization_table
from repro.zoo import PretrainConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Scaled-down experiment sizes (paper values in parentheses): 16 images
#: (50k / 10k), 8 denoising steps (200 / 50), 15 bias candidates (111),
#: 30 rounding-learning iterations.  EXPERIMENTS.md documents the scaling.
BENCH_SETTINGS = BenchSettings(
    num_images=16,
    num_steps=8,
    seed=1234,
    batch_size=8,
    num_bias_candidates=15,
    rounding_iterations=30,
    calibration_samples=3,
    calibration_records_per_layer=4,
    pretrain=PretrainConfig(dataset_size=96, autoencoder_steps=40, denoiser_steps=80),
)

#: Table V only evaluates 8-bit settings on SDXL, as in the paper.
SDXL_ROWS = ("FP32/FP32", "INT8/INT8", "FP8/FP8")


def write_result(name: str, content: str) -> Path:
    """Persist a formatted table/figure to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path


class TableCache:
    """Session-level cache of quantization-table results keyed by model."""

    def __init__(self, settings: BenchSettings):
        self.settings = settings
        self._tables: Dict[str, TableResult] = {}

    def get(self, model_name: str,
            labels: Sequence[str] = PAPER_ROW_ORDER) -> TableResult:
        if model_name not in self._tables:
            self._tables[model_name] = run_quantization_table(
                model_name, config_labels=labels, settings=self.settings,
                keep_images=True)
        return self._tables[model_name]


@pytest.fixture(scope="session")
def table_cache() -> TableCache:
    return TableCache(BENCH_SETTINGS)


@pytest.fixture(scope="session")
def bench_settings() -> BenchSettings:
    return BENCH_SETTINGS

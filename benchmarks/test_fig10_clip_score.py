"""Figure 10: CLIP score of quantized Stable Diffusion models.

The paper reports that the CLIP score differs little across quantization
settings, with the floating-point configurations consistently at or slightly
above the integer ones, and FP4/FP8 slightly above the full-precision model.

The reproduction reads the CLIP-score substitute (prompt/image agreement
through the procedural renderer) from the Stable Diffusion table rows.
"""

from conftest import write_result

ROW_ORDER = ("FP32/FP32", "INT8/INT8", "FP8/FP8", "INT4/INT8",
             "FP4/FP8 (no RL)", "FP4/FP8")


def test_fig10_clip_score(benchmark, table_cache):
    table = benchmark.pedantic(lambda: table_cache.get("stable-diffusion"),
                               rounds=1, iterations=1)

    scores = {label: table.row(label).metrics["dataset"].clip for label in ROW_ORDER}
    lines = ["Figure 10: CLIP-score substitute per quantization setting",
             f"{'Bitwidth (W/A)':<18} {'CLIP':>8}"]
    for label in ROW_ORDER:
        lines.append(f"{label:<18} {scores[label]:>8.2f}")
    text = "\n".join(lines)
    write_result("fig10_clip_score", text)
    print("\n" + text)

    full = scores["FP32/FP32"]
    # All 8-bit settings and rounding-learned FP4 stay close to the
    # full-precision CLIP score (the paper reports small differences).
    for label in ("INT8/INT8", "FP8/FP8", "INT4/INT8", "FP4/FP8"):
        assert abs(scores[label] - full) < 25.0
    # FP8 should not be meaningfully worse than INT8 at following prompts.
    assert scores["FP8/FP8"] >= scores["INT8/INT8"] - 5.0

"""Figure 8: Stable Diffusion qualitative comparison across quantizers.

The paper renders two prompts under FP32, FP8/FP8, INT8/INT8, FP4/FP8 and
INT4/INT8 and observes that the floating-point models preserve scene details
that the integer models blur or drop, even though the MS-COCO-referenced
metrics look fine for all of them.

The reproduction saves the seed-matched grid and checks that the FP models
stay at least as close to the full-precision images (pixel MSE) as the INT
models of the same bitwidth.
"""

from pathlib import Path

import numpy as np

from conftest import RESULTS_DIR, write_result

GRID_CONFIGS = ("FP32/FP32", "FP8/FP8", "INT8/INT8", "FP4/FP8", "INT4/INT8")


def test_fig8_sd_qualitative(benchmark, table_cache):
    table = benchmark.pedantic(lambda: table_cache.get("stable-diffusion"),
                               rounds=1, iterations=1)

    reference = table.row("FP32/FP32").generated
    grid = np.stack([table.row(label).generated[:2] for label in GRID_CONFIGS])
    RESULTS_DIR.mkdir(exist_ok=True)
    grid_path = Path(RESULTS_DIR) / "fig8_sd_qualitative.npy"
    np.save(grid_path, grid)

    lines = ["Figure 8: Stable Diffusion qualitative grid "
             "(per-image MSE vs full precision)",
             f"grid saved to {grid_path} with config order {GRID_CONFIGS}"]
    drifts = {}
    for label in GRID_CONFIGS:
        drift = float(np.mean((table.row(label).generated - reference) ** 2))
        drifts[label] = drift
        lines.append(f"{label:<12} mse vs FP32 = {drift:.3e}")
    text = "\n".join(lines)
    write_result("fig8_sd_qualitative", text)
    print("\n" + text)

    # Floating point stays at least as close to the FP32 images as integer at
    # the same bitwidth (small tolerance band for the 8-bit pair, where both
    # are near-lossless).
    assert drifts["FP8/FP8"] <= drifts["INT8/INT8"] * 1.2
    assert drifts["FP4/FP8"] <= drifts["INT4/INT8"] * 1.2
    assert drifts["FP32/FP32"] == 0.0

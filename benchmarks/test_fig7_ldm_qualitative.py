"""Figure 7: LDM (LSUN-Bedrooms) qualitative comparison.

The paper shows example images from the full-precision, FP8/FP8, FP4/FP8 and
FP4/FP8-without-rounding-learning models: FP8 is indistinguishable from FP32,
FP4 with rounding learning is slightly duller but structurally intact, and
FP4 without rounding learning produces meaningless images.

The reproduction saves a seed-matched image grid (.npy) for the same four
configurations and checks the same ordering numerically via per-image MSE
against the full-precision images.
"""

from pathlib import Path

import numpy as np

from conftest import RESULTS_DIR, write_result

GRID_CONFIGS = ("FP32/FP32", "FP8/FP8", "FP4/FP8", "FP4/FP8 (no RL)")


def test_fig7_ldm_qualitative(benchmark, table_cache):
    table = benchmark.pedantic(lambda: table_cache.get("ldm-bedroom"),
                               rounds=1, iterations=1)

    reference = table.row("FP32/FP32").generated
    grid = np.stack([table.row(label).generated[:4] for label in GRID_CONFIGS])
    RESULTS_DIR.mkdir(exist_ok=True)
    grid_path = Path(RESULTS_DIR) / "fig7_ldm_qualitative.npy"
    np.save(grid_path, grid)

    lines = ["Figure 7: LDM qualitative grid (per-image MSE vs full precision)",
             f"grid saved to {grid_path} with config order {GRID_CONFIGS}"]
    drifts = {}
    for label in GRID_CONFIGS:
        generated = table.row(label).generated
        drift = float(np.mean((generated - reference) ** 2))
        drifts[label] = drift
        lines.append(f"{label:<18} mse vs FP32 = {drift:.3e}")
    text = "\n".join(lines)
    write_result("fig7_ldm_qualitative", text)
    print("\n" + text)

    # Ordering of visual damage: FP32 (0) < FP8 << FP4 variants, and plain
    # round-to-nearest FP4 is at least as damaged as rounding-learned FP4.
    assert drifts["FP32/FP32"] == 0.0
    assert drifts["FP8/FP8"] < drifts["FP4/FP8"]
    assert drifts["FP4/FP8"] <= drifts["FP4/FP8 (no RL)"] * 1.05

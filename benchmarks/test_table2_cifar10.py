"""Table II: DDIM / CIFAR-10 quantitative evaluation.

Paper rows (FID / sFID / Precision / Recall on CIFAR-10):

    Full Precision 4.20 / 4.44 / 0.6657 / 0.5847
    INT8/INT8      4.02 / 4.73 / 0.6406 / 0.5970
    FP8/FP8        3.70 / 4.31 / 0.6619 / 0.5954
    INT4/INT8      4.67 / 5.94 / 0.6496 / 0.5820
    FP4/FP8        5.03 / 4.89 / 0.6513 / 0.5816

Expected reproduction shape: all 8-bit settings remain close to the
full-precision model, 4-bit weight settings degrade mildly, and against the
full-precision-generated reference FP8 tracks FP32 at least as closely as
INT8 does.
"""

from conftest import write_result


def test_table2_cifar10(benchmark, table_cache):
    table = benchmark.pedantic(lambda: table_cache.get("ddim-cifar10"),
                               rounds=1, iterations=1)
    text = table.format_table()
    write_result("table2_cifar10", text)
    print("\n" + text)

    # The run manifest proves the stage graph deduplicated the shared work:
    # all six rows were produced from exactly one pretrain and one
    # calibration-data stage, and the FP32 generation was computed once —
    # serving both as the FP32 row and as the "vs FP model" reference.
    kinds = table.manifest.kind_counts()
    assert kinds["pretrain"] == 1
    assert kinds["calibration"] == 1
    assert kinds["quantize"] == 5       # every row except FP32/FP32
    assert kinds["generate"] == 6       # 1 shared FP32 + 5 quantized rows
    assert sum(1 for record in table.manifest.stages
               if record.stage_id.endswith("/full-precision")) == 1

    fp_ref = "full-precision generated"
    fp8 = table.row("FP8/FP8").metrics[fp_ref]
    int8 = table.row("INT8/INT8").metrics[fp_ref]
    fp4 = table.row("FP4/FP8").metrics[fp_ref]
    full = table.row("FP32/FP32").metrics[fp_ref]

    # The full-precision row scored against itself is exactly zero distance.
    assert full.fid < 1e-6 and full.precision == 1.0

    # 8-bit rows stay very close to the full-precision trajectory; 4-bit
    # weights drift further (Table II's mild degradation).
    assert fp8.sfid <= fp4.sfid
    assert fp8.fid <= fp4.fid * 1.5 + 1e-9

    # FP8 tracks the full-precision model at least as well as INT8 (allowing
    # a tolerance band since both are near-lossless at this scale).
    assert fp8.sfid <= int8.sfid * 1.25 + 1e-9

"""Ablations of the rounding-learning and skip-connection design choices.

Two techniques the paper adopts are ablated here on the LDM stand-in:

* gradient-based rounding learning for FP4 weights (Section V-B), measured
  at the layer level: the learned rounding must reduce the layer-output MSE
  that it optimizes, relative to round-to-nearest;
* separate quantization of the two inputs of every skip-connection concat
  (the Q-diffusion technique the paper carries over to floating point),
  measured end-to-end: disabling it should not bring the quantized model
  closer to the full-precision trajectory.
"""

import numpy as np

from conftest import BENCH_SETTINGS, write_result

from repro import nn
from repro.core import (
    PAPER_CONFIGS,
    RoundingLearningConfig,
    collect_calibration_data,
    learn_rounding,
    quantize_pipeline,
    search_tensor_format,
)
from repro.core.calibration import quantizable_layer_paths
from repro.experiments.harness import load_benchmark_pipeline

NUM_LAYERS = 6


def test_ablation_rounding_learning_layer_mse(benchmark):
    pipeline = load_benchmark_pipeline("ldm-bedroom", BENCH_SETTINGS)
    config = BENCH_SETTINGS.scale_config(PAPER_CONFIGS["FP4/FP8"])
    calibration = collect_calibration_data(pipeline, config.calibration)

    conv_layers = [(path, layer) for path, layer
                   in quantizable_layer_paths(pipeline.model.unet)
                   if isinstance(layer, nn.Conv2d)][:NUM_LAYERS]

    def run():
        rows = []
        for path, layer in conv_layers:
            fmt = search_tensor_format(layer.weight.data, 4,
                                       num_bias_candidates=15).fmt
            result = learn_rounding(layer, fmt, calibration.samples(path),
                                    RoundingLearningConfig(iterations=40,
                                                           samples_per_iteration=3,
                                                           seed=0))
            rows.append((path, result.initial_output_mse, result.final_output_mse))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation: rounding learning, per-layer output MSE "
             "(round-to-nearest -> learned)",
             f"{'layer':<42} {'nearest':>12} {'learned':>12}"]
    for path, before, after in rows:
        lines.append(f"{path:<42} {before:>12.3e} {after:>12.3e}")
    improved = sum(1 for _, before, after in rows if after <= before * 1.02)
    lines.append(f"layers improved or matched: {improved}/{len(rows)}")
    text = "\n".join(lines)
    write_result("ablation_rounding_learning", text)
    print("\n" + text)

    # Learned rounding should improve (or at worst match) the optimized
    # objective on the clear majority of layers.
    assert improved >= int(0.7 * len(rows))


def test_ablation_skip_connection_split(benchmark):
    pipeline = load_benchmark_pipeline("ldm-bedroom", BENCH_SETTINGS)
    reference = pipeline.generate(BENCH_SETTINGS.num_images,
                                  seed=BENCH_SETTINGS.seed,
                                  batch_size=BENCH_SETTINGS.batch_size)
    base_config = BENCH_SETTINGS.scale_config(PAPER_CONFIGS["FP8/FP8"])
    calibration = collect_calibration_data(pipeline, base_config.calibration)

    def run():
        drifts = {}
        for label, split in (("with skip split", True), ("without skip split", False)):
            config = BENCH_SETTINGS.scale_config(PAPER_CONFIGS["FP8/FP8"])
            config.quantize_skip_connections = split
            quantized, _ = quantize_pipeline(pipeline, config,
                                             calibration=calibration)
            generated = quantized.generate(BENCH_SETTINGS.num_images,
                                           seed=BENCH_SETTINGS.seed,
                                           batch_size=BENCH_SETTINGS.batch_size)
            drifts[label] = float(np.mean((generated - reference) ** 2))
        return drifts

    drifts = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation: separate quantization of skip-connection concat inputs "
             "(FP8/FP8, pixel MSE vs full precision)"]
    for label, drift in drifts.items():
        lines.append(f"{label:<22} {drift:.3e}")
    text = "\n".join(lines)
    write_result("ablation_skip_split", text)
    print("\n" + text)

    # Both variants must stay finite and close to the FP32 trajectory; the
    # split variant (the paper's choice) adds quantization points, so it is
    # allowed to be slightly different but not catastrophically worse.
    assert all(np.isfinite(list(drifts.values())))
    assert drifts["with skip split"] < 50 * max(drifts["without skip split"], 1e-9)

"""Section III characterization: where Stable Diffusion inference time goes.

Beyond Figure 4's per-layer breakdown, Section III makes two quantitative
claims about end-to-end inference: the U-Net dominates total latency (6.1 s
of 6.6 s on a V100, because it runs 50 times while the text encoder and the
autoencoder decoder run once), and quantizing to lower-bitwidth data types
reduces the memory-bound portion of the workload.
"""

from conftest import write_result

from repro.experiments import Runner, Stage, StageGraph
from repro.models import get_model_spec
from repro.profiling import (
    BYTES_FP8,
    GPU_V100,
    estimate_latency,
    paper_scale_stable_diffusion_config,
    total_flops,
    unet_layer_costs,
)

NUM_DENOISING_STEPS = 50


def characterize():
    config = paper_scale_stable_diffusion_config()
    unet_costs = unet_layer_costs(config, 64, batch_size=1, context_tokens=77)
    unet_step = estimate_latency(unet_costs, GPU_V100)

    # The decoder and text encoder run once; approximate them with a U-Net
    # forward at the output resolution fraction of the work (the paper
    # measures them at ~0.5 s of the 6.6 s total).
    once_costs = unet_layer_costs(get_model_spec("stable-diffusion").unet, 64,
                                  batch_size=1, context_tokens=77)
    once_latency = estimate_latency(once_costs, GPU_V100)

    total = unet_step * NUM_DENOISING_STEPS + once_latency
    fp8_step = estimate_latency(unet_costs, GPU_V100, bytes_per_element=BYTES_FP8)
    return {
        "unet_step": unet_step,
        "unet_total": unet_step * NUM_DENOISING_STEPS,
        "other_total": once_latency,
        "total": total,
        "unet_fraction": unet_step * NUM_DENOISING_STEPS / total,
        "flops_per_step": total_flops(unet_costs),
        "fp8_step": fp8_step,
    }


def characterization_graph() -> StageGraph:
    """The analytic characterization as a (custom, single-node) stage graph.

    Tables and figures go through :func:`repro.experiments.compile_experiment`;
    this benchmark shows the run API is open — any keyed computation can be
    a stage, and it is cached in the shared artifact store like the rest.
    """
    graph = StageGraph()
    graph.add(Stage(
        stage_id="characterize/stable-diffusion", kind="characterize",
        inputs={"model": "stable-diffusion", "device": "V100",
                "num_steps": NUM_DENOISING_STEPS},
        encoding="json", compute=lambda deps: characterize()))
    return graph


def test_unet_dominates_inference(benchmark, run_store):
    def run():
        values, manifest = Runner(store=run_store).execute(
            characterization_graph(), name="characterization")
        return values["characterize/stable-diffusion"], manifest

    results, manifest = benchmark.pedantic(run, rounds=1, iterations=1)
    assert manifest.kind_counts() == {"characterize": 1}
    # A second execution against the same store is a pure cache hit with
    # identical values (the roofline model is deterministic).
    cached_values, cached_manifest = Runner(store=run_store).execute(
        characterization_graph())
    assert cached_manifest.hit_rate == 1.0
    assert cached_values["characterize/stable-diffusion"] == results

    lines = ["Section III characterization (GPU roofline estimates)",
             f"U-Net latency per step      : {results['unet_step'] * 1e3:8.1f} ms",
             f"U-Net latency x {NUM_DENOISING_STEPS} steps    : "
             f"{results['unet_total']:8.2f} s",
             f"one-shot components         : {results['other_total']:8.3f} s",
             f"U-Net fraction of total     : {results['unet_fraction']:8.1%}",
             f"FLOPs per U-Net step        : {results['flops_per_step'] / 1e12:8.2f} T",
             f"FP8 step latency            : {results['fp8_step'] * 1e3:8.1f} ms"]
    text = "\n".join(lines)
    write_result("characterization", text)
    print("\n" + text)

    # The U-Net accounts for the overwhelming majority of inference latency
    # (paper: 6.1 s of 6.6 s, i.e. >90%).
    assert results["unet_fraction"] > 0.9
    # Lower-bitwidth data reduces (or at worst preserves) the roofline latency.
    assert results["fp8_step"] <= results["unet_step"]

"""Central registry of every versioned JSON report schema the repo emits.

Every ``"<family>/v<N>"`` tag written into a JSON document must come from a
constant defined here — the ``schema-discipline`` rule of
``python -m repro.analysis`` flags inline tag literals anywhere else under
``src/``.  Routing every writer through one module means a format bump is a
one-line diff reviewers cannot miss, and EXPERIMENTS.md has a single table
to stay in sync with.

The module is deliberately stdlib-only and imports nothing from the rest of
the package, so the analysis CLI, the bench reporter and the serving tier
can all depend on it without cycles.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, NamedTuple

#: Static-analysis report (``python -m repro.analysis --json``).  v2 adds
#: the ``timing`` (per-rule seconds) and ``cache`` (hit/miss) blocks.
ANALYSIS_REPORT = "repro.analysis/v2"
#: Grandfathered-findings baseline consumed by the analysis CLI.
ANALYSIS_BASELINE = "repro.analysis.baseline/v1"
#: Per-file fact-cache entries under ``--cache-dir``.
ANALYSIS_CACHE = "repro.analysis.cache/v1"
#: ``MetricsRegistry.snapshot()`` documents (telemetry smoke artifact).
OBS_METRICS = "repro.obs.metrics/v1"
#: Cost-model calibration report (``CalibrationReport.to_dict()``).
OBS_CALIBRATION = "repro.obs.calibration/v1"
#: Cluster simulator report (``build_cluster_report``).
CLUSTER_REPORT = "cluster_report/v1"
#: Benchmark suite report (``BENCH_<suite>.json``).
BENCH_REPORT = "repro.bench/v1"


class SchemaSpec(NamedTuple):
    """One registered report format."""

    tag: str
    description: str
    #: Top-level keys a conforming document must carry.
    required_keys: tuple


_REGISTRY: Dict[str, SchemaSpec] = {}


def register_schema(tag: str, description: str,
                    required_keys: Iterable[str] = ()) -> str:
    """Register ``tag`` and return it (so constants can self-register)."""
    if tag in _REGISTRY:
        raise ValueError(f"schema tag {tag!r} registered twice")
    _REGISTRY[tag] = SchemaSpec(tag, description, tuple(required_keys))
    return tag


def registered_schemas() -> Dict[str, SchemaSpec]:
    """Snapshot of the registry (tag -> spec), for docs and tests."""
    return dict(_REGISTRY)


def validate_document(doc: Mapping, expect: str = "") -> None:
    """Check ``doc`` carries a registered ``schema`` tag and required keys.

    Raises ``ValueError`` with a precise message on any mismatch; returns
    ``None`` on success so writers can call it inline before serializing.
    """
    tag = doc.get("schema")
    if expect and tag != expect:
        raise ValueError(f"expected schema {expect!r}, document carries {tag!r}")
    spec = _REGISTRY.get(tag)
    if spec is None:
        raise ValueError(f"document schema {tag!r} is not registered "
                         f"(known: {sorted(_REGISTRY)})")
    missing = [key for key in spec.required_keys if key not in doc]
    if missing:
        raise ValueError(f"{tag} document is missing required keys {missing}")


register_schema(ANALYSIS_REPORT, "static-analysis findings report",
                ("schema", "findings", "summary", "timing", "cache"))
register_schema(ANALYSIS_BASELINE, "grandfathered static-analysis findings",
                ("schema", "findings"))
register_schema(ANALYSIS_CACHE, "per-file static-analysis fact cache entry",
                ("schema", "content_sha256", "summary"))
register_schema(OBS_METRICS, "metrics registry snapshot",
                ("schema", "metrics"))
register_schema(OBS_CALIBRATION, "latency cost-model calibration report",
                ("schema", "summary"))
register_schema(CLUSTER_REPORT, "cluster simulation report",
                ("schema", "requests", "replicas"))
register_schema(BENCH_REPORT, "benchmark suite report",
                ("schema", "suite", "workloads"))

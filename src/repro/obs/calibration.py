"""Cost-model calibration: roofline predictions vs measured trajectories.

The serving router and the autoscaler both price work with the analytic
roofline model (:mod:`repro.profiling`), whose device profiles are
datasheet-level — absolute numbers are not expected to match this
process's wall clock.  What *is* expected to hold is proportionality:
one global scale factor should map predictions onto measurements, and the
residual after that fit is the cost-model error the router actually eats
when it ranks (scheme, plan) options.

:func:`run_cost_model_calibration` runs every (workload=generation plan,
quantization scheme) cell on a tiny fixture model, predicts each cell
with :func:`repro.profiling.estimate_plan_latency`, measures it with an
injectable clock (:func:`repro.profiling.measure_latency` — wall clock by
default, a :class:`~repro.serving.clock.VirtualClock` in tests), fits the
scale as the median measured/predicted ratio, and reports per-cell
residual error.  When handed a :class:`~repro.obs.tracer.Tracer` it also
books one span per cell (with the prediction attached as attributes) so
the calibration run itself is traceable.

The report answers, per cell: *if the router used the cost model to pick
this option, how wrong was its latency estimate?*
"""

from __future__ import annotations

import json
import time
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..profiling import (
    BYTES_FP32,
    GPU_V100,
    DeviceProfile,
    estimate_latency,
    estimate_plan_latency,
    measure_latency,
    plan_model_evals,
    unet_layer_costs,
)
from .tracer import NULL_TRACER
from .. import schemas

SCHEMA = schemas.OBS_CALIBRATION

#: Scheme names whose traffic the roofline prices at full precision (no
#: registered quantization scheme to resolve byte widths from).
_FULL_PRECISION = ("fp32", "none", None)


def predict_plan_seconds(costs, device: DeviceProfile, scheme,
                         num_steps: int, guidance_scale: float = 1.0,
                         solver_evals_per_step: int = 1,
                         first_order_final_step: bool = False) -> float:
    """Roofline end-to-end seconds for one (scheme, plan) cell.

    Same contract as :func:`repro.profiling.estimate_plan_latency`, plus
    a full-precision spelling (``scheme="fp32"``) that prices traffic at
    4 bytes/element instead of resolving a registered scheme.
    """
    if scheme in _FULL_PRECISION:
        per_forward = estimate_latency(costs, device,
                                       bytes_per_element=BYTES_FP32)
        return per_forward * plan_model_evals(num_steps, guidance_scale,
                                              solver_evals_per_step,
                                              first_order_final_step)
    return estimate_plan_latency(costs, device, scheme, num_steps,
                                 guidance_scale=guidance_scale,
                                 solver_evals_per_step=solver_evals_per_step,
                                 first_order_final_step=first_order_final_step)


class CalibrationReport:
    """Predicted-vs-measured cells plus the fitted global scale."""

    def __init__(self, device: str = "unknown"):
        self.device = device
        self.cells: List[Dict] = []

    def add(self, workload: str, scheme: str, predicted_s: float,
            measured_s: float, **extra) -> Dict:
        """Record one (workload, scheme) cell; returns the cell dict."""
        if predicted_s <= 0 or measured_s <= 0:
            raise ValueError(
                f"cell ({workload}, {scheme}) needs positive times, got "
                f"predicted={predicted_s} measured={measured_s}")
        cell = {"workload": workload, "scheme": scheme,
                "predicted_s": predicted_s, "measured_s": measured_s,
                "ratio": measured_s / predicted_s, **extra}
        self.cells.append(cell)
        return cell

    def fit_scale(self) -> float:
        """Global scale: the median measured/predicted ratio.

        The median (not the mean) so one outlier cell — a GC pause, a
        cold cache — cannot drag every other cell's residual with it.
        """
        if not self.cells:
            raise ValueError("cannot fit a scale with no cells recorded")
        return float(np.median([cell["ratio"] for cell in self.cells]))

    def to_dict(self) -> Dict:
        """The calibration report document (JSON-safe, deterministic order)."""
        scale = self.fit_scale()
        cells = []
        errors = []
        for cell in sorted(self.cells,
                           key=lambda c: (c["workload"], c["scheme"])):
            scaled = cell["predicted_s"] * scale
            error = (scaled - cell["measured_s"]) / cell["measured_s"]
            errors.append(abs(error))
            cells.append({**cell, "scaled_predicted_s": scaled,
                          "error_pct": 100.0 * error})
        return {
            "schema": SCHEMA,
            "device_profile": self.device,
            "fitted_scale": scale,
            "cells": cells,
            "summary": {
                "num_cells": len(cells),
                "median_abs_error_pct": float(100 * np.median(errors)),
                "max_abs_error_pct": float(100 * max(errors)),
            },
        }

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")
        return path


# ----------------------------------------------------------------------
# the calibration harness
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _fixture_pipeline(scheme: str):
    """Tiny (8x8) pipeline per scheme; cached — quantization is the dear part."""
    from ..core import QuantizationConfig, quantize_pipeline
    from ..diffusion import DiffusionPipeline
    from ..models import DiffusionModel, ModelSpec, UNetConfig

    spec = ModelSpec(
        name="calib-tiny", task="unconditional", image_size=8,
        image_channels=3, latent=False, latent_channels=4,
        latent_downsample=4,
        unet=UNetConfig(in_channels=3, out_channels=3, base_channels=8,
                        channel_multipliers=(1, 2), num_res_blocks=1,
                        attention_levels=(1,), num_heads=2, context_dim=None),
        text_embed_dim=None, train_timesteps=8, default_sampling_steps=4,
        seed=3)
    pipeline = DiffusionPipeline(DiffusionModel(
        spec, rng=np.random.default_rng(17)), num_steps=4)
    if scheme in _FULL_PRECISION:
        return pipeline
    config = QuantizationConfig(weight_dtype=scheme, activation_dtype="int8",
                                rounding_learning=False).scaled_for_speed()
    quantized, _report = quantize_pipeline(pipeline, config)
    return quantized


def run_cost_model_calibration(
        schemes: Sequence[str] = ("fp32", "int8", "int4"),
        workloads: Optional[Dict[str, object]] = None,
        device: DeviceProfile = GPU_V100,
        repeats: int = 3,
        clock: Callable[[], float] = time.perf_counter,
        tracer=None) -> CalibrationReport:
    """Measure every (workload, scheme) cell against the roofline model.

    ``workloads`` maps a workload name to a
    :class:`~repro.diffusion.GenerationPlan` (default: ddim/dpm2 at the
    fixture's 4 steps).  Per cell the fixture pipeline runs a full
    trajectory ``repeats`` times under ``clock`` (best-of, to shed
    scheduler noise) while the roofline predicts the same trajectory from
    the fixture's own :class:`~repro.models.UNetConfig`.
    """
    from ..diffusion import GenerationPlan
    from ..diffusion.samplers import get_sampler_info

    if workloads is None:
        workloads = {"sampler_loop.ddim": GenerationPlan(sampler="ddim",
                                                         num_steps=4),
                     "sampler_loop.dpm2": GenerationPlan(sampler="dpm2",
                                                         num_steps=4)}
    tracer = tracer or NULL_TRACER
    report = CalibrationReport(device=device.name)
    for workload, plan in sorted(workloads.items()):
        for scheme in schemes:
            pipeline = _fixture_pipeline(scheme)
            info = get_sampler_info(plan.sampler)
            costs = unet_layer_costs(pipeline.spec.unet,
                                     sample_size=pipeline.spec.image_size)
            predicted = predict_plan_seconds(
                costs, device, scheme, pipeline.num_steps,
                guidance_scale=plan.guidance_scale,
                solver_evals_per_step=info.evals_per_step,
                first_order_final_step=info.first_order_final_step)

            noise = pipeline.initial_noise(1, seed=11)

            def run(pipeline=pipeline, plan=plan, noise=noise):
                sampler = plan.build_sampler(pipeline.schedule,
                                             pipeline.num_steps)
                return sampler.sample(pipeline.model, noise.shape,
                                      np.random.default_rng(1),
                                      initial_noise=noise.copy())

            started = tracer.time()
            measurement = measure_latency(run, clock=clock, repeats=repeats)
            measured = measurement["best_s"]
            if tracer.enabled:
                tracer.add_span(f"calibrate.{workload}", started,
                                tracer.time(), category="calibration",
                                process="calibration", lane=scheme,
                                attrs={"workload": workload, "scheme": scheme,
                                       "predicted_s": predicted,
                                       "measured_s": measured})
            report.add(workload, scheme, predicted, measured,
                       repeats=repeats,
                       model_evals=plan_model_evals(
                           pipeline.num_steps, plan.guidance_scale,
                           info.evals_per_step,
                           info.first_order_final_step))
    return report

"""Unified telemetry: span tracing, metrics, and cost-model calibration.

The substrate every subsystem reports into:

* :class:`Tracer` / :data:`NULL_TRACER` — clock-agnostic span tracing
  with Chrome trace-event export (open the saved JSON at
  https://ui.perfetto.dev);
* :class:`MetricsRegistry` — labeled counters/gauges/histograms with
  bounded reservoirs and snapshot round-trip;
* :class:`CalibrationReport` / :func:`run_cost_model_calibration` —
  predicted-vs-measured latency error of the roofline cost model per
  (workload, scheme).

Instrumented call sites default to :data:`NULL_TRACER` (or ``None`` on
hot loops), so telemetry costs nothing unless a caller passes a live
:class:`Tracer` — an invariant the bench suite's ``telemetry.overhead``
workload guards.
"""

from .calibration import (
    CalibrationReport,
    predict_plan_seconds,
    run_cost_model_calibration,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    load_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER",
    "validate_chrome_trace", "load_chrome_trace",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "CalibrationReport", "predict_plan_seconds",
    "run_cost_model_calibration",
]

"""Labeled metrics registry: counters, gauges, histograms with reservoirs.

One :class:`MetricsRegistry` per process (or per simulation) holds every
instrument, keyed by ``(name, sorted labels)`` — the same identity model
as Prometheus, so a later dashboard can scrape :meth:`snapshot` output
without translation.  Three instrument kinds:

* :class:`Counter` — monotonically increasing total (requests admitted,
  cache hits);
* :class:`Gauge` — last-written value (active replicas, queue depth);
* :class:`Histogram` — observation stream summarized by count/sum/min/max
  plus a **bounded reservoir** of at most ``reservoir_size`` samples for
  percentile estimates.  The reservoir uses classic Vitter reservoir
  sampling driven by a seeded ``random.Random``, so snapshots are
  deterministic for a deterministic observation stream and memory stays
  O(reservoir_size) no matter how many observations arrive.

Snapshots are plain JSON-safe dicts; :meth:`MetricsRegistry.restore`
rebuilds a registry from one, so snapshot → JSON → restore → snapshot
round-trips exactly (tested).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from .. import schemas

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic total; ``inc`` by any non-negative amount."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> Dict:
        return {"value": self.value}

    def restore(self, state: Dict) -> None:
        self.value = float(state["value"])


class Gauge:
    """Last-written value; ``set`` or ``add`` (deltas may be negative)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Dict:
        return {"value": self.value}

    def restore(self, state: Dict) -> None:
        self.value = float(state["value"])


class Histogram:
    """Count/sum/min/max plus a bounded, deterministic sample reservoir."""

    kind = "histogram"

    def __init__(self, reservoir_size: int = 512, seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.reservoir_size = reservoir_size
        self.seed = seed
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.reservoir: List[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.reservoir) < self.reservoir_size:
            self.reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self.reservoir[slot] = value

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (q in [0, 1]) from the reservoir."""
        if not self.reservoir:
            return None
        ordered = sorted(self.reservoir)
        index = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[index]

    def snapshot(self) -> Dict:
        state = {
            "count": self.count, "sum": self.sum,
            "min": self.min, "max": self.max,
            "mean": self.sum / self.count if self.count else None,
            "reservoir_size": self.reservoir_size, "seed": self.seed,
            "reservoir": list(self.reservoir),
        }
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            state[label] = self.percentile(q)
        return state

    def restore(self, state: Dict) -> None:
        self.reservoir_size = int(state["reservoir_size"])
        self.seed = int(state["seed"])
        self.count = int(state["count"])
        self.sum = float(state["sum"])
        self.min = state["min"]
        self.max = state["max"]
        self.reservoir = [float(v) for v in state["reservoir"]]
        # Re-seeding then replaying `count` draws would be wrong (the
        # original draws depended on interleaving), so a restored
        # histogram keeps its reservoir frozen-fair: further observes use
        # a fresh RNG at the recorded seed, which preserves determinism
        # of snapshot → restore → snapshot with no new observations.
        self._rng = random.Random(self.seed)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Instruments keyed by (name, labels); snapshot/restore round-trips."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], object] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Optional[Dict[str, str]],
             **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = _KINDS[kind](**kwargs)
            self._instruments[key] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{instrument.kind}, not {kind}")
        return instrument

    def counter(self, name: str,
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str,
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, labels: Optional[Dict[str, str]] = None,
                  reservoir_size: int = 512, seed: int = 0) -> Histogram:
        return self._get("histogram", name, labels,
                         reservoir_size=reservoir_size, seed=seed)

    # ------------------------------------------------------------------
    def instruments(self) -> Iterable[Tuple[str, LabelKey, object]]:
        for (name, labels), instrument in sorted(
                self._instruments.items(), key=lambda item: item[0]):
            yield name, labels, instrument

    def snapshot(self) -> Dict:
        """JSON-safe dump of every instrument (sorted, deterministic)."""
        metrics = []
        for name, labels, instrument in self.instruments():
            metrics.append({
                "name": name,
                "labels": {k: v for k, v in labels},
                "kind": instrument.kind,
                "state": instrument.snapshot(),
            })
        return {"schema": schemas.OBS_METRICS, "metrics": metrics}

    @classmethod
    def restore(cls, snapshot: Dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` document."""
        if snapshot.get("schema") != schemas.OBS_METRICS:
            raise ValueError(
                f"unknown metrics snapshot schema {snapshot.get('schema')!r}")
        registry = cls()
        for entry in snapshot["metrics"]:
            kind = entry["kind"]
            if kind not in _KINDS:
                raise ValueError(f"unknown instrument kind {kind!r}")
            instrument = registry._get(kind, entry["name"], entry["labels"])
            instrument.restore(entry["state"])
        return registry

"""Span tracing with Chrome trace-event export (Perfetto-loadable).

One :class:`Tracer` collects every kind of telemetry the stack produces:

* **spans** — named intervals with attributes, either measured live
  (:meth:`Tracer.span` as a context manager around wall-clock work) or
  recorded retroactively with explicit timestamps
  (:meth:`Tracer.add_span`, the discrete-event form: the cluster
  simulator *models* service time on a
  :class:`~repro.serving.clock.VirtualClock` and books the span after the
  fact);
* **async spans** — begin/end pairs correlated by id rather than stack
  nesting (:meth:`Tracer.async_span`): per-request lifecycles overlap
  arbitrarily on one replica, which lane-nested spans cannot express;
* **instant events** — zero-duration marks (:meth:`Tracer.instant`) for
  decisions: autoscaler actions, admission rejections.

The tracer is **clock-agnostic**: it never calls the ``time`` module
unless the default clock is left in place, so components driven by a
``VirtualClock`` produce traces in virtual seconds and — critically —
tracing can never perturb a deterministic simulation (events are
appended to a private buffer; no shared state the simulated system reads
is touched).

Lanes map to the Chrome trace-event ``pid``/``tid`` pair: ``process``
groups a subsystem ("runner", "serving", "cluster"), ``lane`` one track
inside it ("replica-3", a worker thread).  When no lane is given the
current thread's name is used, so the experiment Runner's worker threads
separate naturally.  Export follows the Chrome trace-event JSON format
(``X`` complete events, ``b``/``e`` async pairs, ``i`` instants, ``M``
metadata), loadable at https://ui.perfetto.dev.

:data:`NULL_TRACER` is the shared no-op implementation components default
to; its methods return immediately and hot loops may additionally guard
with ``if tracer is not None`` to skip even the call.  The event buffer
is bounded (``max_events``); once full, further events are counted in
:attr:`Tracer.dropped` instead of growing without limit.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

#: Event phases of the Chrome trace-event format this tracer emits.
_PHASES = ("X", "b", "e", "i", "M")

DEFAULT_PROCESS = "repro"


class _Span:
    """One live span; a context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "category", "_pid", "_tid", "attrs",
                 "started")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 pid: int, tid: int, attrs: Dict):
        self._tracer = tracer
        self.name = name
        self.category = category
        self._pid = pid
        self._tid = tid
        self.attrs = attrs
        self.started = tracer.time()

    def set(self, key: str, value) -> "_Span":
        """Attach (or overwrite) one attribute; chainable."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._append({
            "ph": "X", "name": self.name, "cat": self.category,
            "ts": self.started, "dur": self._tracer.time() - self.started,
            "pid": self._pid, "tid": self._tid, "args": self.attrs,
        })


class _NullSpan:
    """Shared do-nothing span so the disabled path allocates nothing."""

    __slots__ = ()
    attrs: Dict = {}

    def set(self, key: str, value) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the default everywhere, bench-guarded near-zero cost.

    Every method returns immediately; :meth:`span` hands back one shared
    :class:`_NullSpan` instance.  ``enabled`` is ``False`` so hot paths can
    skip even the call (``tracer if tracer.enabled else None``).
    """

    enabled = False
    dropped = 0

    def time(self) -> float:
        return 0.0

    def span(self, name: str, category: str = "span", lane=None,
             process=None, attrs=None) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, started: float, finished: float,
                 category: str = "span", lane=None, process=None,
                 attrs=None) -> None:
        return None

    def async_span(self, name: str, correlation_id: int, started: float,
                   finished: float, category: str = "span", lane=None,
                   process=None, attrs=None) -> None:
        return None

    def instant(self, name: str, ts: Optional[float] = None,
                category: str = "event", lane=None, process=None,
                attrs=None) -> None:
        return None

    def events(self) -> List[Dict]:
        return []

    def clear(self) -> None:
        return None

    def to_chrome_trace(self) -> Dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()) + "\n")
        return path


#: The shared no-op tracer instance instrumented components default to.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans/instants on an injectable clock; exports Chrome JSON.

    ``clock`` is any zero-argument callable returning seconds — the default
    is ``time.perf_counter``; hand it a
    :class:`~repro.serving.clock.VirtualClock` and every measured span
    lands on the simulation's timeline instead.  Components that model
    time themselves bypass the clock entirely via :meth:`add_span` /
    :meth:`async_span` with explicit timestamps.

    Thread-safe: the experiment Runner records stage spans from worker
    threads concurrently.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 max_events: int = 1_000_000,
                 process: str = DEFAULT_PROCESS):
        self._clock = clock
        self.max_events = max_events
        self.default_process = process
        self.dropped = 0
        self._events: List[Dict] = []
        self._lock = threading.Lock()
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[str, str], int] = {}
        self._meta: List[Dict] = []

    # ------------------------------------------------------------------
    def time(self) -> float:
        """Current time on the tracer's clock (seconds)."""
        return self._clock()

    def _lane_ids(self, process: Optional[str], lane) -> Tuple[int, int]:
        """Resolve (process, lane) names to stable (pid, tid) integers.

        New names emit ``M`` metadata events so Perfetto labels the
        tracks.  ``lane=None`` uses the calling thread's name, which
        separates thread-pool workers without any caller bookkeeping.
        """
        process = process or self.default_process
        if lane is None:
            lane = threading.current_thread().name
        lane = str(lane)
        with self._lock:
            pid = self._pids.get(process)
            if pid is None:
                pid = len(self._pids) + 1
                self._pids[process] = pid
                self._meta.append({
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": process}})
            key = (process, lane)
            tid = self._tids.get(key)
            if tid is None:
                tid = sum(1 for p, _ in self._tids if p == process) + 1
                self._tids[key] = tid
                self._meta.append({
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": lane}})
        return pid, tid

    def _append(self, event: Dict) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(event)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "span", lane=None,
             process: Optional[str] = None, attrs: Optional[Dict] = None
             ) -> _Span:
        """Open a live span (use as a context manager); measured on exit."""
        pid, tid = self._lane_ids(process, lane)
        return _Span(self, name, category, pid, tid, dict(attrs or {}))

    def add_span(self, name: str, started: float, finished: float,
                 category: str = "span", lane=None,
                 process: Optional[str] = None,
                 attrs: Optional[Dict] = None) -> None:
        """Record a completed span with explicit timestamps (seconds)."""
        pid, tid = self._lane_ids(process, lane)
        self._append({
            "ph": "X", "name": name, "cat": category, "ts": started,
            "dur": max(finished - started, 0.0), "pid": pid, "tid": tid,
            "args": dict(attrs or {}),
        })

    def async_span(self, name: str, correlation_id: int, started: float,
                   finished: float, category: str = "span", lane=None,
                   process: Optional[str] = None,
                   attrs: Optional[Dict] = None) -> None:
        """Record a begin/end pair correlated by id (overlapping lifecycles)."""
        pid, tid = self._lane_ids(process, lane)
        ident = str(correlation_id)
        self._append({
            "ph": "b", "name": name, "cat": category, "ts": started,
            "pid": pid, "tid": tid, "id": ident, "args": dict(attrs or {}),
        })
        self._append({
            "ph": "e", "name": name, "cat": category, "ts": finished,
            "pid": pid, "tid": tid, "id": ident, "args": {},
        })

    def instant(self, name: str, ts: Optional[float] = None,
                category: str = "event", lane=None,
                process: Optional[str] = None,
                attrs: Optional[Dict] = None) -> None:
        """Record a zero-duration mark (a decision, a rejection, an error)."""
        pid, tid = self._lane_ids(process, lane)
        self._append({
            "ph": "i", "name": name, "cat": category,
            "ts": self.time() if ts is None else ts,
            "pid": pid, "tid": tid, "s": "t", "args": dict(attrs or {}),
        })

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    def events(self) -> List[Dict]:
        """Snapshot of the recorded events (timestamps in seconds)."""
        with self._lock:
            return list(self._events)

    def spans(self, name: Optional[str] = None,
              category: Optional[str] = None) -> List[Dict]:
        """Recorded complete spans, optionally filtered by name/category."""
        return [event for event in self.events()
                if event["ph"] == "X"
                and (name is None or event["name"] == name)
                and (category is None or event.get("cat") == category)]

    def clear(self) -> None:
        """Drop every recorded event (lane ids and metadata are kept)."""
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def to_chrome_trace(self) -> Dict:
        """Render the Chrome trace-event JSON document (timestamps in us)."""
        with self._lock:
            events = [dict(event) for event in self._meta]
            recorded = [dict(event) for event in self._events]
            dropped = self.dropped
        for event in recorded:
            event["ts"] = event["ts"] * 1e6
            if "dur" in event:
                event["dur"] = event["dur"] * 1e6
        events.extend(recorded)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "clock_unit": "seconds",
                          "dropped_events": dropped},
        }

    def save(self, path) -> Path:
        """Write the Chrome trace JSON to ``path`` (open in Perfetto)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()) + "\n")
        return path


def validate_chrome_trace(document: Dict) -> List[Dict]:
    """Schema-check a Chrome trace-event document; returns its events.

    Raises ``ValueError`` on the first malformed event.  Checks the
    subset of the trace-event format this tracer emits (and Perfetto
    requires): a top-level ``traceEvents`` list whose members carry a
    known ``ph``, numeric ``ts`` (plus ``dur`` for ``X``), integer
    ``pid``/``tid``, a string ``name``, a JSON-object ``args``, and an
    ``id`` on async begin/end events.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("trace document must be a dict with 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ValueError(f"{where}: unknown phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing/empty 'name'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"{where}: '{field}' must be an int")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where}: 'args' must be an object")
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{where}: 'ts' must be a number")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            raise ValueError(f"{where}: 'X' event needs a numeric 'dur'")
        if phase in ("b", "e") and not isinstance(event.get("id"), str):
            raise ValueError(f"{where}: async event needs a string 'id'")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"{where}: instant scope must be t/p/g")
    return events


def load_chrome_trace(path) -> Dict:
    """Load and schema-check a trace file; returns the document."""
    document = json.loads(Path(path).read_text())
    validate_chrome_trace(document)
    return document

"""Attention blocks used by the diffusion U-Nets and the text encoder.

The paper's Stable Diffusion characterization (Section III) identifies the
attention key/query/value linear layers and the attention score tensor as the
dominant memory consumers; these classes are the concrete layers the
quantizer wraps and the profiling cost model walks.

All GEMMs here reach numpy through the compute-backend dispatch: the
projections go via :class:`~repro.nn.layers.Linear` and the score/value
products via :func:`repro.tensor.functional.scaled_dot_product_attention`,
so no attention code multiplies matrices directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor
from ..tensor import functional as F
from .layers import GELU, LayerNorm, Linear
from .module import Module


class MultiHeadAttention(Module):
    """Multi-head attention with optional cross-attention context.

    When ``context_dim`` is given, keys and values are computed from the
    context sequence (text embeddings for Stable Diffusion); otherwise the
    block performs self-attention over the input sequence.
    """

    def __init__(self, dim: int, num_heads: int = 4,
                 context_dim: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim={dim} must be divisible by num_heads={num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        kv_dim = context_dim if context_dim is not None else dim
        self.to_q = Linear(dim, dim, bias=False, rng=rng)
        self.to_k = Linear(kv_dim, dim, bias=False, rng=rng)
        self.to_v = Linear(kv_dim, dim, bias=False, rng=rng)
        self.to_out = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, tokens, _ = x.shape
        x = x.reshape(batch, tokens, self.num_heads, self.head_dim)
        x = x.transpose(0, 2, 1, 3)
        return x.reshape(batch * self.num_heads, tokens, self.head_dim)

    def _merge_heads(self, x: Tensor, batch: int) -> Tensor:
        tokens = x.shape[1]
        x = x.reshape(batch, self.num_heads, tokens, self.head_dim)
        x = x.transpose(0, 2, 1, 3)
        return x.reshape(batch, tokens, self.dim)

    def forward(self, x: Tensor, context: Optional[Tensor] = None) -> Tensor:
        batch = x.shape[0]
        context = x if context is None else context
        query = self._split_heads(self.to_q(x))
        key = self._split_heads(self.to_k(context))
        value = self._split_heads(self.to_v(context))
        attended = F.scaled_dot_product_attention(query, key, value)
        return self.to_out(self._merge_heads(attended, batch))


class FeedForward(Module):
    """Two-layer GELU feed-forward block used inside transformer blocks."""

    def __init__(self, dim: int, expansion: int = 2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.fc1 = Linear(dim, dim * expansion, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(dim * expansion, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.act(self.fc1(x)))


class TransformerBlock(Module):
    """Pre-norm transformer block: self-attention, cross-attention, MLP."""

    def __init__(self, dim: int, num_heads: int = 4,
                 context_dim: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.self_attention = MultiHeadAttention(dim, num_heads, rng=rng)
        self.has_cross_attention = context_dim is not None
        if self.has_cross_attention:
            self.norm2 = LayerNorm(dim)
            self.cross_attention = MultiHeadAttention(
                dim, num_heads, context_dim=context_dim, rng=rng)
        self.norm3 = LayerNorm(dim)
        self.mlp = FeedForward(dim, rng=rng)

    def forward(self, x: Tensor, context: Optional[Tensor] = None) -> Tensor:
        x = x + self.self_attention(self.norm1(x))
        if self.has_cross_attention and context is not None:
            x = x + self.cross_attention(self.norm2(x), context=context)
        x = x + self.mlp(self.norm3(x))
        return x


class SpatialTransformer(Module):
    """Apply a transformer block over the spatial positions of a feature map.

    This is the "Attention block" of the U-Net in Figure 1 of the paper: the
    ``(N, C, H, W)`` feature map is flattened to ``(N, H*W, C)`` tokens,
    passed through a transformer block (optionally with text cross-attention)
    and reshaped back.
    """

    def __init__(self, channels: int, num_heads: int = 4,
                 context_dim: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.channels = channels
        self.proj_in = Linear(channels, channels, rng=rng)
        self.block = TransformerBlock(channels, num_heads,
                                      context_dim=context_dim, rng=rng)
        self.proj_out = Linear(channels, channels, rng=rng)

    def forward(self, x: Tensor, context: Optional[Tensor] = None) -> Tensor:
        n, c, h, w = x.shape
        tokens = x.reshape(n, c, h * w).transpose(0, 2, 1)
        tokens = self.proj_in(tokens)
        tokens = self.block(tokens, context=context)
        tokens = self.proj_out(tokens)
        out = tokens.transpose(0, 2, 1).reshape(n, c, h, w)
        return out + x

"""Core layers used by the diffusion U-Nets.

The paper quantizes the weights and activations of ``Conv2d`` and ``Linear``
layers while keeping normalization layers and the SiLU activation in full
precision (Section VI.A).  The quantizer in :mod:`repro.core` therefore keys
off the classes defined here when deciding what to wrap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor
from ..tensor import functional as F
from ..tensor.backend import active_backend
from ..tensor.tensor import _no_graph
from . import init
from .module import Module, Parameter

_DEFAULT_RNG = np.random.default_rng(0)


class Identity(Module):
    """Pass the input through unchanged (useful as an optional branch)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or _DEFAULT_RNG
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), in_features, rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer with square kernels."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or _DEFAULT_RNG
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class SiLU(Module):
    """SiLU activation; kept in full precision by the quantizer."""

    def forward(self, x: Tensor) -> Tensor:
        return x.silu()


class GELU(Module):
    """GELU activation used inside transformer feed-forward blocks."""

    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class GroupNorm(Module):
    """Group normalization over channel groups of a ``(N, C, H, W)`` tensor."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups != 0:
            raise ValueError(
                f"num_channels={num_channels} not divisible by num_groups={num_groups}")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(init.ones((num_channels,)))
        self.bias = Parameter(init.zeros((num_channels,)))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if _no_graph(x, self.weight, self.bias):
            # Graph-free fast path: the backend kernel mirrors the autograd
            # spelling below operation for operation (the reference backend
            # is bit-identical to it).
            out = active_backend().group_norm(
                x.data, self.num_groups, self.weight.data, self.bias.data,
                self.eps)
            return Tensor._from_data(out)
        grouped = x.reshape(n, self.num_groups, c // self.num_groups * h * w)
        mean = grouped.mean(axis=2, keepdims=True)
        var = grouped.var(axis=2, keepdims=True)
        normed = (grouped - mean) / (var + self.eps).sqrt()
        normed = normed.reshape(n, c, h, w)
        scale = self.weight.reshape(1, c, 1, 1)
        shift = self.bias.reshape(1, c, 1, 1)
        return normed * scale + shift


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        if _no_graph(x, self.weight, self.bias):
            # Backend kernel; the reference spelling mirrors the autograd
            # path below bit-identically.
            return Tensor._from_data(active_backend().layer_norm(
                x.data, self.weight.data, self.bias.data, self.eps))
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mean) / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or _DEFAULT_RNG
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), 0.02, rng))

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        return self.weight[token_ids]


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self._rng = rng or _DEFAULT_RNG

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p <= 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p).astype(np.float32)
        return x * Tensor(mask / (1.0 - self.p))


class Downsample(Module):
    """Stride-2 convolution halving the spatial resolution."""

    def __init__(self, channels: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv = Conv2d(channels, channels, kernel_size=3, stride=2,
                           padding=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(x)


class Upsample(Module):
    """Nearest-neighbour 2x upsampling followed by a 3x3 convolution."""

    def __init__(self, channels: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv = Conv2d(channels, channels, kernel_size=3, padding=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(F.upsample_nearest(x, scale=2))


class AvgPool2d(Module):
    """Average pooling wrapper used by the metric feature extractor."""

    def __init__(self, kernel: int = 2):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, kernel=self.kernel)

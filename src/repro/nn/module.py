"""Module system: parameter containers with named traversal and state dicts.

This mirrors the small subset of ``torch.nn.Module`` behaviour that the
diffusion models and the quantizer rely on: recursive parameter discovery,
named submodule traversal (used by the quantizer to locate every Conv2d and
Linear layer), train/eval flags and state-dict save/load (used by the model
zoo to cache "pre-trained" checkpoints).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self.training = True

    # ------------------------------------------------------------------
    # attribute magic for automatic registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable array that is part of the state dict."""
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its descendants."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (prefix + name if prefix else name), param
        for name, module in self._modules.items():
            child_prefix = f"{prefix}{name}." if prefix else f"{name}."
            yield from module.named_parameters(child_prefix)

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}{name}." if prefix else f"{name}."
            yield from module.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def get_submodule(self, path: str) -> "Module":
        """Return the descendant module addressed by a dotted ``path``."""
        module: Module = self
        if not path:
            return module
        for part in path.split("."):
            module = module._modules[part]
        return module

    def set_submodule(self, path: str, new_module: "Module") -> None:
        """Replace the descendant module addressed by a dotted ``path``."""
        parts = path.split(".")
        parent = self.get_submodule(".".join(parts[:-1])) if len(parts) > 1 else self
        parent._modules[parts[-1]] = new_module
        object.__setattr__(parent, parts[-1], new_module)

    # ------------------------------------------------------------------
    # modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, flag: bool) -> "Module":
        for param in self.parameters():
            param.requires_grad = flag
        return self

    def num_parameters(self) -> int:
        """Total number of scalar parameters, for model-size reporting."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[prefix + name] = param.data.copy()
        for name, buf in self._buffers.items():
            state[prefix + name] = buf.copy()
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = prefix + name
            if key in state:
                param.data = np.asarray(state[key], dtype=np.float32).reshape(param.shape)
        for name in self._buffers:
            key = prefix + name
            if key in state:
                self._buffers[name] = np.asarray(state[key], dtype=np.float32)
                object.__setattr__(self, name, self._buffers[name])
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run modules in order, feeding each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self._modules[name] = module
            object.__setattr__(self, name, module)
            self._order.append(name)

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __len__(self):
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x, *args, **kwargs):
        for name in self._order:
            x = self._modules[name](x, *args, **kwargs)
        return x


class ModuleList(Module):
    """Hold an indexable list of submodules (no implicit forward)."""

    def __init__(self, modules=()):
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        self._modules[name] = module
        object.__setattr__(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __len__(self):
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

"""Neural-network building blocks (torch.nn substitute)."""

from .module import Module, Parameter, Sequential, ModuleList
from .layers import (
    AvgPool2d,
    Conv2d,
    Downsample,
    Dropout,
    Embedding,
    GELU,
    GroupNorm,
    Identity,
    LayerNorm,
    Linear,
    SiLU,
    Upsample,
)
from .attention import (
    FeedForward,
    MultiHeadAttention,
    SpatialTransformer,
    TransformerBlock,
)
from .optim import SGD, Adam, Optimizer
from . import init

__all__ = [
    "Module", "Parameter", "Sequential", "ModuleList",
    "Linear", "Conv2d", "SiLU", "GELU", "GroupNorm", "LayerNorm",
    "Embedding", "Dropout", "Identity", "Downsample", "Upsample", "AvgPool2d",
    "MultiHeadAttention", "FeedForward", "TransformerBlock", "SpatialTransformer",
    "Optimizer", "SGD", "Adam", "init",
]

"""Weight initialization helpers.

Initializers take an explicit :class:`numpy.random.Generator` so that the
model zoo can build byte-for-byte reproducible "pre-trained" checkpoints.
"""

from __future__ import annotations

import numpy as np


def kaiming_uniform(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization, the default for conv/linear weights."""
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(shape, std: float, rng: np.random.Generator) -> np.ndarray:
    """Zero-mean Gaussian initialization with the given standard deviation."""
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)

"""Floating-point quantization primitives (paper Eq. 6-9, 12).

Quantization here is *simulated*: values are snapped onto the grid of the
target low-bitwidth format but stored back as float32, which is the standard
way PTQ methods evaluate quality (the paper does the same; the efficiency
argument rests on the bitwidth of the representation, not on how the host
simulates it).
"""

from __future__ import annotations

import numpy as np

from .formats import FPFormat


def fp_scales(values: np.ndarray, fmt: FPFormat) -> np.ndarray:
    """Per-element quantization step ``s_i`` of the format's grid (Eq. 9).

    A floating-point format is a union of uniform grids, one per binade; the
    step for a value depends on which binade (power-of-two interval) the
    value falls into, with one shared subnormal grid below ``2^(1-b)``.
    """
    magnitude = np.abs(values).astype(np.float64)
    with np.errstate(divide="ignore"):
        biased_exponent = np.floor(np.log2(magnitude) + fmt.bias)
    subnormal = ~np.isfinite(biased_exponent) | (biased_exponent <= 1)
    exponent = np.where(subnormal, 1.0, biased_exponent)
    return np.power(2.0, exponent - fmt.bias - fmt.mantissa_bits)


def quantize_fp(values: np.ndarray, fmt: FPFormat) -> np.ndarray:
    """Round-to-nearest floating-point quantization (Eq. 6-9).

    The input is clipped to ``[-c, c]`` where ``c`` is the format's largest
    magnitude, then each element is snapped to the nearest point of its
    binade's grid.
    """
    values = np.asarray(values, dtype=np.float64)
    c = fmt.max_value
    clipped = np.clip(values, -c, c)
    scales = fp_scales(clipped, fmt)
    quantized = np.clip(scales * np.round(clipped / scales), -c, c)
    return quantized.astype(np.float32)


def quantize_fp_with_rounding(values: np.ndarray, fmt: FPFormat,
                              round_up: np.ndarray) -> np.ndarray:
    """Floating-point quantization with an explicit per-element rounding choice.

    This is the inference-time form of the learned rounding (Eq. 12 with the
    sigmoid hardened to 0/1): each element is floored onto its grid and then
    bumped up by one step wherever ``round_up`` is true.
    """
    values = np.asarray(values, dtype=np.float64)
    c = fmt.max_value
    clipped = np.clip(values, -c, c)
    scales = fp_scales(clipped, fmt)
    offsets = np.where(np.asarray(round_up, dtype=bool), 1.0, 0.0)
    quantized = np.clip(scales * (np.floor(clipped / scales) + offsets), -c, c)
    return quantized.astype(np.float32)


def calibrate_block_biases(values: np.ndarray, fmt: FPFormat,
                           block_size: int) -> np.ndarray:
    """Per-block exponent biases for block-wise FP quantization.

    The tensor is flattened and split into contiguous blocks of
    ``block_size`` elements; each block gets the bias that makes its own
    maximum magnitude the largest representable value (Eq. 7 inverted),
    mirroring how block floating-point hardware shares one exponent offset
    per block.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    flat = np.abs(np.asarray(values, dtype=np.float64)).reshape(-1)
    num_blocks = int(np.ceil(flat.size / block_size)) or 1
    padded = np.zeros(num_blocks * block_size, dtype=np.float64)
    padded[: flat.size] = flat
    maxima = padded.reshape(num_blocks, block_size).max(axis=1)
    default = FPFormat.default_bias(fmt.exponent_bits)
    biases = np.full(num_blocks, default, dtype=np.float64)
    positive = maxima > 0
    if np.any(positive):
        biases[positive] = [
            FPFormat.bias_for_max_value(fmt.exponent_bits, fmt.mantissa_bits, m)
            for m in maxima[positive]
        ]
    return biases


def quantize_fp_blockwise(values: np.ndarray, fmt: FPFormat,
                          biases: np.ndarray, block_size: int) -> np.ndarray:
    """Block-wise FP quantization with one exponent bias per block.

    ``biases`` must come from :func:`calibrate_block_biases` on a tensor of
    the same size (the block partition has to line up).  This is
    :func:`quantize_fp` with the scalar bias generalized to a per-element
    array, vectorized over the whole tensor: all of Eq. 6-9 is elementwise
    in the bias, so broadcasting a per-block bias costs one pass.
    """
    values = np.asarray(values, dtype=np.float64)
    flat = values.reshape(-1)
    biases = np.asarray(biases, dtype=np.float64)
    if biases.size * block_size < flat.size:
        raise ValueError(
            f"{biases.size} blocks of {block_size} cannot cover a tensor of "
            f"{flat.size} elements")
    bias = np.repeat(biases, block_size)[: flat.size]
    c = (2.0 - 2.0 ** (-fmt.mantissa_bits)) * np.power(
        2.0, 2 ** fmt.exponent_bits - bias - 1.0)
    clipped = np.clip(flat, -c, c)
    with np.errstate(divide="ignore"):
        biased_exponent = np.floor(np.log2(np.abs(clipped)) + bias)
    subnormal = ~np.isfinite(biased_exponent) | (biased_exponent <= 1)
    exponent = np.where(subnormal, 1.0, biased_exponent)
    scales = np.power(2.0, exponent - bias - fmt.mantissa_bits)
    quantized = np.clip(scales * np.round(clipped / scales), -c, c)
    return quantized.reshape(values.shape).astype(np.float32)


def quantization_mse(values: np.ndarray, fmt: FPFormat) -> float:
    """Mean squared error between a tensor and its quantized version.

    This is the objective minimized by the encoding/bias grid search
    (Algorithm 1).
    """
    quantized = quantize_fp(values, fmt)
    diff = np.asarray(values, dtype=np.float64) - quantized
    return float(np.mean(diff * diff))

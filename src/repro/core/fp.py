"""Floating-point quantization primitives (paper Eq. 6-9, 12).

Quantization here is *simulated*: values are snapped onto the grid of the
target low-bitwidth format but stored back as float32, which is the standard
way PTQ methods evaluate quality (the paper does the same; the efficiency
argument rests on the bitwidth of the representation, not on how the host
simulates it).
"""

from __future__ import annotations

import numpy as np

from .formats import FPFormat


def fp_scales(values: np.ndarray, fmt: FPFormat) -> np.ndarray:
    """Per-element quantization step ``s_i`` of the format's grid (Eq. 9).

    A floating-point format is a union of uniform grids, one per binade; the
    step for a value depends on which binade (power-of-two interval) the
    value falls into, with one shared subnormal grid below ``2^(1-b)``.
    """
    magnitude = np.abs(values).astype(np.float64)
    with np.errstate(divide="ignore"):
        biased_exponent = np.floor(np.log2(magnitude) + fmt.bias)
    subnormal = ~np.isfinite(biased_exponent) | (biased_exponent <= 1)
    exponent = np.where(subnormal, 1.0, biased_exponent)
    return np.power(2.0, exponent - fmt.bias - fmt.mantissa_bits)


def quantize_fp(values: np.ndarray, fmt: FPFormat) -> np.ndarray:
    """Round-to-nearest floating-point quantization (Eq. 6-9).

    The input is clipped to ``[-c, c]`` where ``c`` is the format's largest
    magnitude, then each element is snapped to the nearest point of its
    binade's grid.
    """
    values = np.asarray(values, dtype=np.float64)
    c = fmt.max_value
    clipped = np.clip(values, -c, c)
    scales = fp_scales(clipped, fmt)
    quantized = np.clip(scales * np.round(clipped / scales), -c, c)
    return quantized.astype(np.float32)


def quantize_fp_with_rounding(values: np.ndarray, fmt: FPFormat,
                              round_up: np.ndarray) -> np.ndarray:
    """Floating-point quantization with an explicit per-element rounding choice.

    This is the inference-time form of the learned rounding (Eq. 12 with the
    sigmoid hardened to 0/1): each element is floored onto its grid and then
    bumped up by one step wherever ``round_up`` is true.
    """
    values = np.asarray(values, dtype=np.float64)
    c = fmt.max_value
    clipped = np.clip(values, -c, c)
    scales = fp_scales(clipped, fmt)
    offsets = np.where(np.asarray(round_up, dtype=bool), 1.0, 0.0)
    quantized = np.clip(scales * (np.floor(clipped / scales) + offsets), -c, c)
    return quantized.astype(np.float32)


def quantization_mse(values: np.ndarray, fmt: FPFormat) -> float:
    """Mean squared error between a tensor and its quantized version.

    This is the objective minimized by the encoding/bias grid search
    (Algorithm 1).
    """
    quantized = quantize_fp(values, fmt)
    diff = np.asarray(values, dtype=np.float64) - quantized
    return float(np.mean(diff * diff))

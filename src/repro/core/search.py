"""Per-tensor encoding and bias selection (paper Algorithm 1).

For every weight or activation tensor the method grid-searches over the
candidate encodings for the target bitwidth (4 for FP8, 2 for FP4) and a set
of exponent-bias candidates derived from the tensor's value range, choosing
the combination that minimizes the MSE between the quantized tensor and the
full-precision tensor.  The paper uses 111 bias candidates, for 444 (FP8) or
222 (FP4) combinations per tensor; both are defaults here.

The search is *greedy across layers*: the model quantizer walks the network
layer by layer in breadth-first order, fixes each tensor's format as soon as
it is chosen, and never revisits it — exactly Algorithm 1's trimming of the
search space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .formats import FPFormat, encoding_candidates
from .fp import quantization_mse

#: Number of bias candidates the paper found to be the best trade-off.
DEFAULT_NUM_BIAS_CANDIDATES = 111


@dataclass(frozen=True)
class SearchResult:
    """Outcome of the per-tensor format search."""

    fmt: FPFormat
    mse: float
    candidates_evaluated: int


def bias_candidates(values: np.ndarray, fmt: FPFormat,
                    num_candidates: int = DEFAULT_NUM_BIAS_CANDIDATES) -> List[float]:
    """Bias candidates derived from evenly spaced clipping maxima.

    The paper generates evenly spaced values between the minimum and maximum
    of the data being quantized and converts each to a bias through Eq. 7.
    Since the format is symmetric in sign, the relevant range is
    ``(0, max(|X|)]``: each candidate maximum becomes the largest magnitude
    the format can represent, i.e. a clipping threshold.
    """
    magnitude = float(np.max(np.abs(values))) if np.asarray(values).size else 0.0
    if magnitude <= 0.0:
        return [FPFormat.default_bias(fmt.exponent_bits)]
    maxima = np.linspace(magnitude / num_candidates, magnitude, num_candidates)
    return [float(FPFormat.bias_for_max_value(fmt.exponent_bits, fmt.mantissa_bits, m))
            for m in maxima]


def search_tensor_format(values: np.ndarray, bitwidth: int,
                         num_bias_candidates: int = DEFAULT_NUM_BIAS_CANDIDATES,
                         encodings: Optional[Sequence[FPFormat]] = None) -> SearchResult:
    """Algorithm 1 for a single tensor: best (encoding, bias) pair by MSE."""
    values = np.asarray(values, dtype=np.float32)
    encodings = list(encodings) if encodings is not None else encoding_candidates(bitwidth)
    best_fmt: Optional[FPFormat] = None
    best_mse = np.inf
    evaluated = 0
    for encoding in encodings:
        for bias in bias_candidates(values, encoding, num_bias_candidates):
            candidate = encoding.with_bias(bias)
            mse = quantization_mse(values, candidate)
            evaluated += 1
            if mse < best_mse:
                best_mse = mse
                best_fmt = candidate
    if best_fmt is None:  # pragma: no cover - encodings is never empty
        raise RuntimeError("no encoding candidates were provided")
    return SearchResult(fmt=best_fmt, mse=float(best_mse),
                        candidates_evaluated=evaluated)

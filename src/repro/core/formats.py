"""Low-bitwidth floating-point formats (paper Section IV-B).

A low-bitwidth float with ``e`` exponent bits, ``m`` mantissa bits and an
exponent bias ``b`` represents values

    f = (-1)^s * 2^(p - b) * (1 + d_1/2 + ... + d_m/2^m)

The paper treats the bias as a *continuous per-tensor* parameter: changing it
slides the representable range up or down, and Algorithm 1 searches over both
the (e, m) split and the bias.  The candidate encodings are the ones the
paper considers: E2M5/E3M4/E4M3/E5M2 for FP8 and E1M2/E2M1 for FP4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class FPFormat:
    """A (sign, exponent, mantissa) floating-point encoding with a real bias."""

    exponent_bits: int
    mantissa_bits: int
    bias: float

    def __post_init__(self):
        if self.exponent_bits < 1:
            raise ValueError("exponent_bits must be >= 1")
        if self.mantissa_bits < 0:
            raise ValueError("mantissa_bits must be >= 0")

    # ------------------------------------------------------------------
    @property
    def bitwidth(self) -> int:
        """Total storage bits including the sign bit."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def name(self) -> str:
        return f"E{self.exponent_bits}M{self.mantissa_bits}"

    @property
    def max_value(self) -> float:
        """Largest representable magnitude ``c`` (paper Eq. 7)."""
        return (2.0 - 2.0 ** (-self.mantissa_bits)) * 2.0 ** (
            2 ** self.exponent_bits - self.bias - 1)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive representable magnitude (a subnormal step)."""
        return 2.0 ** (1 - self.bias - self.mantissa_bits)

    def with_bias(self, bias: float) -> "FPFormat":
        """Return a copy of this format with a different exponent bias."""
        return replace(self, bias=bias)

    @staticmethod
    def default_bias(exponent_bits: int) -> float:
        """The conventional bias ``2^(e-1)`` used before any search."""
        return float(2 ** (exponent_bits - 1))

    @classmethod
    def from_name(cls, name: str, bias: float = None) -> "FPFormat":
        """Parse an ``ExMy`` name such as ``"E4M3"``."""
        name = name.upper()
        if not name.startswith("E") or "M" not in name:
            raise ValueError(f"cannot parse floating-point format name '{name}'")
        e_part, m_part = name[1:].split("M")
        exponent_bits, mantissa_bits = int(e_part), int(m_part)
        if bias is None:
            bias = cls.default_bias(exponent_bits)
        return cls(exponent_bits, mantissa_bits, float(bias))

    def to_dict(self) -> Dict:
        """Plain-dict form for JSON round-tripping of reports/configs."""
        return {"exponent_bits": self.exponent_bits,
                "mantissa_bits": self.mantissa_bits, "bias": self.bias}

    @classmethod
    def from_dict(cls, data: Dict) -> "FPFormat":
        return cls(exponent_bits=int(data["exponent_bits"]),
                   mantissa_bits=int(data["mantissa_bits"]),
                   bias=float(data["bias"]))

    @staticmethod
    def bias_for_max_value(exponent_bits: int, mantissa_bits: int,
                           max_value: float) -> float:
        """Invert Eq. 7: the bias that makes ``max_value`` the largest magnitude.

        Algorithm 1 generates candidate maxima from the data being quantized
        and converts each one to a bias candidate through this function.
        """
        if max_value <= 0:
            raise ValueError("max_value must be positive")
        return (2 ** exponent_bits - 1
                - np.log2(max_value / (2.0 - 2.0 ** (-mantissa_bits))))

    # ------------------------------------------------------------------
    def representable_values(self) -> np.ndarray:
        """Enumerate every non-negative representable value of this format.

        Used by tests and by the grid-distance analyses; for the bitwidths of
        interest (4 and 8 bits) the enumeration is tiny.
        """
        values = [0.0]
        # Subnormals: exponent field 0, mantissa in (0, 1).
        for mantissa in range(1, 2 ** self.mantissa_bits):
            fraction = mantissa / 2 ** self.mantissa_bits
            values.append(fraction * 2.0 ** (1 - self.bias))
        # Normals: exponent field 1 .. 2^e - 1.
        for exponent in range(1, 2 ** self.exponent_bits):
            for mantissa in range(2 ** self.mantissa_bits):
                fraction = 1.0 + mantissa / 2 ** self.mantissa_bits
                values.append(fraction * 2.0 ** (exponent - self.bias))
        return np.asarray(sorted(set(values)), dtype=np.float64)


def _named(encodings: List[Tuple[int, int]]) -> List[FPFormat]:
    return [FPFormat(e, m, FPFormat.default_bias(e)) for e, m in encodings]


#: Candidate FP8 encodings considered by the search (paper Section IV-B).
FP8_ENCODINGS: List[FPFormat] = _named([(2, 5), (3, 4), (4, 3), (5, 2)])

#: Candidate FP4 encodings considered by the search.
FP4_ENCODINGS: List[FPFormat] = _named([(1, 2), (2, 1)])

ENCODING_CANDIDATES: Dict[int, List[FPFormat]] = {
    8: FP8_ENCODINGS,
    4: FP4_ENCODINGS,
}


def encoding_candidates(bitwidth: int) -> List[FPFormat]:
    """Return the paper's candidate encodings for a given bitwidth."""
    try:
        return list(ENCODING_CANDIDATES[bitwidth])
    except KeyError as exc:
        raise ValueError(
            f"no floating-point encodings defined for bitwidth {bitwidth}; "
            f"supported: {sorted(ENCODING_CANDIDATES)}") from exc

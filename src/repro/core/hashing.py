"""Canonical content hashing for configs and experiment-stage inputs.

The declarative experiment API (:mod:`repro.experiments`) keys every stage
artifact by a content hash of its inputs, so two runs that describe the same
work share the same artifacts.  For that to hold, hashing must be *stable*:
independent of dict insertion order, of tuple-vs-list spelling and of which
process computed it.  :func:`canonicalize` normalizes a value into a
JSON-safe structure with sorted keys, and :func:`content_hash` digests the
canonical JSON with SHA-256.

Floats are serialized through ``repr`` (via ``json.dumps``), which
round-trips IEEE-754 doubles exactly, so equal configs hash equally across
runs and platforms.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

#: Hex digest length used for artifact keys.  64 bits of a SHA-256 digest
#: is far beyond collision range for the store sizes involved here while
#: keeping paths readable.
DEFAULT_KEY_LENGTH = 16


def canonicalize(value: Any) -> Any:
    """Normalize ``value`` into a deterministic, JSON-serializable structure.

    * dicts are key-sorted (keys coerced to ``str``),
    * tuples/sets become sorted-or-ordered lists,
    * dataclasses and objects exposing ``to_dict`` are expanded,
    * numpy scalars become python scalars; numpy arrays are replaced by a
      ``{"__ndarray__": sha, "shape": ..., "dtype": ...}`` digest stub so
      bulky payloads never end up inside a key.
    """
    if isinstance(value, dict):
        return {str(key): canonicalize(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(item) for item in value)
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(value).tobytes()).hexdigest(),
            "shape": list(value.shape),
            "dtype": str(value.dtype),
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonicalize(dataclasses.asdict(value))
    if hasattr(value, "to_dict") and callable(value.to_dict):
        return canonicalize(value.to_dict())
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__!r} for hashing")


def canonical_json(value: Any) -> str:
    """Deterministic JSON text for ``value`` (sorted keys, no whitespace)."""
    return json.dumps(canonicalize(value), sort_keys=True,
                      separators=(",", ":"))


def content_hash(value: Any, length: int = DEFAULT_KEY_LENGTH) -> str:
    """Hex content hash of ``value``'s canonical JSON form."""
    digest = hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
    return digest[:length]

"""Atomic file writes shared by the zoo cache and the experiment store.

Parallel experiment runners, benchmark sessions and serving processes all
share on-disk caches (zoo checkpoints, run-store artifacts).  A reader must
never observe a partially-written file, so every cache write goes through
:func:`atomic_write`: the payload is fully written to a temp file in the
target directory, then renamed over the destination with ``os.replace`` —
atomic on POSIX.  A writer crashing mid-write leaves only a ``*.tmp`` file
behind, which no cache lookup matches.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable


#: Process umask, read once at import (reading it later would require the
#: non-thread-safe os.umask() round trip under concurrent runner threads).
_UMASK = os.umask(0)
os.umask(_UMASK)


def atomic_write(path: Path, writer: Callable) -> Path:
    """Write a file atomically: ``writer(binary_file_object)`` + ``os.replace``.

    Concurrent readers observe either the old file, no file, or the
    complete new one — never a truncated write.  The temp file's 0600
    ``mkstemp`` mode is widened to the usual umask-honoring mode so shared
    caches stay readable across users, matching a plain ``open(..., "wb")``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
        os.chmod(tmp_name, 0o666 & ~_UMASK)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path

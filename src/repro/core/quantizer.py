"""Model-level post-training quantization orchestration.

This module ties the pieces of the paper's method together into a single
entry point, :func:`quantize_pipeline`:

1. collect the initialization/calibration datasets by running the
   full-precision pipeline (Section V),
2. walk the U-Net's Conv2d and Linear layers in breadth-first order and, for
   each, greedily fix the weight format (Algorithm 1) and the activation
   format, optionally refining the weight rounding with gradient-based
   rounding learning (Section V-B),
3. install quantized layer wrappers, including the separate quantization of
   skip-connection concat inputs, and
4. return a new pipeline around the quantized model plus a per-layer report.

Integer (Q-diffusion style) quantization is available through the same entry
point so that FP-vs-INT comparisons run through identical machinery.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..diffusion import DiffusionPipeline
from ..models import DiffusionModel
from .calibration import (
    CalibrationConfig,
    CalibrationData,
    collect_calibration_data,
    quantizable_layer_paths,
    skip_concat_paths,
)
from .fp import quantize_fp, quantize_fp_with_rounding
from .integer import calibrate_int_format, quantize_int
from .qmodules import (
    FPTensorQuantizer,
    IdentityQuantizer,
    IntTensorQuantizer,
    QuantizedConv2d,
    QuantizedLinear,
    QuantizedSkipConcat,
    TensorQuantizer,
)
from .rounding import RoundingLearningConfig, learn_rounding
from .search import DEFAULT_NUM_BIAS_CANDIDATES, search_tensor_format

VALID_DTYPES = ("fp32", "fp8", "fp4", "int8", "int4")


def _dtype_kind_and_bits(dtype: str):
    dtype = dtype.lower()
    if dtype not in VALID_DTYPES:
        raise ValueError(f"unknown dtype '{dtype}'; valid: {VALID_DTYPES}")
    if dtype == "fp32":
        return "none", 32
    kind = "fp" if dtype.startswith("fp") else "int"
    return kind, int(dtype[-1])


@dataclass
class QuantizationConfig:
    """Full description of one quantization experiment (a table row)."""

    weight_dtype: str = "fp8"
    activation_dtype: str = "fp8"
    rounding_learning: bool = False
    num_bias_candidates: int = DEFAULT_NUM_BIAS_CANDIDATES
    quantize_skip_connections: bool = True
    max_search_elements: int = 16384
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    rounding: RoundingLearningConfig = field(default_factory=RoundingLearningConfig)

    @property
    def label(self) -> str:
        """Row label in the paper's "Bitwidth (W/A)" convention."""
        names = {"fp32": "FP32", "fp8": "FP8", "fp4": "FP4",
                 "int8": "INT8", "int4": "INT4"}
        label = f"{names[self.weight_dtype]}/{names[self.activation_dtype]}"
        if self.weight_dtype == "fp4" and not self.rounding_learning:
            label += " (no RL)"
        return label

    def scaled_for_speed(self, num_bias_candidates: int = 21,
                         rounding_iterations: int = 30) -> "QuantizationConfig":
        """A cheaper copy of this config for tests and smoke benchmarks."""
        return replace(
            self,
            num_bias_candidates=num_bias_candidates,
            rounding=replace(self.rounding, iterations=rounding_iterations),
        )


# ----------------------------------------------------------------------
# presets matching the paper's table rows
# ----------------------------------------------------------------------
def full_precision_config() -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="fp32", activation_dtype="fp32")


def fp8_fp8_config() -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="fp8", activation_dtype="fp8")


def fp4_fp8_config(rounding_learning: bool = True) -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="fp4", activation_dtype="fp8",
                              rounding_learning=rounding_learning)


def int8_int8_config() -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="int8", activation_dtype="int8")


def int4_int8_config() -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="int4", activation_dtype="int8")


PAPER_CONFIGS: Dict[str, QuantizationConfig] = {
    "FP32/FP32": full_precision_config(),
    "INT8/INT8": int8_int8_config(),
    "FP8/FP8": fp8_fp8_config(),
    "INT4/INT8": int4_int8_config(),
    "FP4/FP8": fp4_fp8_config(rounding_learning=True),
    "FP4/FP8 (no RL)": fp4_fp8_config(rounding_learning=False),
}


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
@dataclass
class LayerQuantizationRecord:
    """What happened to one layer during quantization."""

    path: str
    layer_type: str
    weight_format: str
    activation_format: str
    weight_mse: float
    rounding_learning_used: bool = False
    rounding_mse_before: float = 0.0
    rounding_mse_after: float = 0.0


@dataclass
class QuantizationReport:
    """Per-layer records plus experiment-level metadata."""

    config: QuantizationConfig
    layers: List[LayerQuantizationRecord] = field(default_factory=list)
    skip_concats: List[str] = field(default_factory=list)

    @property
    def num_quantized_layers(self) -> int:
        return len(self.layers)

    def mean_weight_mse(self) -> float:
        if not self.layers:
            return 0.0
        return float(np.mean([record.weight_mse for record in self.layers]))

    def summary(self) -> str:
        lines = [f"quantization config: {self.config.label}",
                 f"quantized layers: {self.num_quantized_layers}",
                 f"quantized skip concats: {len(self.skip_concats)}",
                 f"mean weight quantization MSE: {self.mean_weight_mse():.3e}"]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _subsample(values: np.ndarray, limit: int, seed: int = 0) -> np.ndarray:
    """Deterministically subsample a flat array to bound search cost."""
    flat = np.asarray(values, dtype=np.float32).reshape(-1)
    if flat.size <= limit:
        return flat
    rng = np.random.default_rng(seed)
    index = rng.choice(flat.size, size=limit, replace=False)
    return flat[index]


def clone_model(model: DiffusionModel) -> DiffusionModel:
    """Deep copy of a diffusion model bundle (weights included)."""
    return copy.deepcopy(model)


def _build_weight_quantizer_and_data(layer, config: QuantizationConfig,
                                     calibration: CalibrationData, path: str,
                                     record: LayerQuantizationRecord):
    """Quantize one layer's weight, returning (quantized_weight, quantizer)."""
    weights = layer.weight.data
    kind, bits = _dtype_kind_and_bits(config.weight_dtype)
    if kind == "none":
        record.weight_format = "FP32"
        return weights.copy(), IdentityQuantizer()

    if kind == "int":
        int_format = calibrate_int_format(weights, bits)
        record.weight_format = f"INT{bits}"
        quantized = quantize_int(weights, int_format)
        record.weight_mse = float(np.mean((weights - quantized) ** 2))
        return quantized, IntTensorQuantizer(int_format)

    search = search_tensor_format(
        _subsample(weights, config.max_search_elements), bits,
        num_bias_candidates=config.num_bias_candidates)
    fmt = search.fmt
    record.weight_format = f"FP{bits}({fmt.name}, bias={fmt.bias:.2f})"
    quantized = quantize_fp(weights, fmt)
    record.weight_mse = float(np.mean((weights - quantized) ** 2))

    use_rounding = config.rounding_learning and bits <= 4
    samples = calibration.samples(path)
    if use_rounding and samples:
        result = learn_rounding(layer, fmt, samples, config.rounding)
        quantized = quantize_fp_with_rounding(weights, fmt, result.round_up)
        record.rounding_learning_used = True
        record.rounding_mse_before = result.initial_output_mse
        record.rounding_mse_after = result.final_output_mse
        record.weight_mse = float(np.mean((weights - quantized) ** 2))
    return quantized, FPTensorQuantizer(fmt)


def _build_activation_quantizer(samples: np.ndarray, config: QuantizationConfig
                                ) -> TensorQuantizer:
    """Choose the activation quantizer from initialization-dataset samples."""
    kind, bits = _dtype_kind_and_bits(config.activation_dtype)
    if kind == "none" or samples.size == 0:
        return IdentityQuantizer()
    samples = _subsample(samples, config.max_search_elements)
    if kind == "int":
        return IntTensorQuantizer.calibrated(samples, bits)
    search = search_tensor_format(samples, bits,
                                  num_bias_candidates=config.num_bias_candidates)
    return FPTensorQuantizer(search.fmt)


# ----------------------------------------------------------------------
# main entry points
# ----------------------------------------------------------------------
def quantize_model(model: DiffusionModel, pipeline: DiffusionPipeline,
                   config: QuantizationConfig,
                   calibration: Optional[CalibrationData] = None,
                   prompts: Optional[Sequence[str]] = None
                   ) -> QuantizationReport:
    """Quantize ``model`` in place (its U-Net layers are replaced).

    ``pipeline`` must wrap the *full-precision* model and is only used to
    collect calibration data when ``calibration`` is not supplied.
    """
    needs_calibration = (config.activation_dtype != "fp32"
                         or (config.rounding_learning
                             and config.weight_dtype.startswith("fp")))
    if calibration is None:
        if needs_calibration:
            calibration = collect_calibration_data(pipeline, config.calibration,
                                                   prompts=prompts)
        else:
            calibration = CalibrationData()

    report = QuantizationReport(config=config)
    unet = model.unet

    for path, layer in quantizable_layer_paths(unet):
        record = LayerQuantizationRecord(
            path=path, layer_type=type(layer).__name__,
            weight_format="FP32", activation_format="FP32", weight_mse=0.0)
        quantized_weight, weight_quantizer = _build_weight_quantizer_and_data(
            layer, config, calibration, path, record)
        activation_quantizer = _build_activation_quantizer(
            calibration.concatenated(path), config)
        record.activation_format = activation_quantizer.describe()

        if isinstance(layer, nn.Conv2d):
            wrapper = QuantizedConv2d(layer, quantized_weight,
                                      activation_quantizer, weight_quantizer)
        else:
            wrapper = QuantizedLinear(layer, quantized_weight,
                                      activation_quantizer, weight_quantizer)
        unet.set_submodule(path, wrapper)
        report.layers.append(record)

    if config.quantize_skip_connections and config.activation_dtype != "fp32":
        for path, _ in skip_concat_paths(unet):
            main_quantizer = _build_activation_quantizer(
                calibration.concatenated(f"{path}.main"), config)
            skip_quantizer = _build_activation_quantizer(
                calibration.concatenated(f"{path}.skip"), config)
            unet.set_submodule(path, QuantizedSkipConcat(main_quantizer,
                                                         skip_quantizer))
            report.skip_concats.append(path)
    return report


def quantize_pipeline(pipeline: DiffusionPipeline, config: QuantizationConfig,
                      prompts: Optional[Sequence[str]] = None,
                      calibration: Optional[CalibrationData] = None):
    """Return ``(quantized_pipeline, report)`` leaving the input pipeline intact.

    This is the main public entry point used by the examples and benchmarks:
    it clones the full-precision model, quantizes the clone according to
    ``config`` and wraps it in a new pipeline with identical sampling
    settings so seed-matched comparisons are possible.
    """
    if config.weight_dtype == "fp32" and config.activation_dtype == "fp32":
        return pipeline, QuantizationReport(config=config)
    quantized_model = clone_model(pipeline.model)
    report = quantize_model(quantized_model, pipeline, config,
                            calibration=calibration, prompts=prompts)
    quantized_pipeline = DiffusionPipeline(quantized_model, spec=pipeline.spec,
                                           num_steps=pipeline.num_steps)
    return quantized_pipeline, report

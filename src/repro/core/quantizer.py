"""Model-level post-training quantization orchestration.

This module ties the pieces of the paper's method together into a single
entry point, :func:`quantize_pipeline`:

1. collect the initialization/calibration datasets by running the
   full-precision pipeline (Section V),
2. walk the U-Net's Conv2d and Linear layers in breadth-first order and, for
   each, resolve the weight/activation :class:`~repro.core.schemes.QuantScheme`
   (config defaults, optionally overridden per layer by a
   :class:`~repro.core.policy.QuantizationPolicy`) and let the scheme
   calibrate and quantize the tensors — for the paper's FP schemes that is
   the greedy format search (Algorithm 1) plus optional gradient-based
   rounding learning (Section V-B),
3. install quantized layer wrappers, including the separate quantization of
   skip-connection concat inputs, and
4. return a new pipeline around the quantized model plus a per-layer report.

Schemes are looked up in the registry of :mod:`repro.core.schemes`, so
integer (Q-diffusion style) baselines, per-channel/block-wise variants and
user-registered schemes all run through identical machinery.  Configs and
reports round-trip through ``to_dict``/``from_dict``/JSON so experiments can
be saved, diffed and replayed.
"""

from __future__ import annotations

import copy
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..diffusion import DiffusionPipeline
from ..models import DiffusionModel
from .calibration import (
    CalibrationConfig,
    CalibrationData,
    collect_calibration_data,
    quantizable_layer_paths,
    skip_concat_paths,
)
from .policy import QuantizationPolicy, boundary_interior_policy
from .qmodules import (
    QuantizedConv2d,
    QuantizedLinear,
    QuantizedSkipConcat,
)
from .rounding import RoundingLearningConfig
from .schemes import QuantScheme, SchemeLike, get_scheme
from .search import DEFAULT_NUM_BIAS_CANDIDATES

#: Dtype strings of the original string-based API.  Kept for backwards
#: compatibility; the authoritative list is ``schemes.available_schemes()``.
VALID_DTYPES = ("fp32", "fp8", "fp4", "int8", "int4")


@dataclass
class QuantizationConfig:
    """Full description of one quantization experiment (a table row).

    ``weight_dtype`` / ``activation_dtype`` accept any registered scheme
    name (``"fp4"``, ``"int8_pc"``, ``"fp4_block"``, ...); they stay strings
    so configs remain trivially serializable and the pre-registry API keeps
    working.  ``policy`` optionally overrides the schemes per layer for
    mixed-precision experiments.
    """

    weight_dtype: str = "fp8"
    activation_dtype: str = "fp8"
    rounding_learning: bool = False
    num_bias_candidates: int = DEFAULT_NUM_BIAS_CANDIDATES
    quantize_skip_connections: bool = True
    max_search_elements: int = 16384
    subsample_seed: int = 0
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    rounding: RoundingLearningConfig = field(default_factory=RoundingLearningConfig)
    policy: Optional[QuantizationPolicy] = None

    # ------------------------------------------------------------------
    def weight_scheme(self) -> QuantScheme:
        return get_scheme(self.weight_dtype)

    def activation_scheme(self) -> QuantScheme:
        return get_scheme(self.activation_dtype)

    @property
    def label(self) -> str:
        """Row label in the paper's "Bitwidth (W/A)" convention."""
        label = f"{self.weight_scheme().label}/{self.activation_scheme().label}"
        if (self.weight_scheme().supports_rounding_learning
                and not self.rounding_learning):
            label += " (no RL)"
        if self.policy is not None and self.policy.rules:
            label += " [mixed]"
        return label

    def is_full_precision(self) -> bool:
        """True when no layer can be touched (identity schemes, no policy)."""
        defaults_identity = (self.weight_scheme().is_identity
                             and self.activation_scheme().is_identity)
        if not defaults_identity:
            return False
        if self.policy is None:
            return True
        return not any(not get_scheme(name).is_identity
                       for name in self.policy.referenced_schemes())

    def requires_calibration(self) -> bool:
        """Whether quantization needs recorded activations for this config."""
        activation_schemes = [self.activation_scheme()]
        weight_schemes = [self.weight_scheme()]
        if self.policy is not None:
            for rule in self.policy.rules:
                if rule.activations is not None:
                    activation_schemes.append(get_scheme(rule.activations))
                if rule.weights is not None:
                    weight_schemes.append(get_scheme(rule.weights))
        if any(not scheme.is_identity for scheme in activation_schemes):
            return True
        return self.rounding_learning and any(
            scheme.supports_rounding_learning for scheme in weight_schemes)

    def scaled_for_speed(self, num_bias_candidates: int = 21,
                         rounding_iterations: int = 30) -> "QuantizationConfig":
        """A cheaper copy of this config for tests and smoke benchmarks."""
        return replace(
            self,
            num_bias_candidates=num_bias_candidates,
            rounding=replace(self.rounding, iterations=rounding_iterations),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-safe; predicate policy rules are rejected)."""
        return {
            "weight_dtype": self.weight_dtype,
            "activation_dtype": self.activation_dtype,
            "rounding_learning": self.rounding_learning,
            "num_bias_candidates": self.num_bias_candidates,
            "quantize_skip_connections": self.quantize_skip_connections,
            "max_search_elements": self.max_search_elements,
            "subsample_seed": self.subsample_seed,
            "calibration": asdict(self.calibration),
            "rounding": asdict(self.rounding),
            "policy": self.policy.to_dict() if self.policy is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "QuantizationConfig":
        return cls(
            weight_dtype=data["weight_dtype"],
            activation_dtype=data["activation_dtype"],
            rounding_learning=data.get("rounding_learning", False),
            num_bias_candidates=data.get("num_bias_candidates",
                                         DEFAULT_NUM_BIAS_CANDIDATES),
            quantize_skip_connections=data.get("quantize_skip_connections", True),
            max_search_elements=data.get("max_search_elements", 16384),
            subsample_seed=data.get("subsample_seed", 0),
            calibration=CalibrationConfig(**data.get("calibration", {})),
            rounding=RoundingLearningConfig(**data.get("rounding", {})),
            policy=QuantizationPolicy.from_dict(data.get("policy")),
        )

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "QuantizationConfig":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Stable content hash of this config (see :mod:`repro.core.hashing`).

        Two configs with equal serialized forms hash identically, so the
        experiment store can key quantize-stage artifacts by config content.
        """
        from .hashing import content_hash
        return content_hash(self.to_dict())


# ----------------------------------------------------------------------
# presets matching the paper's table rows
# ----------------------------------------------------------------------
def full_precision_config() -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="fp32", activation_dtype="fp32")


def fp8_fp8_config() -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="fp8", activation_dtype="fp8")


def fp4_fp8_config(rounding_learning: bool = True) -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="fp4", activation_dtype="fp8",
                              rounding_learning=rounding_learning)


def int8_int8_config() -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="int8", activation_dtype="int8")


def int4_int8_config() -> QuantizationConfig:
    return QuantizationConfig(weight_dtype="int4", activation_dtype="int8")


def mixed_precision_config(model: DiffusionModel,
                           boundary: SchemeLike = "fp8",
                           interior: SchemeLike = "fp4",
                           activation_dtype: str = "fp8",
                           rounding_learning: bool = False
                           ) -> QuantizationConfig:
    """Mixed-precision preset: boundary layers high precision, interior low.

    Builds a :func:`~repro.core.policy.boundary_interior_policy` over the
    model's U-Net so the first and last quantizable layers use ``boundary``
    while every other layer uses ``interior``.
    """
    policy = boundary_interior_policy(model.unet, boundary)
    return QuantizationConfig(weight_dtype=get_scheme(interior).name,
                              activation_dtype=activation_dtype,
                              rounding_learning=rounding_learning,
                              policy=policy)


PAPER_CONFIGS: Dict[str, QuantizationConfig] = {
    "FP32/FP32": full_precision_config(),
    "INT8/INT8": int8_int8_config(),
    "FP8/FP8": fp8_fp8_config(),
    "INT4/INT8": int4_int8_config(),
    "FP4/FP8": fp4_fp8_config(rounding_learning=True),
    "FP4/FP8 (no RL)": fp4_fp8_config(rounding_learning=False),
}


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
@dataclass
class LayerQuantizationRecord:
    """What happened to one layer during quantization."""

    path: str
    layer_type: str
    weight_format: str
    activation_format: str
    weight_mse: float
    weight_scheme: str = "fp32"
    activation_scheme: str = "fp32"
    policy_rule: Optional[str] = None
    rounding_learning_used: bool = False
    rounding_mse_before: float = 0.0
    rounding_mse_after: float = 0.0
    #: Bytes of packed integer weight storage (None for float schemes).
    packed_bytes: Optional[int] = None

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "LayerQuantizationRecord":
        return cls(**data)


@dataclass
class QuantizationReport:
    """Per-layer records plus experiment-level metadata."""

    config: QuantizationConfig
    layers: List[LayerQuantizationRecord] = field(default_factory=list)
    skip_concats: List[str] = field(default_factory=list)

    @property
    def num_quantized_layers(self) -> int:
        return len(self.layers)

    def mean_weight_mse(self) -> float:
        if not self.layers:
            return 0.0
        return float(np.mean([record.weight_mse for record in self.layers]))

    def scheme_histogram(self) -> Dict[str, int]:
        """How many layers each weight scheme ended up on (policy visibility)."""
        histogram: Dict[str, int] = {}
        for record in self.layers:
            histogram[record.weight_scheme] = histogram.get(record.weight_scheme, 0) + 1
        return histogram

    def summary(self) -> str:
        lines = [f"quantization config: {self.config.label}",
                 f"quantized layers: {self.num_quantized_layers}",
                 f"quantized skip concats: {len(self.skip_concats)}",
                 f"mean weight quantization MSE: {self.mean_weight_mse():.3e}"]
        histogram = self.scheme_histogram()
        if len(histogram) > 1:
            mix = ", ".join(f"{name}: {count}"
                            for name, count in sorted(histogram.items()))
            lines.append(f"weight scheme mix: {mix}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "config": self.config.to_dict(),
            "layers": [record.to_dict() for record in self.layers],
            "skip_concats": list(self.skip_concats),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "QuantizationReport":
        return cls(
            config=QuantizationConfig.from_dict(data["config"]),
            layers=[LayerQuantizationRecord.from_dict(r) for r in data["layers"]],
            skip_concats=list(data.get("skip_concats", [])),
        )

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "QuantizationReport":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def clone_model(model: DiffusionModel) -> DiffusionModel:
    """Deep copy of a diffusion model bundle (weights included)."""
    return copy.deepcopy(model)


def _resolve_layer_schemes(config: QuantizationConfig, path: str, layer):
    """Resolve the (weight, activation) schemes for one layer.

    The policy (if any) wins where it matches; the config defaults fill the
    rest.  Returns ``(weight_scheme, activation_scheme, rule_label)``.
    """
    weight_scheme = config.weight_scheme()
    activation_scheme = config.activation_scheme()
    rule_label = None
    if config.policy is not None:
        decision = config.policy.resolve(path, layer)
        if decision.weights is not None:
            weight_scheme = get_scheme(decision.weights)
            rule_label = decision.weight_rule
        if decision.activations is not None:
            activation_scheme = get_scheme(decision.activations)
            rule_label = rule_label or decision.activation_rule
    return weight_scheme, activation_scheme, rule_label


def _skip_concat_activation_scheme(config: QuantizationConfig, path: str,
                                   module) -> QuantScheme:
    """Activation scheme for one side of a skip concat (policy-aware)."""
    scheme = config.activation_scheme()
    if config.policy is not None:
        decision = config.policy.resolve(path, module)
        if decision.activations is not None:
            scheme = get_scheme(decision.activations)
    return scheme


# ----------------------------------------------------------------------
# main entry points
# ----------------------------------------------------------------------
def quantize_model(model: DiffusionModel, pipeline: DiffusionPipeline,
                   config: QuantizationConfig,
                   calibration: Optional[CalibrationData] = None,
                   prompts: Optional[Sequence[str]] = None
                   ) -> QuantizationReport:
    """Quantize ``model`` in place (its U-Net layers are replaced).

    ``pipeline`` must wrap the *full-precision* model and is only used to
    collect calibration data when ``calibration`` is not supplied.
    """
    # Resolving the default schemes up front also validates the dtype
    # strings, so typos fail fast with the registry's error message.
    config.weight_scheme()
    config.activation_scheme()
    if calibration is None:
        if config.requires_calibration():
            calibration = collect_calibration_data(pipeline, config.calibration,
                                                   prompts=prompts)
        else:
            calibration = CalibrationData()

    report = QuantizationReport(config=config)
    unet = model.unet

    for path, layer in quantizable_layer_paths(unet):
        weight_scheme, activation_scheme, rule_label = _resolve_layer_schemes(
            config, path, layer)
        if weight_scheme.is_identity and activation_scheme.is_identity:
            continue
        record = LayerQuantizationRecord(
            path=path, layer_type=type(layer).__name__,
            weight_format="FP32", activation_format="FP32", weight_mse=0.0,
            weight_scheme=weight_scheme.name,
            activation_scheme=activation_scheme.name,
            policy_rule=rule_label)
        quantized_weight, weight_quantizer = weight_scheme.quantize_weights(
            layer, config, calibration, path, record)
        activation_quantizer = activation_scheme.build_activation_quantizer(
            calibration.concatenated(path), config)
        record.activation_format = activation_quantizer.describe()
        # Integer formats store the weight as packed levels; the float32
        # simulation is a memo dequantized from them (bit-identical).
        packed_weight = weight_quantizer.pack_weights(layer.weight.data)
        if packed_weight is not None:
            record.packed_bytes = packed_weight.nbytes

        if isinstance(layer, nn.Conv2d):
            wrapper = QuantizedConv2d(layer, quantized_weight,
                                      activation_quantizer, weight_quantizer,
                                      packed_weight=packed_weight)
        else:
            wrapper = QuantizedLinear(layer, quantized_weight,
                                      activation_quantizer, weight_quantizer,
                                      packed_weight=packed_weight)
        unet.set_submodule(path, wrapper)
        report.layers.append(record)

    if config.quantize_skip_connections:
        for path, module in skip_concat_paths(unet):
            scheme = _skip_concat_activation_scheme(config, path, module)
            if scheme.is_identity:
                continue
            main_quantizer = scheme.build_activation_quantizer(
                calibration.concatenated(f"{path}.main"), config)
            skip_quantizer = scheme.build_activation_quantizer(
                calibration.concatenated(f"{path}.skip"), config)
            unet.set_submodule(path, QuantizedSkipConcat(main_quantizer,
                                                         skip_quantizer))
            report.skip_concats.append(path)
    return report


def quantize_pipeline(pipeline: DiffusionPipeline, config: QuantizationConfig,
                      prompts: Optional[Sequence[str]] = None,
                      calibration: Optional[CalibrationData] = None):
    """Return ``(quantized_pipeline, report)`` leaving the input pipeline intact.

    This is the main public entry point used by the examples and benchmarks:
    it clones the full-precision model, quantizes the clone according to
    ``config`` and wraps it in a new pipeline with identical sampling
    settings so seed-matched comparisons are possible.  The returned
    pipeline is always a distinct object — even for a full-precision config
    — so mutating it can never corrupt the baseline.
    """
    quantized_model = clone_model(pipeline.model)
    if config.is_full_precision():
        report = QuantizationReport(config=config)
    else:
        report = quantize_model(quantized_model, pipeline, config,
                                calibration=calibration, prompts=prompts)
    quantized_pipeline = DiffusionPipeline(quantized_model, spec=pipeline.spec,
                                           num_steps=pipeline.num_steps)
    return quantized_pipeline, report

"""Weight sparsity analysis (paper Section VI-G, Figure 11).

Quantization forces small-magnitude weights to exactly zero, so the fraction
of zero weights — the sparsity — rises sharply after low-bitwidth FP
quantization.  The paper reports a 31.6x (FP8) and 617x (FP4) sparsity
increase for Stable Diffusion and 20.1x / 428.5x for LDM.  These helpers
measure sparsity before and after quantization on a model's quantizable
layers so Figure 11 can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import nn
from ..models import DiffusionModel
from .qmodules import QUANTIZED_LAYER_TYPES


def tensor_sparsity(values: np.ndarray, tolerance: float = 0.0) -> float:
    """Fraction of elements whose magnitude is <= ``tolerance``."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    return float(np.mean(np.abs(values) <= tolerance))


@dataclass
class SparsityReport:
    """Zero fractions for the full-precision and quantized weights of a model."""

    per_layer: Dict[str, float]
    total_weights: int
    zero_weights: int

    @property
    def sparsity(self) -> float:
        if self.total_weights == 0:
            return 0.0
        return self.zero_weights / self.total_weights

    @property
    def percent(self) -> float:
        return 100.0 * self.sparsity


def _weight_entries(model: DiffusionModel, use_original: bool):
    for path, module in model.unet.named_modules():
        if isinstance(module, QUANTIZED_LAYER_TYPES):
            weights = module.original_weight if use_original else module.weight.data
            yield path, weights
        elif use_original and isinstance(module, (nn.Conv2d, nn.Linear)):
            yield path, module.weight.data


def measure_weight_sparsity(model: DiffusionModel, use_original: bool = False,
                            tolerance: float = 0.0) -> SparsityReport:
    """Measure weight sparsity over a model's quantizable layers.

    With ``use_original=True`` the pre-quantization (full-precision) weights
    stored inside the quantized wrappers are measured instead, which is how
    the "FP32" bar of Figure 11 is produced from the same quantized model.
    """
    per_layer: Dict[str, float] = {}
    total, zeros = 0, 0
    for path, weights in _weight_entries(model, use_original):
        per_layer[path] = tensor_sparsity(weights, tolerance)
        total += weights.size
        zeros += int(np.sum(np.abs(weights) <= tolerance))
    return SparsityReport(per_layer=per_layer, total_weights=total, zero_weights=zeros)


def sparsity_increase(full_precision: SparsityReport,
                      quantized: SparsityReport) -> Optional[float]:
    """Multiplicative sparsity increase, or None if the baseline has no zeros."""
    if full_precision.sparsity == 0.0:
        return None
    return quantized.sparsity / full_precision.sparsity

"""Uniform integer quantization baseline (paper Eq. 4, Q-diffusion style).

The paper compares its floating-point method against state-of-the-art integer
PTQ (Q-diffusion).  The baseline here is asymmetric per-tensor uniform
quantization with min/max calibration, which is the quantizer at the heart of
those integer methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class IntFormat:
    """An unsigned integer grid with a scale and zero point."""

    bitwidth: int
    scale: float
    zero_point: int

    @property
    def num_levels(self) -> int:
        return 2 ** self.bitwidth

    @property
    def name(self) -> str:
        return f"INT{self.bitwidth}"

    def to_dict(self) -> Dict:
        return {"bitwidth": self.bitwidth, "scale": self.scale,
                "zero_point": self.zero_point}

    @classmethod
    def from_dict(cls, data: Dict) -> "IntFormat":
        return cls(bitwidth=int(data["bitwidth"]), scale=float(data["scale"]),
                   zero_point=int(data["zero_point"]))


@dataclass(frozen=True)
class PerChannelIntFormat:
    """A family of integer grids, one per output channel (axis 0).

    Per-channel calibration tightens each channel's grid to its own value
    range, which matters for conv weights whose channels differ in scale by
    orders of magnitude.
    """

    bitwidth: int
    scales: Tuple[float, ...]
    zero_points: Tuple[int, ...]

    @property
    def num_channels(self) -> int:
        return len(self.scales)

    @property
    def num_levels(self) -> int:
        return 2 ** self.bitwidth

    @property
    def name(self) -> str:
        return f"INT{self.bitwidth}pc[{self.num_channels}]"

    def to_dict(self) -> Dict:
        return {"bitwidth": self.bitwidth, "scales": list(self.scales),
                "zero_points": list(self.zero_points)}

    @classmethod
    def from_dict(cls, data: Dict) -> "PerChannelIntFormat":
        return cls(bitwidth=int(data["bitwidth"]),
                   scales=tuple(float(s) for s in data["scales"]),
                   zero_points=tuple(int(z) for z in data["zero_points"]))


def calibrate_int_format(values: np.ndarray, bitwidth: int) -> IntFormat:
    """Derive scale and zero point from the min/max of calibration data (Eq. 4)."""
    values = np.asarray(values, dtype=np.float64)
    lo = float(values.min()) if values.size else 0.0
    hi = float(values.max()) if values.size else 0.0
    if hi <= lo:
        hi = lo + 1e-8
    scale = (hi - lo) / (2 ** bitwidth - 1)
    zero_point = int(np.round(-lo / scale))
    return IntFormat(bitwidth=bitwidth, scale=scale, zero_point=zero_point)


def int_levels(values: np.ndarray, fmt: IntFormat) -> np.ndarray:
    """Clipped integer grid levels of ``values`` (Eq. 4), as float64.

    The single source of the rounding/clipping arithmetic: both the
    simulated quantization below and the packed weight storage
    (:class:`repro.core.qmodules.PackedIntWeight`) build on it, so their
    outputs are bit-identical by construction.
    """
    values = np.asarray(values, dtype=np.float64)
    levels = np.round(values / fmt.scale) + fmt.zero_point
    return np.clip(levels, 0, fmt.num_levels - 1)


def dequantize_int_levels(levels: np.ndarray, fmt: IntFormat) -> np.ndarray:
    """Map grid levels back to their float32 values."""
    levels = np.asarray(levels, dtype=np.float64)
    return (fmt.scale * (levels - fmt.zero_point)).astype(np.float32)


def quantize_int(values: np.ndarray, fmt: IntFormat) -> np.ndarray:
    """Simulated uniform integer quantization (quantize then dequantize)."""
    return dequantize_int_levels(int_levels(values, fmt), fmt)


def calibrate_int_format_per_channel(values: np.ndarray,
                                     bitwidth: int) -> PerChannelIntFormat:
    """Per-output-channel min/max calibration (axis 0 indexes channels)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim < 2:
        values = values.reshape(-1, 1)
    per_channel = values.reshape(values.shape[0], -1)
    lo = per_channel.min(axis=1)
    hi = per_channel.max(axis=1)
    hi = np.where(hi <= lo, lo + 1e-8, hi)
    scales = (hi - lo) / (2 ** bitwidth - 1)
    zero_points = np.round(-lo / scales).astype(np.int64)
    return PerChannelIntFormat(bitwidth=bitwidth,
                               scales=tuple(float(s) for s in scales),
                               zero_points=tuple(int(z) for z in zero_points))


def int_levels_per_channel(values: np.ndarray,
                           fmt: PerChannelIntFormat) -> np.ndarray:
    """Per-channel grid levels, shaped ``(num_channels, -1)`` (float64)."""
    values = np.asarray(values, dtype=np.float64)
    per_channel = (values.reshape(-1, 1) if values.ndim < 2
                   else values.reshape(values.shape[0], -1))
    if per_channel.shape[0] != fmt.num_channels:
        raise ValueError(
            f"tensor has {per_channel.shape[0]} channels but format was "
            f"calibrated for {fmt.num_channels}")
    scales = np.asarray(fmt.scales, dtype=np.float64)[:, None]
    zero_points = np.asarray(fmt.zero_points, dtype=np.float64)[:, None]
    levels = np.round(per_channel / scales) + zero_points
    return np.clip(levels, 0, fmt.num_levels - 1)


def dequantize_int_levels_per_channel(levels: np.ndarray,
                                      fmt: PerChannelIntFormat) -> np.ndarray:
    """Map ``(num_channels, -1)`` grid levels back to float32 values."""
    levels = np.asarray(levels, dtype=np.float64)
    scales = np.asarray(fmt.scales, dtype=np.float64)[:, None]
    zero_points = np.asarray(fmt.zero_points, dtype=np.float64)[:, None]
    return (scales * (levels - zero_points)).astype(np.float32)


def quantize_int_per_channel(values: np.ndarray,
                             fmt: PerChannelIntFormat) -> np.ndarray:
    """Simulated per-channel uniform integer quantization along axis 0."""
    shape = np.asarray(values).shape
    levels = int_levels_per_channel(values, fmt)
    return dequantize_int_levels_per_channel(levels, fmt).reshape(shape)


def int_quantization_mse(values: np.ndarray, bitwidth: int) -> float:
    """MSE of min/max-calibrated integer quantization of ``values``."""
    fmt = calibrate_int_format(values, bitwidth)
    quantized = quantize_int(values, fmt)
    diff = np.asarray(values, dtype=np.float64) - quantized
    return float(np.mean(diff * diff))

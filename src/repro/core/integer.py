"""Uniform integer quantization baseline (paper Eq. 4, Q-diffusion style).

The paper compares its floating-point method against state-of-the-art integer
PTQ (Q-diffusion).  The baseline here is asymmetric per-tensor uniform
quantization with min/max calibration, which is the quantizer at the heart of
those integer methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IntFormat:
    """An unsigned integer grid with a scale and zero point."""

    bitwidth: int
    scale: float
    zero_point: int

    @property
    def num_levels(self) -> int:
        return 2 ** self.bitwidth

    @property
    def name(self) -> str:
        return f"INT{self.bitwidth}"


def calibrate_int_format(values: np.ndarray, bitwidth: int) -> IntFormat:
    """Derive scale and zero point from the min/max of calibration data (Eq. 4)."""
    values = np.asarray(values, dtype=np.float64)
    lo = float(values.min()) if values.size else 0.0
    hi = float(values.max()) if values.size else 0.0
    if hi <= lo:
        hi = lo + 1e-8
    scale = (hi - lo) / (2 ** bitwidth - 1)
    zero_point = int(np.round(-lo / scale))
    return IntFormat(bitwidth=bitwidth, scale=scale, zero_point=zero_point)


def quantize_int(values: np.ndarray, fmt: IntFormat) -> np.ndarray:
    """Simulated uniform integer quantization (quantize then dequantize)."""
    values = np.asarray(values, dtype=np.float64)
    levels = np.round(values / fmt.scale) + fmt.zero_point
    levels = np.clip(levels, 0, fmt.num_levels - 1)
    return (fmt.scale * (levels - fmt.zero_point)).astype(np.float32)


def int_quantization_mse(values: np.ndarray, bitwidth: int) -> float:
    """MSE of min/max-calibrated integer quantization of ``values``."""
    fmt = calibrate_int_format(values, bitwidth)
    quantized = quantize_int(values, fmt)
    diff = np.asarray(values, dtype=np.float64) - quantized
    return float(np.mean(diff * diff))

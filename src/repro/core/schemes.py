"""First-class quantization schemes and the scheme registry.

Historically the model quantizer dispatched on dtype strings
(``if dtype.startswith("fp"): ...``), which made every new format a fork of
the core loop.  This module turns each format into a registrable
:class:`QuantScheme` object that encapsulates its own calibrate / quantize /
build-quantizer logic behind a common interface:

* :meth:`QuantScheme.quantize_weights` — quantize one layer's weight tensor
  ahead of time, filling in the per-layer report record and returning the
  quantized array plus the :class:`~repro.core.qmodules.TensorQuantizer`
  that describes it;
* :meth:`QuantScheme.build_activation_quantizer` — calibrate an on-the-fly
  activation quantizer from initialization-dataset samples.

Built-in schemes (all pre-registered):

========== =============================================================
name       behaviour
========== =============================================================
``fp32``   identity / full precision pass-through
``fp8``    per-tensor FP with encoding+bias search (Algorithm 1)
``fp4``    as ``fp8`` at 4 bits, with optional rounding learning
``int8``   per-tensor uniform integer, min/max calibrated (Q-diffusion)
``int4``   as ``int8`` at 4 bits
``int8_pc`` per-output-channel integer weights (per-tensor activations)
``int4_pc`` as ``int8_pc`` at 4 bits
``fp8_block`` block-wise FP weights: searched encoding, per-block bias
``fp4_block`` as ``fp8_block`` at 4 bits
========== =============================================================

New schemes are added with :func:`register_scheme`; anywhere a config takes
a dtype string (``weight_dtype="fp4"``) any registered scheme name works.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

import numpy as np

from .fp import quantize_fp, quantize_fp_with_rounding
from .integer import calibrate_int_format, calibrate_int_format_per_channel
from .qmodules import (
    BlockFPTensorQuantizer,
    FPTensorQuantizer,
    IdentityQuantizer,
    IntTensorQuantizer,
    PerChannelIntTensorQuantizer,
    TensorQuantizer,
)
from .rounding import learn_rounding
from .search import search_tensor_format


def subsample(values: np.ndarray, limit: int, seed: int = 0) -> np.ndarray:
    """Deterministically subsample a flat array to bound search cost."""
    flat = np.asarray(values, dtype=np.float32).reshape(-1)
    if flat.size <= limit:
        return flat
    rng = np.random.default_rng(seed)
    index = rng.choice(flat.size, size=limit, replace=False)
    return flat[index]


def _search_format(values: np.ndarray, bits: int, config):
    """Algorithm 1's search on a config-bounded subsample of ``values``."""
    return search_tensor_format(
        subsample(values, config.max_search_elements,
                  seed=config.subsample_seed),
        bits, num_bias_candidates=config.num_bias_candidates)


class QuantScheme:
    """One quantization scheme: a registrable calibrate/quantize strategy.

    Subclasses set :attr:`name` (the registry key, also accepted wherever a
    dtype string is expected), :attr:`label` (the display form used in table
    row labels) and :attr:`bits`, and implement the two build methods.  A
    scheme instance is stateless: all per-experiment knobs come in through
    the :class:`~repro.core.quantizer.QuantizationConfig` and all per-layer
    state lives in the returned quantizers.
    """

    name: str = ""
    label: str = ""
    bits: int = 32

    #: Identity schemes skip calibration entirely and leave layers untouched.
    is_identity: bool = False
    #: Whether ``config.rounding_learning`` applies to this scheme's weights.
    supports_rounding_learning: bool = False

    # ------------------------------------------------------------------
    def quantize_weights(self, layer, config, calibration, path: str,
                         record) -> Tuple[np.ndarray, TensorQuantizer]:
        """Quantize ``layer.weight`` ahead of time.

        Returns ``(quantized_weight, weight_quantizer)`` and fills in the
        weight-side fields of ``record`` (a
        :class:`~repro.core.quantizer.LayerQuantizationRecord`).
        """
        raise NotImplementedError

    def build_activation_quantizer(self, samples: np.ndarray,
                                   config) -> TensorQuantizer:
        """Calibrate an on-the-fly quantizer from activation samples."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityScheme(QuantScheme):
    """Full precision: weights copied, activations passed through."""

    name = "fp32"
    label = "FP32"
    bits = 32
    is_identity = True

    def quantize_weights(self, layer, config, calibration, path, record):
        record.weight_format = "FP32"
        return layer.weight.data.copy(), IdentityQuantizer()

    def build_activation_quantizer(self, samples, config):
        return IdentityQuantizer()


class FPSearchScheme(QuantScheme):
    """Per-tensor FP with the paper's encoding/bias search (Algorithm 1).

    At 4 bits the scheme optionally refines the weight rounding with
    gradient-based rounding learning (Section V-B) when the config asks for
    it and calibration samples are available.
    """

    def __init__(self, bits: int):
        self.bits = bits
        self.name = f"fp{bits}"
        self.label = f"FP{bits}"
        self.supports_rounding_learning = bits <= 4

    def quantize_weights(self, layer, config, calibration, path, record):
        weights = layer.weight.data
        fmt = _search_format(weights, self.bits, config).fmt
        record.weight_format = f"FP{self.bits}({fmt.name}, bias={fmt.bias:.2f})"
        quantized = quantize_fp(weights, fmt)
        record.weight_mse = float(np.mean((weights - quantized) ** 2))

        use_rounding = config.rounding_learning and self.supports_rounding_learning
        samples = calibration.samples(path)
        if use_rounding and samples:
            result = learn_rounding(layer, fmt, samples, config.rounding)
            quantized = quantize_fp_with_rounding(weights, fmt, result.round_up)
            record.rounding_learning_used = True
            record.rounding_mse_before = result.initial_output_mse
            record.rounding_mse_after = result.final_output_mse
            record.weight_mse = float(np.mean((weights - quantized) ** 2))
        return quantized, FPTensorQuantizer(fmt)

    def build_activation_quantizer(self, samples, config):
        if samples.size == 0:
            return IdentityQuantizer()
        return FPTensorQuantizer(_search_format(samples, self.bits, config).fmt)


class IntScheme(QuantScheme):
    """Per-tensor uniform integer with min/max calibration (Q-diffusion)."""

    def __init__(self, bits: int):
        self.bits = bits
        self.name = f"int{bits}"
        self.label = f"INT{bits}"

    def quantize_weights(self, layer, config, calibration, path, record):
        weights = layer.weight.data
        quantizer = IntTensorQuantizer(calibrate_int_format(weights, self.bits))
        record.weight_format = f"INT{self.bits}"
        quantized = quantizer.quantize(weights)
        record.weight_mse = float(np.mean((weights - quantized) ** 2))
        return quantized, quantizer

    def build_activation_quantizer(self, samples, config):
        if samples.size == 0:
            return IdentityQuantizer()
        samples = subsample(samples, config.max_search_elements,
                            seed=config.subsample_seed)
        return IntTensorQuantizer.calibrated(samples, self.bits)


class PerChannelIntScheme(IntScheme):
    """Integer weights calibrated per output channel.

    Activations have no stable channel layout across the recorded samples,
    so the activation side falls back to per-tensor integer calibration.
    """

    def __init__(self, bits: int):
        super().__init__(bits)
        self.name = f"int{bits}_pc"
        self.label = f"INT{bits}-PC"

    def quantize_weights(self, layer, config, calibration, path, record):
        weights = layer.weight.data
        fmt = calibrate_int_format_per_channel(weights, self.bits)
        quantizer = PerChannelIntTensorQuantizer(fmt)
        record.weight_format = f"INT{self.bits}(per-channel)"
        quantized = quantizer.quantize(weights)
        record.weight_mse = float(np.mean((weights - quantized) ** 2))
        return quantized, quantizer


class BlockFPScheme(QuantScheme):
    """Block-wise FP weights: one searched encoding, one bias per block.

    The encoding (e/m split) is chosen once per tensor with Algorithm 1's
    search on a subsample; each contiguous block of ``block_size`` elements
    then gets its own exponent bias fitted to the block's maximum magnitude,
    the way block floating-point hardware shares an exponent offset per
    block.  Activations fall back to the per-tensor search.
    """

    def __init__(self, bits: int, block_size: int = 64):
        self.bits = bits
        self.block_size = block_size
        self.name = f"fp{bits}_block"
        self.label = f"FP{bits}-B{block_size}"

    def quantize_weights(self, layer, config, calibration, path, record):
        weights = layer.weight.data
        search = _search_format(weights, self.bits, config)
        quantizer = BlockFPTensorQuantizer.calibrated(weights, search.fmt,
                                                      self.block_size)
        record.weight_format = (f"FP{self.bits}({search.fmt.name}, "
                                f"block={self.block_size})")
        quantized = quantizer.quantize(weights)
        record.weight_mse = float(np.mean((weights - quantized) ** 2))
        return quantized, quantizer

    def build_activation_quantizer(self, samples, config):
        if samples.size == 0:
            return IdentityQuantizer()
        return FPTensorQuantizer(_search_format(samples, self.bits, config).fmt)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
SchemeLike = Union[str, QuantScheme]

_SCHEME_REGISTRY: Dict[str, QuantScheme] = {}


def register_scheme(scheme: QuantScheme, override: bool = False) -> QuantScheme:
    """Register a scheme under its ``name`` (case-insensitive).

    Raises ``ValueError`` on duplicate names unless ``override=True``, so a
    typo cannot silently shadow a built-in.
    """
    key = scheme.name.lower()
    if not key:
        raise ValueError("scheme must define a non-empty name")
    if key in _SCHEME_REGISTRY and not override:
        raise ValueError(
            f"quantization scheme '{key}' is already registered "
            f"({_SCHEME_REGISTRY[key]!r}); pass override=True to replace it")
    _SCHEME_REGISTRY[key] = scheme
    return scheme


def unregister_scheme(name: str) -> None:
    """Remove a scheme from the registry (mainly for tests)."""
    _SCHEME_REGISTRY.pop(name.lower(), None)


def get_scheme(scheme: SchemeLike) -> QuantScheme:
    """Resolve a scheme name (or pass through a scheme instance).

    This is the resolution shim that keeps plain dtype strings such as
    ``"fp4"`` working everywhere a scheme is expected.
    """
    if isinstance(scheme, QuantScheme):
        return scheme
    key = str(scheme).lower()
    try:
        return _SCHEME_REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown quantization scheme '{scheme}'; "
            f"registered schemes: {available_schemes()}") from None


def available_schemes() -> List[str]:
    """Sorted names of every registered scheme."""
    return sorted(_SCHEME_REGISTRY)


def scheme_name(scheme: SchemeLike) -> str:
    """Canonical registry name of a scheme reference (str or instance)."""
    return get_scheme(scheme).name


# Built-ins.  Registration order is irrelevant; names are the contract.
register_scheme(IdentityScheme())
register_scheme(FPSearchScheme(8))
register_scheme(FPSearchScheme(4))
register_scheme(IntScheme(8))
register_scheme(IntScheme(4))
register_scheme(PerChannelIntScheme(8))
register_scheme(PerChannelIntScheme(4))
register_scheme(BlockFPScheme(8))
register_scheme(BlockFPScheme(4))

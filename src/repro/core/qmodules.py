"""Quantized layer wrappers installed into the U-Net by the model quantizer.

Each wrapper simulates low-bitwidth execution of a Conv2d / Linear layer:

* the weight tensor was quantized ahead of time (per-tensor format chosen by
  Algorithm 1, optionally with learned rounding), and
* the input activation tensor is quantized on the fly with its own per-tensor
  format, calibrated on the initialization dataset.

Normalization layers, SiLU activations, the text encoder and the autoencoder
decoder are never wrapped — they stay in full precision, matching the paper.
``QuantizedSkipConcat`` implements the Q-diffusion technique (adopted by the
paper for the floating-point method as well) of quantizing the two inputs of
a skip-connection concatenation separately because their value distributions
differ.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

from .. import nn
from ..tensor import Tensor, concatenate
from ..tensor import functional as F
from ..tensor.backend import PackedLevelsView
from .formats import FPFormat
from .fp import calibrate_block_biases, quantize_fp, quantize_fp_blockwise
from .integer import (
    IntFormat,
    PerChannelIntFormat,
    calibrate_int_format,
    calibrate_int_format_per_channel,
    dequantize_int_levels,
    dequantize_int_levels_per_channel,
    int_levels,
    int_levels_per_channel,
    quantize_int,
    quantize_int_per_channel,
)


def _pack_levels(levels: np.ndarray, bitwidth: int) -> np.ndarray:
    """Pack integer grid levels into bytes (two per byte at <= 4 bits)."""
    flat = levels.astype(np.uint8).reshape(-1)
    if bitwidth > 4:
        return flat
    if flat.size % 2:
        flat = np.concatenate([flat, np.zeros(1, dtype=np.uint8)])
    return (flat[0::2] | (flat[1::2] << np.uint8(4))).astype(np.uint8)


def _unpack_levels(packed: np.ndarray, bitwidth: int, size: int) -> np.ndarray:
    """Inverse of :func:`_pack_levels` for the first ``size`` elements."""
    if bitwidth > 4:
        return packed[:size]
    levels = np.empty(packed.size * 2, dtype=np.uint8)
    levels[0::2] = packed & np.uint8(0x0F)
    levels[1::2] = packed >> np.uint8(4)
    return levels[:size]


@runtime_checkable
class QuantizedStorage(Protocol):
    """The storage contract quantized layers and fused kernels consume.

    Everything a layer wrapper (or the fused dequant-GEMM entry points in
    :mod:`repro.tensor.functional`) may do with a quantized weight goes
    through these three methods — layer code never reaches into storage
    internals such as the dequantization memo:

    * :meth:`dequantize` — the memoized float32 simulation, for the
      reference (dequantize-then-GEMM) path;
    * :meth:`drop_dequantized` — release the float memo when memory
      matters more than the next forward's latency;
    * :meth:`packed_view` — a GEMM-ready
      :class:`~repro.tensor.backend.PackedLevelsView` of the packed
      bytes, or ``None`` when the storage cannot present one.
    """

    def dequantize(self) -> np.ndarray: ...

    def drop_dequantized(self) -> None: ...

    def packed_view(self) -> Optional[PackedLevelsView]: ...


class PackedIntWeight:
    """Integer weight levels in packed byte storage + a memoized float form.

    The levels of a uniform-integer-quantized weight tensor fit in one byte
    each (one nibble at <= 4 bits), so this is the storage the quantized
    layer wrappers keep and the pickled quantize-stage artifacts ship — an
    int8 weight costs 1/4 and an int4 weight 1/8 of its float32 simulation
    (the artifacts still carry the layer's pre-quantization
    ``original_weight`` for the sparsity analysis, which packing cannot
    replace).
    :meth:`dequantize` materializes (and memoizes) the float32 grid values,
    bit-identical to :func:`~repro.core.integer.quantize_int` /
    :func:`~repro.core.integer.quantize_int_per_channel` of the original
    weights, so a served variant pays the dequantization once on first
    forward instead of re-simulating quantization per forward.  The memo is
    dropped on pickling.
    """

    def __init__(self, packed: np.ndarray, shape, fmt):
        self.packed = packed
        self.shape = tuple(shape)
        self.fmt = fmt  # IntFormat or PerChannelIntFormat
        self._dequantized: Optional[np.ndarray] = None
        self._packed_view: Optional[PackedLevelsView] = None

    # ------------------------------------------------------------------
    @property
    def bitwidth(self) -> int:
        return self.fmt.bitwidth

    @property
    def num_elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        """Bytes of packed storage (excluding the transient float memo)."""
        return int(self.packed.nbytes)

    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, values: np.ndarray, fmt) -> "PackedIntWeight":
        """Quantize ``values`` onto ``fmt``'s grid and pack the levels.

        The level arithmetic is :func:`~repro.core.integer.int_levels` /
        its per-channel sibling — the same helpers the simulated
        ``quantize_int*`` functions use, which is what guarantees
        ``dequantize()`` reproduces them bit-for-bit.
        """
        shape = np.asarray(values).shape
        if isinstance(fmt, PerChannelIntFormat):
            levels = int_levels_per_channel(values, fmt)
        else:
            levels = int_levels(values, fmt)
        return cls(_pack_levels(levels, fmt.bitwidth), shape, fmt)

    def levels(self) -> np.ndarray:
        """Unpacked integer levels, flattened."""
        return _unpack_levels(self.packed, self.fmt.bitwidth, self.num_elements)

    # repro: hot -- weight-only layers dequantize on every forward until memoized
    def dequantize(self) -> np.ndarray:
        """Memoized float32 grid values of the packed levels."""
        if self._dequantized is None:
            levels = self.levels().astype(np.float64)
            if isinstance(self.fmt, PerChannelIntFormat):
                dequantized = dequantize_int_levels_per_channel(
                    levels.reshape(self.shape[0], -1), self.fmt)
            else:
                dequantized = dequantize_int_levels(levels, self.fmt)
            self._dequantized = dequantized.reshape(self.shape)
        return self._dequantized

    def drop_dequantized(self) -> None:
        """Release the float memo (it is rebuilt on the next dequantize)."""
        self._dequantized = None

    def packed_view(self) -> Optional[PackedLevelsView]:
        """GEMM-ready row view of the packed levels, or ``None``.

        Presents the weight as the ``(N, K)`` matrix a GEMM consumes
        (``N`` output channels, ``K = in_features`` or
        ``C_in * kh * kw``), with per-row scale/zero-point arrays —
        per-tensor formats broadcast their single grid to every row.
        Nibble-packed storages (bitwidth <= 4) can only be row-aligned
        when ``K`` is even; otherwise, and for degenerate shapes, this
        returns ``None`` and callers stay on the dequantized path.  The
        reshape is a view of the packed bytes (no copy); the result is
        memoized and, like the float memo, not pickled.
        """
        view = getattr(self, "_packed_view", None)
        if view is not None:
            return view
        if len(self.shape) < 2:
            return None
        n_rows = self.shape[0]
        k = self.num_elements // n_rows
        if n_rows * k != self.num_elements or k == 0:
            return None
        if self.fmt.bitwidth <= 4:
            if k % 2:
                return None
            packed2d = self.packed.reshape(n_rows, k // 2)
        else:
            packed2d = self.packed.reshape(n_rows, k)
        if isinstance(self.fmt, PerChannelIntFormat):
            if self.fmt.num_channels != n_rows:
                return None
            scales = np.asarray(self.fmt.scales, dtype=np.float64)
            zero_points = np.asarray(self.fmt.zero_points, dtype=np.float64)
        else:
            scales = np.full(n_rows, self.fmt.scale, dtype=np.float64)
            zero_points = np.full(n_rows, float(self.fmt.zero_point),
                                  dtype=np.float64)
        view = PackedLevelsView(packed=packed2d, bitwidth=self.fmt.bitwidth,
                                shape=(n_rows, k), scales=scales,
                                zero_points=zero_points)
        self._packed_view = view
        return view

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_dequantized"] = None  # ship packed bytes, not the float memo
        state["_packed_view"] = None  # rebuilt on demand after unpickling
        return state


class TensorQuantizer:
    """Base class: maps a float32 array onto a low-bitwidth grid."""

    bits: Optional[int] = None

    def quantize(self, values: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover
        raise NotImplementedError

    def pack_weights(self, values: np.ndarray) -> Optional[PackedIntWeight]:
        """Packed storage for a weight tensor, when the format supports it.

        Returns ``None`` for formats without an integer level grid (the
        float schemes keep their float32 simulation); integer quantizers
        return a :class:`PackedIntWeight` whose ``dequantize()`` is
        bit-identical to :meth:`quantize` of the same values.
        """
        return None


class IdentityQuantizer(TensorQuantizer):
    """Full-precision pass-through (used when a side is left unquantized)."""

    bits = 32

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float32)

    def describe(self) -> str:
        return "FP32"


class FPTensorQuantizer(TensorQuantizer):
    """Per-tensor floating-point quantizer with a fixed format and bias."""

    def __init__(self, fmt: FPFormat):
        self.fmt = fmt
        self.bits = fmt.bitwidth

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return quantize_fp(values, self.fmt)

    def describe(self) -> str:
        return f"FP{self.fmt.bitwidth}({self.fmt.name}, bias={self.fmt.bias:.2f})"


class IntTensorQuantizer(TensorQuantizer):
    """Per-tensor uniform integer quantizer with a fixed scale and zero point."""

    def __init__(self, fmt: IntFormat):
        self.fmt = fmt
        self.bits = fmt.bitwidth

    @classmethod
    def calibrated(cls, values: np.ndarray, bitwidth: int) -> "IntTensorQuantizer":
        return cls(calibrate_int_format(values, bitwidth))

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return quantize_int(values, self.fmt)

    def pack_weights(self, values: np.ndarray) -> Optional[PackedIntWeight]:
        # Levels above 8 bits do not fit the byte-packed storage; such
        # (registry-extended) schemes keep the float32 simulation.
        if self.fmt.bitwidth > 8:
            return None
        return PackedIntWeight.pack(values, self.fmt)

    def describe(self) -> str:
        return f"INT{self.fmt.bitwidth}(scale={self.fmt.scale:.3g})"


class PerChannelIntTensorQuantizer(TensorQuantizer):
    """Per-output-channel uniform integer quantizer (weights only)."""

    def __init__(self, fmt: PerChannelIntFormat):
        self.fmt = fmt
        self.bits = fmt.bitwidth

    @classmethod
    def calibrated(cls, values: np.ndarray,
                   bitwidth: int) -> "PerChannelIntTensorQuantizer":
        return cls(calibrate_int_format_per_channel(values, bitwidth))

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return quantize_int_per_channel(values, self.fmt)

    def pack_weights(self, values: np.ndarray) -> Optional[PackedIntWeight]:
        if self.fmt.bitwidth > 8:
            return None
        return PackedIntWeight.pack(values, self.fmt)

    def describe(self) -> str:
        return f"INT{self.fmt.bitwidth}(per-channel x{self.fmt.num_channels})"


class BlockFPTensorQuantizer(TensorQuantizer):
    """Block-wise FP quantizer: one encoding, one exponent bias per block."""

    def __init__(self, fmt: FPFormat, biases: np.ndarray, block_size: int):
        self.fmt = fmt
        self.biases = np.asarray(biases, dtype=np.float64)
        self.block_size = block_size
        self.bits = fmt.bitwidth

    @classmethod
    def calibrated(cls, values: np.ndarray, fmt: FPFormat,
                   block_size: int) -> "BlockFPTensorQuantizer":
        return cls(fmt, calibrate_block_biases(values, fmt, block_size),
                   block_size)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return quantize_fp_blockwise(values, self.fmt, self.biases,
                                     self.block_size)

    def describe(self) -> str:
        return (f"FP{self.fmt.bitwidth}({self.fmt.name}, "
                f"blocks={self.biases.size}x{self.block_size})")


class _QuantizedLayerBase(nn.Module):
    """Shared weight storage of the quantized Conv2d/Linear wrappers.

    With integer schemes the wrapper keeps the weight as a
    :class:`PackedIntWeight` and materializes the float32 simulation from
    it as a memo — at quantization time, and again when an artifact is
    unpickled (the pickle ships only the packed bytes; rebuilding in
    ``__setstate__`` keeps ``named_parameters``/``state_dict`` complete
    without waiting for a forward).  Float schemes keep the eager float32
    parameter.
    """

    #: Class-level default so artifacts pickled before packed storage
    #: existed (the run store keys inputs, not code) still unpickle — they
    #: carry the float weight in ``_parameters`` and no packed form.
    packed_weight: Optional[PackedIntWeight] = None

    def _init_weight_storage(self, quantized_weight: np.ndarray,
                             packed_weight: Optional[PackedIntWeight]) -> None:
        self.packed_weight = packed_weight
        if packed_weight is None:
            self._parameters["weight"] = nn.Parameter(quantized_weight,
                                                      requires_grad=False)
        else:
            self._parameters["weight"] = nn.Parameter(packed_weight.dequantize(),
                                                      requires_grad=False)

    @property
    def weight(self) -> nn.Parameter:
        param = self._parameters.get("weight")
        if param is None:
            param = nn.Parameter(self.packed_weight.dequantize(),
                                 requires_grad=False)
            self._parameters["weight"] = param
        return param

    def packed_nbytes(self) -> Optional[int]:
        """Bytes of packed weight storage, or None for float schemes."""
        return None if self.packed_weight is None else self.packed_weight.nbytes

    def load_state_dict(self, state, prefix: str = "") -> None:
        super().load_state_dict(state, prefix=prefix)
        if self.packed_weight is not None and prefix + "weight" in state:
            # The float weight is authoritative after an explicit load; if
            # it no longer matches the packed levels, drop them so
            # pickling/deepcopy cannot silently revert to the old weights.
            if not np.array_equal(self._parameters["weight"].data,
                                  self.packed_weight.dequantize()):
                self.packed_weight = None

    def __getstate__(self):
        state = self.__dict__.copy()
        if state.get("packed_weight") is not None:
            # Ship the packed levels only; the float32 simulation is
            # rebuilt from them on load.  (``original_weight`` still
            # travels: the sparsity analysis needs the pre-quantization
            # values, which are not recoverable from the packed grid.)
            parameters = dict(state["_parameters"])
            parameters.pop("weight", None)
            state["_parameters"] = parameters
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Rebuild the weight parameter eagerly so module traversal
        # (named_parameters / state_dict / num_parameters) sees it without
        # requiring a first forward; ``dequantize()`` memoizes, so this is
        # the one-time cost the packed storage was designed to pay.
        # (.get: pre-packing pickles have no packed_weight entry at all.)
        packed = self.__dict__.get("packed_weight")
        if packed is not None and "weight" not in self._parameters:
            self._parameters["weight"] = nn.Parameter(packed.dequantize(),
                                                      requires_grad=False)


class QuantizedConv2d(_QuantizedLayerBase):
    """Conv2d with a pre-quantized weight and on-the-fly activation quantization."""

    def __init__(self, original: nn.Conv2d, quantized_weight: np.ndarray,
                 activation_quantizer: TensorQuantizer,
                 weight_quantizer: TensorQuantizer,
                 packed_weight: Optional[PackedIntWeight] = None):
        super().__init__()
        self.stride = original.stride
        self.padding = original.padding
        self.in_channels = original.in_channels
        self.out_channels = original.out_channels
        self.kernel_size = original.kernel_size
        self._init_weight_storage(quantized_weight, packed_weight)
        self.bias = original.bias
        self.original_weight = original.weight.data.copy()
        self.activation_quantizer = activation_quantizer
        self.weight_quantizer = weight_quantizer

    def forward(self, x: Tensor) -> Tensor:
        quantized_input = Tensor(self.activation_quantizer.quantize(x.data))
        if self.packed_weight is not None:
            # Inference mode with an eligible backend runs the convolution
            # straight off the packed bytes; otherwise fall back to the
            # dequantized float path below.
            fused = F.fused_conv2d(quantized_input, self.packed_weight,
                                   self.bias, stride=self.stride,
                                   padding=self.padding,
                                   kernel_size=self.kernel_size)
            if fused is not None:
                return fused
        return F.conv2d(quantized_input, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class QuantizedLinear(_QuantizedLayerBase):
    """Linear layer with a pre-quantized weight and activation quantization."""

    def __init__(self, original: nn.Linear, quantized_weight: np.ndarray,
                 activation_quantizer: TensorQuantizer,
                 weight_quantizer: TensorQuantizer,
                 packed_weight: Optional[PackedIntWeight] = None):
        super().__init__()
        self.in_features = original.in_features
        self.out_features = original.out_features
        self._init_weight_storage(quantized_weight, packed_weight)
        self.bias = original.bias
        self.original_weight = original.weight.data.copy()
        self.activation_quantizer = activation_quantizer
        self.weight_quantizer = weight_quantizer

    def forward(self, x: Tensor) -> Tensor:
        quantized_input = Tensor(self.activation_quantizer.quantize(x.data))
        if self.packed_weight is not None:
            fused = F.fused_linear(quantized_input, self.packed_weight,
                                   self.bias)
            if fused is not None:
                return fused
        return F.linear(quantized_input, self.weight, self.bias)


class QuantizedSkipConcat(nn.Module):
    """Skip-connection concat with separate quantizers for its two inputs."""

    def __init__(self, main_quantizer: TensorQuantizer,
                 skip_quantizer: TensorQuantizer):
        super().__init__()
        self.main_quantizer = main_quantizer
        self.skip_quantizer = skip_quantizer

    def forward(self, x: Tensor, skip: Tensor) -> Tensor:
        main = Tensor(self.main_quantizer.quantize(x.data))
        other = Tensor(self.skip_quantizer.quantize(skip.data))
        return concatenate([main, other], axis=1)


#: Convenience alias so callers can check "is this module one of ours".
QUANTIZED_LAYER_TYPES = (QuantizedConv2d, QuantizedLinear)

"""Quantized layer wrappers installed into the U-Net by the model quantizer.

Each wrapper simulates low-bitwidth execution of a Conv2d / Linear layer:

* the weight tensor was quantized ahead of time (per-tensor format chosen by
  Algorithm 1, optionally with learned rounding), and
* the input activation tensor is quantized on the fly with its own per-tensor
  format, calibrated on the initialization dataset.

Normalization layers, SiLU activations, the text encoder and the autoencoder
decoder are never wrapped — they stay in full precision, matching the paper.
``QuantizedSkipConcat`` implements the Q-diffusion technique (adopted by the
paper for the floating-point method as well) of quantizing the two inputs of
a skip-connection concatenation separately because their value distributions
differ.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..models import SkipConcat
from ..tensor import Tensor, concatenate
from ..tensor import functional as F
from .formats import FPFormat
from .fp import calibrate_block_biases, quantize_fp, quantize_fp_blockwise
from .integer import (
    IntFormat,
    PerChannelIntFormat,
    calibrate_int_format,
    calibrate_int_format_per_channel,
    quantize_int,
    quantize_int_per_channel,
)


class TensorQuantizer:
    """Base class: maps a float32 array onto a low-bitwidth grid."""

    bits: Optional[int] = None

    def quantize(self, values: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover
        raise NotImplementedError


class IdentityQuantizer(TensorQuantizer):
    """Full-precision pass-through (used when a side is left unquantized)."""

    bits = 32

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float32)

    def describe(self) -> str:
        return "FP32"


class FPTensorQuantizer(TensorQuantizer):
    """Per-tensor floating-point quantizer with a fixed format and bias."""

    def __init__(self, fmt: FPFormat):
        self.fmt = fmt
        self.bits = fmt.bitwidth

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return quantize_fp(values, self.fmt)

    def describe(self) -> str:
        return f"FP{self.fmt.bitwidth}({self.fmt.name}, bias={self.fmt.bias:.2f})"


class IntTensorQuantizer(TensorQuantizer):
    """Per-tensor uniform integer quantizer with a fixed scale and zero point."""

    def __init__(self, fmt: IntFormat):
        self.fmt = fmt
        self.bits = fmt.bitwidth

    @classmethod
    def calibrated(cls, values: np.ndarray, bitwidth: int) -> "IntTensorQuantizer":
        return cls(calibrate_int_format(values, bitwidth))

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return quantize_int(values, self.fmt)

    def describe(self) -> str:
        return f"INT{self.fmt.bitwidth}(scale={self.fmt.scale:.3g})"


class PerChannelIntTensorQuantizer(TensorQuantizer):
    """Per-output-channel uniform integer quantizer (weights only)."""

    def __init__(self, fmt: PerChannelIntFormat):
        self.fmt = fmt
        self.bits = fmt.bitwidth

    @classmethod
    def calibrated(cls, values: np.ndarray,
                   bitwidth: int) -> "PerChannelIntTensorQuantizer":
        return cls(calibrate_int_format_per_channel(values, bitwidth))

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return quantize_int_per_channel(values, self.fmt)

    def describe(self) -> str:
        return f"INT{self.fmt.bitwidth}(per-channel x{self.fmt.num_channels})"


class BlockFPTensorQuantizer(TensorQuantizer):
    """Block-wise FP quantizer: one encoding, one exponent bias per block."""

    def __init__(self, fmt: FPFormat, biases: np.ndarray, block_size: int):
        self.fmt = fmt
        self.biases = np.asarray(biases, dtype=np.float64)
        self.block_size = block_size
        self.bits = fmt.bitwidth

    @classmethod
    def calibrated(cls, values: np.ndarray, fmt: FPFormat,
                   block_size: int) -> "BlockFPTensorQuantizer":
        return cls(fmt, calibrate_block_biases(values, fmt, block_size),
                   block_size)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return quantize_fp_blockwise(values, self.fmt, self.biases,
                                     self.block_size)

    def describe(self) -> str:
        return (f"FP{self.fmt.bitwidth}({self.fmt.name}, "
                f"blocks={self.biases.size}x{self.block_size})")


class QuantizedConv2d(nn.Module):
    """Conv2d with a pre-quantized weight and on-the-fly activation quantization."""

    def __init__(self, original: nn.Conv2d, quantized_weight: np.ndarray,
                 activation_quantizer: TensorQuantizer,
                 weight_quantizer: TensorQuantizer):
        super().__init__()
        self.stride = original.stride
        self.padding = original.padding
        self.in_channels = original.in_channels
        self.out_channels = original.out_channels
        self.kernel_size = original.kernel_size
        self.weight = nn.Parameter(quantized_weight, requires_grad=False)
        self.bias = original.bias
        self.original_weight = original.weight.data.copy()
        self.activation_quantizer = activation_quantizer
        self.weight_quantizer = weight_quantizer

    def forward(self, x: Tensor) -> Tensor:
        quantized_input = Tensor(self.activation_quantizer.quantize(x.data))
        return F.conv2d(quantized_input, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class QuantizedLinear(nn.Module):
    """Linear layer with a pre-quantized weight and activation quantization."""

    def __init__(self, original: nn.Linear, quantized_weight: np.ndarray,
                 activation_quantizer: TensorQuantizer,
                 weight_quantizer: TensorQuantizer):
        super().__init__()
        self.in_features = original.in_features
        self.out_features = original.out_features
        self.weight = nn.Parameter(quantized_weight, requires_grad=False)
        self.bias = original.bias
        self.original_weight = original.weight.data.copy()
        self.activation_quantizer = activation_quantizer
        self.weight_quantizer = weight_quantizer

    def forward(self, x: Tensor) -> Tensor:
        quantized_input = Tensor(self.activation_quantizer.quantize(x.data))
        return F.linear(quantized_input, self.weight, self.bias)


class QuantizedSkipConcat(nn.Module):
    """Skip-connection concat with separate quantizers for its two inputs."""

    def __init__(self, main_quantizer: TensorQuantizer,
                 skip_quantizer: TensorQuantizer):
        super().__init__()
        self.main_quantizer = main_quantizer
        self.skip_quantizer = skip_quantizer

    def forward(self, x: Tensor, skip: Tensor) -> Tensor:
        main = Tensor(self.main_quantizer.quantize(x.data))
        other = Tensor(self.skip_quantizer.quantize(skip.data))
        return concatenate([main, other], axis=1)


#: Convenience alias so callers can check "is this module one of ours".
QUANTIZED_LAYER_TYPES = (QuantizedConv2d, QuantizedLinear)

"""Calibration data collection from the full-precision model (paper Sec. V).

Two small datasets drive the PTQ method:

* the **initialization dataset** — per-layer input activations sampled
  uniformly across denoising timesteps, used by Algorithm 1 to choose the
  activation tensor's encoding and bias, and
* the **calibration dataset** — per-layer input activations used as ``A`` in
  the rounding-learning objective.

Both are gathered by temporarily wrapping every Conv2d / Linear layer (and
every skip-connection concat) of the U-Net with a recording shim, running the
full-precision pipeline for a handful of seeds/prompts, and then restoring
the original modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..models import SkipConcat
from ..tensor import Tensor


@dataclass
class CalibrationConfig:
    """How much calibration data to collect and how it is spread over steps."""

    num_samples: int = 4
    max_records_per_layer: int = 8
    batch_size: int = 2
    seed: int = 0


@dataclass
class CalibrationData:
    """Recorded per-layer input activations.

    ``activations`` maps a dotted layer path (relative to the U-Net) to a
    list of recorded input arrays.  Skip concats record their two inputs
    under ``<path>.main`` and ``<path>.skip``.
    """

    activations: Dict[str, List[np.ndarray]] = field(default_factory=dict)

    def record(self, name: str, value: np.ndarray, limit: int) -> None:
        bucket = self.activations.setdefault(name, [])
        if len(bucket) < limit:
            bucket.append(np.asarray(value, dtype=np.float32).copy())

    def concatenated(self, name: str) -> np.ndarray:
        """All records for a layer flattened into a single sample array."""
        records = self.activations.get(name, [])
        if not records:
            return np.zeros((0,), dtype=np.float32)
        return np.concatenate([r.reshape(-1) for r in records])

    def samples(self, name: str) -> List[np.ndarray]:
        return list(self.activations.get(name, []))

    def layer_names(self) -> List[str]:
        return sorted(self.activations)


class _RecordingLayer(nn.Module):
    """Forward shim that records the input of a Conv2d/Linear layer."""

    def __init__(self, inner: nn.Module, name: str, data: CalibrationData,
                 limit: int, stride: int):
        super().__init__()
        self.inner = inner
        self._name = name
        self._data = data
        self._limit = limit
        self._stride = max(stride, 1)
        self._calls = 0

    def forward(self, x: Tensor, *args, **kwargs) -> Tensor:
        if self._calls % self._stride == 0:
            self._data.record(self._name, x.data, self._limit)
        self._calls += 1
        return self.inner(x, *args, **kwargs)


class _RecordingSkipConcat(nn.Module):
    """Forward shim recording both inputs of a skip-connection concat."""

    def __init__(self, inner: SkipConcat, name: str, data: CalibrationData,
                 limit: int, stride: int):
        super().__init__()
        self.inner = inner
        self._name = name
        self._data = data
        self._limit = limit
        self._stride = max(stride, 1)
        self._calls = 0

    def forward(self, x: Tensor, skip: Tensor) -> Tensor:
        if self._calls % self._stride == 0:
            self._data.record(f"{self._name}.main", x.data, self._limit)
            self._data.record(f"{self._name}.skip", skip.data, self._limit)
        self._calls += 1
        return self.inner(x, skip)


def quantizable_layer_paths(unet: nn.Module) -> List[Tuple[str, nn.Module]]:
    """Dotted paths of every Conv2d and Linear layer in breadth-first order.

    Breadth-first (shallow-to-deep) ordering matches Algorithm 1's greedy
    layer-by-layer traversal.
    """
    entries = [(path, module) for path, module in unet.named_modules()
               if isinstance(module, (nn.Conv2d, nn.Linear))]
    entries.sort(key=lambda item: (item[0].count("."), item[0]))
    return entries


def skip_concat_paths(unet: nn.Module) -> List[Tuple[str, SkipConcat]]:
    """Dotted paths of every skip-connection concatenation in the U-Net."""
    return [(path, module) for path, module in unet.named_modules()
            if isinstance(module, SkipConcat)]


def collect_calibration_data(pipeline, config: Optional[CalibrationConfig] = None,
                             prompts: Optional[Sequence[str]] = None
                             ) -> CalibrationData:
    """Run the full-precision pipeline and record per-layer input activations.

    ``pipeline`` is a :class:`repro.diffusion.DiffusionPipeline` wrapping the
    *unquantized* model.  The recording stride is chosen so that the records
    are spread roughly uniformly across the denoising timesteps, mirroring
    the paper's uniform-across-timesteps sampling.
    """
    config = config or CalibrationConfig()
    unet = pipeline.model.unet
    data = CalibrationData()

    expected_calls = pipeline.num_steps * max(
        1, int(np.ceil(config.num_samples / config.batch_size)))
    stride = max(1, expected_calls // config.max_records_per_layer)

    originals: List[Tuple[str, nn.Module]] = []
    for path, module in quantizable_layer_paths(unet):
        originals.append((path, module))
        unet.set_submodule(path, _RecordingLayer(module, path, data,
                                                 config.max_records_per_layer, stride))
    for path, module in skip_concat_paths(unet):
        originals.append((path, module))
        unet.set_submodule(path, _RecordingSkipConcat(module, path, data,
                                                      config.max_records_per_layer,
                                                      stride))
    try:
        if pipeline.is_text_to_image:
            if prompts is None:
                raise ValueError("text-to-image calibration requires prompts")
            pipeline.generate_from_prompts(list(prompts)[: config.num_samples],
                                           seed=config.seed,
                                           batch_size=config.batch_size)
        else:
            pipeline.generate(config.num_samples, seed=config.seed,
                              batch_size=config.batch_size)
    finally:
        for path, module in originals:
            unet.set_submodule(path, module)
    return data

"""Gradient-based rounding learning for low-bitwidth weights (paper Sec. V-B).

Round-to-nearest is not the rounding that minimizes the *layer output* error.
Following AdaRound (Nagel et al.) but applied to the floating-point grid, the
rounding decision of every weight element becomes a learnable parameter:

    W_q(alpha) = clamp(s * (floor(W/s) + sigmoid(alpha)), -c, c)        (Eq. 12)

and ``alpha`` is optimized by gradient descent against

    mean((W_q(alpha) A - W A)^2) + reg_weight * lambda(alpha)           (Eq. 13)
    lambda(alpha) = 1 - (|sigmoid(alpha) - 0.5| * 2)^beta               (Eq. 14)

where ``A`` are input activations of the layer recorded from the
full-precision model (the "calibration dataset").  The regularizer pushes
``sigmoid(alpha)`` to 0 or 1 so the learned soft rounding collapses to a hard
up/down decision at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..tensor import Tensor
from ..tensor import functional as F
from .formats import FPFormat
from .fp import fp_scales, quantize_fp_with_rounding


@dataclass
class RoundingLearningConfig:
    """Hyperparameters of the rounding-learning optimization."""

    iterations: int = 60
    learning_rate: float = 1e-2
    reg_weight: float = 0.01
    reg_exponent: float = 20.0
    samples_per_iteration: int = 8
    seed: int = 0


@dataclass
class RoundingLearningResult:
    """Learned rounding decisions plus the optimization trace."""

    round_up: np.ndarray
    losses: List[float] = field(default_factory=list)
    initial_output_mse: float = 0.0
    final_output_mse: float = 0.0


def regularizer_value(sigmoid_alpha: np.ndarray, exponent: float = 20.0) -> np.ndarray:
    """The boundary-pushing regularizer lambda(alpha) of Eq. 14."""
    return 1.0 - np.power(np.abs(sigmoid_alpha - 0.5) * 2.0, exponent)


def _initial_alpha(weights: np.ndarray, fmt: FPFormat) -> np.ndarray:
    """Initialize alpha so that sigmoid(alpha) equals the fractional remainder.

    This makes the soft-quantized weights start exactly at round-to-nearest
    behaviour, which is the standard AdaRound initialization and keeps early
    iterations stable.
    """
    c = fmt.max_value
    clipped = np.clip(weights, -c, c)
    scales = fp_scales(clipped, fmt)
    fraction = clipped / scales - np.floor(clipped / scales)
    fraction = np.clip(fraction, 1e-4, 1.0 - 1e-4)
    return np.log(fraction / (1.0 - fraction)).astype(np.float32)


def _layer_forward(layer: nn.Module, inputs: Tensor, weight: Tensor) -> Tensor:
    """Run a Conv2d or Linear layer's forward pass with substituted weights."""
    if isinstance(layer, nn.Conv2d):
        return F.conv2d(inputs, weight, layer.bias, stride=layer.stride,
                        padding=layer.padding)
    if isinstance(layer, nn.Linear):
        return F.linear(inputs, weight, layer.bias)
    raise TypeError(f"rounding learning supports Conv2d and Linear, got {type(layer)}")


def learn_rounding(layer: nn.Module, fmt: FPFormat,
                   calibration_inputs: Sequence[np.ndarray],
                   config: Optional[RoundingLearningConfig] = None
                   ) -> RoundingLearningResult:
    """Learn per-weight rounding decisions for one Conv2d/Linear layer.

    Parameters
    ----------
    layer:
        The full-precision layer whose weights are being quantized.
    fmt:
        The floating-point format already chosen for this weight tensor by
        the encoding/bias search.
    calibration_inputs:
        Input activation arrays recorded from the full-precision model for
        this layer (the calibration dataset of Section V-B).
    """
    config = config or RoundingLearningConfig()
    rng = np.random.default_rng(config.seed)
    weights = layer.weight.data.astype(np.float64)
    c = fmt.max_value
    clipped = np.clip(weights, -c, c)
    scales = fp_scales(clipped, fmt)
    floor_levels = np.floor(clipped / scales)

    alpha = nn.Parameter(_initial_alpha(weights, fmt))
    scales_t = Tensor(scales.astype(np.float32))
    floor_t = Tensor(floor_levels.astype(np.float32))
    full_weight = Tensor(weights.astype(np.float32))

    optimizer = nn.Adam([alpha], lr=config.learning_rate)
    calibration_inputs = [np.asarray(x, dtype=np.float32) for x in calibration_inputs]
    if not calibration_inputs:
        raise ValueError("rounding learning requires at least one calibration input")

    def quantized_weight() -> Tensor:
        return (scales_t * (floor_t + alpha.sigmoid())).clip(-c, c)

    def output_mse(weight_tensor: Tensor) -> float:
        total, count = 0.0, 0
        for sample in calibration_inputs:
            inputs = Tensor(sample)
            reference = _layer_forward(layer, inputs, full_weight)
            produced = _layer_forward(layer, inputs, weight_tensor)
            diff = produced.data - reference.data
            total += float(np.mean(diff * diff))
            count += 1
        return total / max(count, 1)

    result = RoundingLearningResult(round_up=np.zeros_like(weights, dtype=bool))
    result.initial_output_mse = output_mse(Tensor(
        quantize_fp_with_rounding(
            weights, fmt, np.round(clipped / scales) > floor_levels)))

    for _ in range(config.iterations):
        chosen = rng.integers(0, len(calibration_inputs),
                              size=min(config.samples_per_iteration,
                                       len(calibration_inputs)))
        loss_total: Optional[Tensor] = None
        for index in chosen:
            inputs = Tensor(calibration_inputs[index])
            reference = _layer_forward(layer, inputs, full_weight).detach()
            produced = _layer_forward(layer, inputs, quantized_weight())
            loss = F.mse_loss(produced, reference)
            loss_total = loss if loss_total is None else loss_total + loss
        loss_total = loss_total * (1.0 / len(chosen))
        sig = alpha.sigmoid()
        regularizer = (1.0 - ((sig - 0.5).abs() * 2.0) ** config.reg_exponent).mean()
        loss_total = loss_total + regularizer * config.reg_weight
        optimizer.zero_grad()
        loss_total.backward()
        optimizer.step()
        result.losses.append(loss_total.item())

    round_up = (1.0 / (1.0 + np.exp(-alpha.data)) >= 0.5)
    result.round_up = round_up
    result.final_output_mse = output_mse(Tensor(
        quantize_fp_with_rounding(weights, fmt, round_up)))
    return result

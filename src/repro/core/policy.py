"""Per-layer quantization policies: mapping layers to schemes.

A :class:`QuantizationPolicy` is an ordered list of :class:`PolicyRule`
entries that override the config's default weight/activation schemes for the
layers they match.  Rules match on any combination of

* ``pattern`` — an ``fnmatch`` glob over the dotted layer path
  (``"down_blocks.0.*"``, ``"*.attention.to_q"``),
* ``layer_type`` — the layer's class name (``"Conv2d"``, ``"Linear"``), and
* ``predicate`` — an arbitrary ``(path, layer) -> bool`` callable.

Resolution order is first-match-wins, independently for the weight side and
the activation side: the first matching rule that sets ``weights`` decides
the weight scheme, the first matching rule that sets ``activations`` decides
the activation scheme, and anything left undecided falls back to the
config's defaults.  This lets a policy say "first and last conv stay FP8"
without having to restate the default for every other layer.

Glob/type rules serialize to plain dicts (and therefore JSON); predicate
rules are code and deliberately do not.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .calibration import quantizable_layer_paths
from .schemes import SchemeLike, scheme_name


@dataclass
class PolicyRule:
    """One policy entry: match criteria plus scheme overrides.

    All specified criteria must hold for the rule to match; a rule with no
    criteria matches every layer (useful as an explicit catch-all).  Either
    override may be left ``None`` to leave that side to later rules or the
    config default.
    """

    pattern: Optional[str] = None
    layer_type: Optional[str] = None
    predicate: Optional[Callable[[str, object], bool]] = None
    weights: Optional[SchemeLike] = None
    activations: Optional[SchemeLike] = None
    name: str = ""

    def matches(self, path: str, layer: object = None) -> bool:
        if self.pattern is not None and not fnmatch.fnmatchcase(path, self.pattern):
            return False
        if self.layer_type is not None and (
                layer is None or type(layer).__name__ != self.layer_type):
            return False
        if self.predicate is not None and not self.predicate(path, layer):
            return False
        return True

    def to_dict(self) -> Dict:
        if self.predicate is not None:
            raise ValueError(
                f"policy rule {self.name or self.pattern!r} uses a predicate "
                "callable and cannot be serialized; express it as a glob "
                "pattern or layer_type rule instead")
        return {
            "pattern": self.pattern,
            "layer_type": self.layer_type,
            "weights": scheme_name(self.weights) if self.weights is not None else None,
            "activations": (scheme_name(self.activations)
                            if self.activations is not None else None),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PolicyRule":
        return cls(pattern=data.get("pattern"),
                   layer_type=data.get("layer_type"),
                   weights=data.get("weights"),
                   activations=data.get("activations"),
                   name=data.get("name", ""))


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of resolving one layer against a policy (None = default)."""

    weights: Optional[SchemeLike] = None
    activations: Optional[SchemeLike] = None
    weight_rule: Optional[str] = None
    activation_rule: Optional[str] = None


@dataclass
class QuantizationPolicy:
    """An ordered, first-match-wins set of per-layer scheme overrides."""

    rules: List[PolicyRule] = field(default_factory=list)

    def add(self, rule: PolicyRule) -> "QuantizationPolicy":
        self.rules.append(rule)
        return self

    def resolve(self, path: str, layer: object = None) -> PolicyDecision:
        """First matching rule per side wins; unmatched sides stay ``None``."""
        weights = activations = None
        weight_rule = activation_rule = None
        for index, rule in enumerate(self.rules):
            if (weights is None and rule.weights is not None) or (
                    activations is None and rule.activations is not None):
                if rule.matches(path, layer):
                    label = rule.name or f"rule[{index}]"
                    if weights is None and rule.weights is not None:
                        weights, weight_rule = rule.weights, label
                    if activations is None and rule.activations is not None:
                        activations, activation_rule = rule.activations, label
            if weights is not None and activations is not None:
                break
        return PolicyDecision(weights=weights, activations=activations,
                              weight_rule=weight_rule,
                              activation_rule=activation_rule)

    # ------------------------------------------------------------------
    def referenced_schemes(self) -> List[str]:
        """Names of every scheme any rule can select (for calibration checks)."""
        names = []
        for rule in self.rules:
            for side in (rule.weights, rule.activations):
                if side is not None:
                    name = scheme_name(side)
                    if name not in names:
                        names.append(name)
        return names

    def to_dict(self) -> Dict:
        return {"rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Optional[Dict]) -> Optional["QuantizationPolicy"]:
        if data is None:
            return None
        return cls(rules=[PolicyRule.from_dict(r) for r in data.get("rules", [])])


def boundary_interior_policy(unet, boundary: SchemeLike,
                             interior: Optional[SchemeLike] = None,
                             boundary_activations: Optional[SchemeLike] = None
                             ) -> QuantizationPolicy:
    """Keep the first and last quantizable layers on a higher-precision scheme.

    This is the classic mixed-precision recipe (the paper's integer baselines
    do the same): the boundary layers touch the image/noise directly and are
    the most error-sensitive, so they stay at e.g. FP8 while the interior
    runs FP4.  ``interior`` may be omitted to fall back to the config's
    default scheme for non-boundary layers.

    The boundary is the layer consuming the model input and the layer
    producing the model output: when the U-Net exposes them as
    ``input_conv`` / ``output_conv`` (as this repo's models do) those exact
    layers are pinned; otherwise the first/last quantizable layer in
    traversal order is used.
    """
    paths = [path for path, _ in quantizable_layer_paths(unet)]
    if not paths:
        raise ValueError("model has no quantizable layers")
    first = "input_conv" if "input_conv" in paths else paths[0]
    last = "output_conv" if "output_conv" in paths else paths[-1]
    rules = [PolicyRule(pattern=first, weights=boundary,
                        activations=boundary_activations, name="first-layer"),
             PolicyRule(pattern=last, weights=boundary,
                        activations=boundary_activations, name="last-layer")]
    if interior is not None:
        rules.append(PolicyRule(weights=interior, name="interior"))
    return QuantizationPolicy(rules=rules)


def layer_paths_matching(unet, pattern: str) -> List[Tuple[str, object]]:
    """Quantizable layers whose dotted path matches an fnmatch pattern."""
    return [(path, layer) for path, layer in quantizable_layer_paths(unet)
            if fnmatch.fnmatchcase(path, pattern)]

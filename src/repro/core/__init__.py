"""The paper's contribution: low-bitwidth floating-point PTQ for diffusion models.

Public API overview
-------------------

Primitives
    * :class:`FPFormat`, :func:`quantize_fp`, :func:`quantize_fp_blockwise` —
      low-bitwidth floating-point formats, round-to-nearest quantization
      (Eq. 5-9) and the block-wise variant (per-block exponent bias).
    * :class:`IntFormat` / :class:`PerChannelIntFormat`,
      :func:`calibrate_int_format`, :func:`quantize_int` and their
      per-channel counterparts — the uniform integer (Q-diffusion style)
      baseline (Eq. 4).
    * :func:`search_tensor_format` — Algorithm 1's per-tensor encoding/bias
      search.
    * :func:`learn_rounding` — gradient-based rounding learning for FP4
      weights (Eq. 12-14).
    * :func:`collect_calibration_data` — initialization / calibration dataset
      collection from the full-precision model.

Schemes and policies (the extensible quantization API)
    * :class:`QuantScheme` — one registrable calibrate/quantize strategy;
      built-ins cover ``fp32``, ``fp8``/``fp4`` (format search + rounding
      learning), ``int8``/``int4``, per-channel integer (``int8_pc``/
      ``int4_pc``) and block-wise FP (``fp8_block``/``fp4_block``).
    * :func:`register_scheme` / :func:`get_scheme` /
      :func:`available_schemes` — the scheme registry; any registered name
      is accepted wherever a dtype string is expected.
    * :class:`QuantizationPolicy` / :class:`PolicyRule` — ordered per-layer
      overrides (glob patterns, layer types, predicates) enabling true
      mixed precision; :func:`boundary_interior_policy` builds the classic
      "keep first/last layer high precision" recipe.

Orchestration
    * :func:`quantize_pipeline` / :func:`quantize_model` — end-to-end PTQ of
      a diffusion pipeline, dispatching through the scheme registry, with
      :data:`PAPER_CONFIGS` providing the exact weight/activation settings
      evaluated in the paper's tables and :func:`mixed_precision_config`
      building a policy-driven mixed-precision experiment.
    * :class:`QuantizationConfig` / :class:`QuantizationReport` /
      :class:`LayerQuantizationRecord` — serializable experiment descriptions
      and results (``to_dict`` / ``from_dict`` / ``to_json`` / ``from_json``).
    * :func:`measure_weight_sparsity` — the sparsity analysis of Figure 11.
"""

from .formats import (
    ENCODING_CANDIDATES,
    FP4_ENCODINGS,
    FP8_ENCODINGS,
    FPFormat,
    encoding_candidates,
)
from .fp import (
    calibrate_block_biases,
    fp_scales,
    quantization_mse,
    quantize_fp,
    quantize_fp_blockwise,
    quantize_fp_with_rounding,
)
from .integer import (
    IntFormat,
    PerChannelIntFormat,
    calibrate_int_format,
    calibrate_int_format_per_channel,
    int_quantization_mse,
    quantize_int,
    quantize_int_per_channel,
)
from .search import (
    DEFAULT_NUM_BIAS_CANDIDATES,
    SearchResult,
    bias_candidates,
    search_tensor_format,
)
from .rounding import (
    RoundingLearningConfig,
    RoundingLearningResult,
    learn_rounding,
    regularizer_value,
)
from .calibration import (
    CalibrationConfig,
    CalibrationData,
    collect_calibration_data,
    quantizable_layer_paths,
    skip_concat_paths,
)
from .hashing import canonical_json, canonicalize, content_hash
from .qmodules import (
    BlockFPTensorQuantizer,
    FPTensorQuantizer,
    IdentityQuantizer,
    IntTensorQuantizer,
    PackedIntWeight,
    PerChannelIntTensorQuantizer,
    QuantizedConv2d,
    QuantizedLinear,
    QuantizedSkipConcat,
    TensorQuantizer,
)
from .schemes import (
    BlockFPScheme,
    FPSearchScheme,
    IdentityScheme,
    IntScheme,
    PerChannelIntScheme,
    QuantScheme,
    available_schemes,
    get_scheme,
    register_scheme,
    scheme_name,
    unregister_scheme,
)
from .policy import (
    PolicyDecision,
    PolicyRule,
    QuantizationPolicy,
    boundary_interior_policy,
    layer_paths_matching,
)
from .quantizer import (
    PAPER_CONFIGS,
    VALID_DTYPES,
    LayerQuantizationRecord,
    QuantizationConfig,
    QuantizationReport,
    clone_model,
    fp4_fp8_config,
    fp8_fp8_config,
    full_precision_config,
    int4_int8_config,
    int8_int8_config,
    mixed_precision_config,
    quantize_model,
    quantize_pipeline,
)
from .sparsity import (
    SparsityReport,
    measure_weight_sparsity,
    sparsity_increase,
    tensor_sparsity,
)

__all__ = [
    # formats / fp / int
    "FPFormat", "FP8_ENCODINGS", "FP4_ENCODINGS", "ENCODING_CANDIDATES",
    "encoding_candidates", "fp_scales", "quantize_fp", "quantize_fp_with_rounding",
    "quantize_fp_blockwise", "calibrate_block_biases",
    "quantization_mse", "IntFormat", "PerChannelIntFormat",
    "calibrate_int_format", "calibrate_int_format_per_channel",
    "quantize_int", "quantize_int_per_channel", "int_quantization_mse",
    # search / rounding / calibration
    "search_tensor_format", "bias_candidates", "SearchResult",
    "DEFAULT_NUM_BIAS_CANDIDATES",
    "learn_rounding", "regularizer_value", "RoundingLearningConfig",
    "RoundingLearningResult",
    "CalibrationConfig", "CalibrationData", "collect_calibration_data",
    "quantizable_layer_paths", "skip_concat_paths",
    # content hashing
    "canonicalize", "canonical_json", "content_hash",
    # quantizer modules
    "TensorQuantizer", "IdentityQuantizer", "FPTensorQuantizer",
    "IntTensorQuantizer", "PerChannelIntTensorQuantizer",
    "BlockFPTensorQuantizer", "PackedIntWeight", "QuantizedConv2d", "QuantizedLinear",
    "QuantizedSkipConcat",
    # schemes and registry
    "QuantScheme", "IdentityScheme", "FPSearchScheme", "IntScheme",
    "PerChannelIntScheme", "BlockFPScheme",
    "register_scheme", "unregister_scheme", "get_scheme",
    "available_schemes", "scheme_name",
    # policies
    "QuantizationPolicy", "PolicyRule", "PolicyDecision",
    "boundary_interior_policy", "layer_paths_matching",
    # orchestration
    "QuantizationConfig", "QuantizationReport", "LayerQuantizationRecord",
    "PAPER_CONFIGS", "VALID_DTYPES", "quantize_pipeline", "quantize_model",
    "clone_model", "full_precision_config", "fp8_fp8_config", "fp4_fp8_config",
    "int8_int8_config", "int4_int8_config", "mixed_precision_config",
    # sparsity
    "SparsityReport", "measure_weight_sparsity", "sparsity_increase",
    "tensor_sparsity",
]

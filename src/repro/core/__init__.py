"""The paper's contribution: low-bitwidth floating-point PTQ for diffusion models.

Public API overview
-------------------

* :class:`FPFormat`, :func:`quantize_fp` — low-bitwidth floating-point formats
  and round-to-nearest quantization (Eq. 5-9).
* :func:`calibrate_int_format`, :func:`quantize_int` — the uniform integer
  (Q-diffusion style) baseline (Eq. 4).
* :func:`search_tensor_format` — Algorithm 1's per-tensor encoding/bias search.
* :func:`learn_rounding` — gradient-based rounding learning for FP4 weights
  (Eq. 12-14).
* :func:`collect_calibration_data` — initialization / calibration dataset
  collection from the full-precision model.
* :func:`quantize_pipeline` / :func:`quantize_model` — end-to-end PTQ of a
  diffusion pipeline, with :data:`PAPER_CONFIGS` providing the exact
  weight/activation settings evaluated in the paper's tables.
* :func:`measure_weight_sparsity` — the sparsity analysis of Figure 11.
"""

from .formats import (
    ENCODING_CANDIDATES,
    FP4_ENCODINGS,
    FP8_ENCODINGS,
    FPFormat,
    encoding_candidates,
)
from .fp import fp_scales, quantization_mse, quantize_fp, quantize_fp_with_rounding
from .integer import (
    IntFormat,
    calibrate_int_format,
    int_quantization_mse,
    quantize_int,
)
from .search import (
    DEFAULT_NUM_BIAS_CANDIDATES,
    SearchResult,
    bias_candidates,
    search_tensor_format,
)
from .rounding import (
    RoundingLearningConfig,
    RoundingLearningResult,
    learn_rounding,
    regularizer_value,
)
from .calibration import (
    CalibrationConfig,
    CalibrationData,
    collect_calibration_data,
    quantizable_layer_paths,
    skip_concat_paths,
)
from .qmodules import (
    FPTensorQuantizer,
    IdentityQuantizer,
    IntTensorQuantizer,
    QuantizedConv2d,
    QuantizedLinear,
    QuantizedSkipConcat,
    TensorQuantizer,
)
from .quantizer import (
    PAPER_CONFIGS,
    LayerQuantizationRecord,
    QuantizationConfig,
    QuantizationReport,
    clone_model,
    fp4_fp8_config,
    fp8_fp8_config,
    full_precision_config,
    int4_int8_config,
    int8_int8_config,
    quantize_model,
    quantize_pipeline,
)
from .sparsity import (
    SparsityReport,
    measure_weight_sparsity,
    sparsity_increase,
    tensor_sparsity,
)

__all__ = [
    # formats / fp / int
    "FPFormat", "FP8_ENCODINGS", "FP4_ENCODINGS", "ENCODING_CANDIDATES",
    "encoding_candidates", "fp_scales", "quantize_fp", "quantize_fp_with_rounding",
    "quantization_mse", "IntFormat", "calibrate_int_format", "quantize_int",
    "int_quantization_mse",
    # search / rounding / calibration
    "search_tensor_format", "bias_candidates", "SearchResult",
    "DEFAULT_NUM_BIAS_CANDIDATES",
    "learn_rounding", "regularizer_value", "RoundingLearningConfig",
    "RoundingLearningResult",
    "CalibrationConfig", "CalibrationData", "collect_calibration_data",
    "quantizable_layer_paths", "skip_concat_paths",
    # modules / orchestration
    "TensorQuantizer", "IdentityQuantizer", "FPTensorQuantizer",
    "IntTensorQuantizer", "QuantizedConv2d", "QuantizedLinear",
    "QuantizedSkipConcat",
    "QuantizationConfig", "QuantizationReport", "LayerQuantizationRecord",
    "PAPER_CONFIGS", "quantize_pipeline", "quantize_model", "clone_model",
    "full_precision_config", "fp8_fp8_config", "fp4_fp8_config",
    "int8_int8_config", "int4_int8_config",
    # sparsity
    "SparsityReport", "measure_weight_sparsity", "sparsity_increase",
    "tensor_sparsity",
]

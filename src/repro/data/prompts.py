"""Compositional prompt dataset with a procedural renderer (MS-COCO stand-in).

The paper samples 2,000 MS-COCO prompts for Stable Diffusion and uses the
MS-COCO validation images as the FID reference set.  Offline we generate a
compositional prompt grammar ("a red circle above a small blue square on a
green background") together with a deterministic renderer that produces the
matching reference image.  This gives:

* a prompt set for the text-to-image pipelines,
* an *external* reference image set whose distribution differs from what the
  model generates (mirroring the MS-COCO vs LAION mismatch the paper points
  out in its "better methodology" discussion), and
* a semantic target per prompt used by the CLIP-score substitute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

COLORS = {
    "red": (0.9, 0.2, 0.2),
    "green": (0.2, 0.8, 0.3),
    "blue": (0.2, 0.3, 0.9),
    "yellow": (0.9, 0.9, 0.2),
    "purple": (0.6, 0.2, 0.8),
    "white": (0.95, 0.95, 0.95),
}

SHAPES = ("circle", "square", "cross", "ring")
SIZES = ("small", "large")
RELATIONS = ("above", "below", "left of", "right of")
BACKGROUNDS = ("gray", "dark", "light")

_BACKGROUND_LEVELS = {"gray": 0.5, "dark": 0.2, "light": 0.8}


@dataclass(frozen=True)
class PromptSpec:
    """Structured description of one compositional prompt."""

    color_a: str
    shape_a: str
    size_a: str
    relation: str
    color_b: str
    shape_b: str
    background: str

    def to_text(self) -> str:
        return (f"a {self.size_a} {self.color_a} {self.shape_a} {self.relation} "
                f"a {self.color_b} {self.shape_b} on a {self.background} background")


def sample_prompt_specs(num_prompts: int, seed: int = 0) -> List[PromptSpec]:
    """Draw ``num_prompts`` prompt specs deterministically."""
    rng = np.random.default_rng(seed)
    colors = list(COLORS)
    specs = []
    for _ in range(num_prompts):
        specs.append(PromptSpec(
            color_a=colors[rng.integers(len(colors))],
            shape_a=SHAPES[rng.integers(len(SHAPES))],
            size_a=SIZES[rng.integers(len(SIZES))],
            relation=RELATIONS[rng.integers(len(RELATIONS))],
            color_b=colors[rng.integers(len(colors))],
            shape_b=SHAPES[rng.integers(len(SHAPES))],
            background=BACKGROUNDS[rng.integers(len(BACKGROUNDS))],
        ))
    return specs


def _draw_shape(image: np.ndarray, shape: str, color: Tuple[float, float, float],
                center: Tuple[float, float], radius: float) -> None:
    size = image.shape[1]
    ys, xs = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size),
                         indexing="ij")
    cy, cx = center
    if shape == "circle":
        mask = ((xs - cx) ** 2 + (ys - cy) ** 2) < radius ** 2
    elif shape == "square":
        mask = (np.abs(xs - cx) < radius) & (np.abs(ys - cy) < radius)
    elif shape == "cross":
        mask = ((np.abs(xs - cx) < radius * 0.35) & (np.abs(ys - cy) < radius)) | \
               ((np.abs(ys - cy) < radius * 0.35) & (np.abs(xs - cx) < radius))
    else:  # ring
        r = np.sqrt((xs - cx) ** 2 + (ys - cy) ** 2)
        mask = (r > radius * 0.55) & (r < radius)
    for channel, value in enumerate(color):
        image[channel][mask] = value


def render_prompt(spec: PromptSpec, size: int = 32) -> np.ndarray:
    """Render the reference image for a prompt spec, in ``[-1, 1]``."""
    level = _BACKGROUND_LEVELS[spec.background]
    image = np.full((3, size, size), level, dtype=np.float32)

    radius_a = 0.14 if spec.size_a == "small" else 0.24
    radius_b = 0.18
    if spec.relation == "above":
        center_a, center_b = (0.3, 0.5), (0.7, 0.5)
    elif spec.relation == "below":
        center_a, center_b = (0.7, 0.5), (0.3, 0.5)
    elif spec.relation == "left of":
        center_a, center_b = (0.5, 0.3), (0.5, 0.7)
    else:
        center_a, center_b = (0.5, 0.7), (0.5, 0.3)

    _draw_shape(image, spec.shape_b, COLORS[spec.color_b], center_b, radius_b)
    _draw_shape(image, spec.shape_a, COLORS[spec.color_a], center_a, radius_a)
    return np.clip(image, 0.0, 1.0) * 2.0 - 1.0


class PromptDataset:
    """Paired (prompt text, reference image) dataset used as the COCO stand-in."""

    def __init__(self, num_prompts: int = 64, image_size: int = 32, seed: int = 0):
        self.specs = sample_prompt_specs(num_prompts, seed=seed)
        self.image_size = image_size

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def prompts(self) -> List[str]:
        return [spec.to_text() for spec in self.specs]

    def reference_images(self) -> np.ndarray:
        """Render all reference images, shape ``(N, 3, H, W)`` in ``[-1, 1]``."""
        return np.stack([render_prompt(spec, self.image_size) for spec in self.specs])

    def subset(self, count: int) -> "PromptDataset":
        """Return a view containing only the first ``count`` prompts."""
        subset = PromptDataset.__new__(PromptDataset)
        subset.specs = self.specs[:count]
        subset.image_size = self.image_size
        return subset

"""Procedural synthetic image datasets.

These stand in for the datasets the paper evaluates on:

* :func:`shapes10` replaces CIFAR-10 — ten visually distinct procedural
  classes at low resolution.
* :func:`rooms` replaces LSUN-Bedrooms — structured "room" scenes (wall and
  floor split by a horizon line, plus furniture-like rectangles).

All generators are deterministic given their seed and return float32 arrays
of shape ``(N, 3, H, W)`` scaled to ``[-1, 1]``, matching the convention used
by the diffusion pipelines.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

NUM_SHAPE_CLASSES = 10


def _coordinate_grid(size: int) -> Tuple[np.ndarray, np.ndarray]:
    ys, xs = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size),
                         indexing="ij")
    return ys.astype(np.float32), xs.astype(np.float32)


def _normalize(image: np.ndarray) -> np.ndarray:
    return np.clip(image, 0.0, 1.0).astype(np.float32) * 2.0 - 1.0


def _shape_image(label: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one image of the given class with per-sample jitter."""
    ys, xs = _coordinate_grid(size)
    base = rng.uniform(0.1, 0.9, size=3).astype(np.float32)
    image = np.ones((3, size, size), dtype=np.float32) * base[:, None, None] * 0.3
    cx, cy = rng.uniform(0.3, 0.7, size=2)
    scale = rng.uniform(0.15, 0.3)

    if label == 0:  # horizontal gradient
        image += xs[None] * base[:, None, None]
    elif label == 1:  # vertical gradient
        image += ys[None] * base[:, None, None]
    elif label == 2:  # checkerboard
        period = max(2, size // 4)
        checker = ((np.floor(xs * period) + np.floor(ys * period)) % 2)
        image += checker[None] * base[:, None, None]
    elif label == 3:  # filled circle
        mask = ((xs - cx) ** 2 + (ys - cy) ** 2) < scale ** 2
        image += mask[None] * base[:, None, None]
    elif label == 4:  # ring
        radius = np.sqrt((xs - cx) ** 2 + (ys - cy) ** 2)
        mask = (radius > scale * 0.6) & (radius < scale)
        image += mask[None] * base[:, None, None]
    elif label == 5:  # vertical stripes
        period = max(2, size // 3)
        stripes = (np.floor(xs * period) % 2)
        image += stripes[None] * base[:, None, None]
    elif label == 6:  # diagonal stripes
        period = max(2, size // 3)
        stripes = (np.floor((xs + ys) * period) % 2)
        image += stripes[None] * base[:, None, None]
    elif label == 7:  # filled square
        mask = (np.abs(xs - cx) < scale) & (np.abs(ys - cy) < scale)
        image += mask[None] * base[:, None, None]
    elif label == 8:  # cross
        mask = (np.abs(xs - cx) < scale * 0.3) | (np.abs(ys - cy) < scale * 0.3)
        image += mask[None] * base[:, None, None]
    else:  # radial gradient
        radius = np.sqrt((xs - cx) ** 2 + (ys - cy) ** 2)
        image += (1.0 - radius)[None] * base[:, None, None]

    image += rng.normal(0.0, 0.02, size=image.shape).astype(np.float32)
    return _normalize(image)


def shapes10(num_images: int, size: int = 16, seed: int = 0,
             labels: np.ndarray = None) -> Tuple[np.ndarray, np.ndarray]:
    """CIFAR-10 stand-in: ``num_images`` procedural images and their labels."""
    rng = np.random.default_rng(seed)
    if labels is None:
        labels = rng.integers(0, NUM_SHAPE_CLASSES, size=num_images)
    labels = np.asarray(labels, dtype=np.int64)
    images = np.stack([_shape_image(int(label), size, rng) for label in labels])
    return images, labels


def _room_image(size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one bedroom-like scene: wall, floor, bed and window rectangles."""
    ys, xs = _coordinate_grid(size)
    wall_color = rng.uniform(0.4, 0.9, size=3).astype(np.float32)
    floor_color = rng.uniform(0.2, 0.6, size=3).astype(np.float32)
    horizon = rng.uniform(0.45, 0.7)
    image = np.where(ys[None] < horizon, wall_color[:, None, None],
                     floor_color[:, None, None]).astype(np.float32)

    # Bed: a wide rectangle sitting on the floor.
    bed_color = rng.uniform(0.3, 1.0, size=3).astype(np.float32)
    bed_left, bed_width = rng.uniform(0.1, 0.4), rng.uniform(0.3, 0.5)
    bed_top = horizon - rng.uniform(0.0, 0.1)
    bed_mask = ((xs > bed_left) & (xs < bed_left + bed_width)
                & (ys > bed_top) & (ys < bed_top + 0.35))
    image = np.where(bed_mask[None], bed_color[:, None, None], image)

    # Window: a bright rectangle on the wall.
    window_color = np.asarray([0.9, 0.95, 1.0], dtype=np.float32)
    win_left, win_top = rng.uniform(0.55, 0.75), rng.uniform(0.05, 0.25)
    win_mask = ((xs > win_left) & (xs < win_left + 0.2)
                & (ys > win_top) & (ys < win_top + 0.2))
    image = np.where(win_mask[None], window_color[:, None, None], image)

    image += rng.normal(0.0, 0.02, size=image.shape).astype(np.float32)
    return _normalize(image)


def rooms(num_images: int, size: int = 32, seed: int = 0) -> np.ndarray:
    """LSUN-Bedrooms stand-in: ``num_images`` procedural room scenes."""
    rng = np.random.default_rng(seed)
    return np.stack([_room_image(size, rng) for _ in range(num_images)])

"""Synthetic datasets standing in for CIFAR-10, LSUN-Bedrooms and MS-COCO."""

from .synthetic import NUM_SHAPE_CLASSES, rooms, shapes10
from .prompts import (
    BACKGROUNDS,
    COLORS,
    RELATIONS,
    SHAPES,
    SIZES,
    PromptDataset,
    PromptSpec,
    render_prompt,
    sample_prompt_specs,
)

__all__ = [
    "shapes10", "rooms", "NUM_SHAPE_CLASSES",
    "PromptDataset", "PromptSpec", "render_prompt", "sample_prompt_specs",
    "COLORS", "SHAPES", "SIZES", "RELATIONS", "BACKGROUNDS",
]

"""Build serving pipeline variants through the content-addressed store.

The serving :class:`~repro.serving.pool.ModelVariantPool` historically
re-quantized a checkpoint from scratch on every cold ``(model, scheme)``
request.  :func:`build_variant` routes that build through the same
pretrain -> calibration -> quantize stage chain the experiment runner uses
(:mod:`repro.experiments.stages`), so

* a variant quantized once — by a previous server process, by
  :meth:`~repro.serving.pool.ModelVariantPool.prewarm`, or by any
  experiment run whose stage inputs match — is **loaded** from the store
  instead of recomputed, and
* a cold build leaves its artifacts behind for the next consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..core import QuantizationConfig
from ..data import PromptDataset
from ..diffusion import DiffusionPipeline
from ..models import get_model_spec
from ..zoo import PretrainConfig
from .graph import StageGraph
from .runner import RunManifest, Runner
from .stages import add_calibration_stage, add_pretrain_stage, add_quantize_stage
from .store import RunStore


@dataclass
class VariantBuild:
    """A built serving variant plus where it came from."""

    pipeline: DiffusionPipeline
    report: object                  # QuantizationReport
    source: str                     # "store" (artifact hit) or "cold"
    manifest: RunManifest
    key: str                        # content key of the quantize stage


def build_variant(model: str, config: QuantizationConfig,
                  pretrain: Optional[PretrainConfig] = None,
                  store: Optional[RunStore] = None,
                  num_steps: Optional[int] = None,
                  zoo_cache_dir: Optional[Path] = None) -> VariantBuild:
    """Build (or load) the quantized pipeline for ``(model, config)``.

    ``num_steps`` defaults to the model's own sampling step count, matching
    the pool's pipeline construction.  The quantize artifact's identity is
    the (checkpoint, calibration data, config) chain, so experiment runs
    with matching inputs share it.
    """
    pretrain = pretrain or PretrainConfig()
    model_spec = get_model_spec(model)
    num_steps = num_steps or model_spec.default_sampling_steps

    prompts = None
    if model_spec.task == "text-to-image" and config.requires_calibration():
        prompts = PromptDataset(config.calibration.num_samples).prompts

    graph = StageGraph()
    pretrain_id = add_pretrain_stage(graph, model, pretrain,
                                     zoo_cache_dir=zoo_cache_dir)
    calibration_id = None
    if config.requires_calibration():
        calibration_id = add_calibration_stage(
            graph, model, pretrain_id, config.calibration,
            num_steps=num_steps, prompts=prompts)
    quantize_id = add_quantize_stage(graph, model, pretrain_id,
                                     calibration_id, config,
                                     num_steps=num_steps, prompts=prompts)

    runner = Runner(store=store, max_workers=1)
    values, manifest = runner.execute(graph, name=f"variant/{model}",
                                      model=model)
    quantized_model, report = values[quantize_id]
    record = manifest.stage(quantize_id)
    pipeline = DiffusionPipeline(quantized_model, num_steps=num_steps)
    return VariantBuild(pipeline=pipeline, report=report,
                        source="store" if record.cache_hit else "cold",
                        manifest=manifest, key=record.key)

"""Stage graphs: content-addressed DAGs of experiment work.

A :class:`Stage` is one unit of cached work (pretrain a checkpoint, collect
calibration data, quantize a pipeline, generate an image set, evaluate
metrics).  Its identity for caching is the **fingerprint**: a content hash
of the stage kind, its JSON-able inputs and the fingerprints of its
dependencies, so a change anywhere upstream re-keys everything downstream
while untouched subtrees keep their artifacts.

The callables on a stage are deliberately split three ways:

* ``compute(deps)`` produces the in-memory value from dependency values,
* ``encode(value)`` turns the value into a storable payload
  (``arrays`` / ``json`` / ``pickle`` — see :mod:`repro.experiments.store`),
* ``decode(payload)`` rebuilds the value from a stored payload on cache hit.

:class:`StageGraph` holds stages in dependency (insertion) order and
computes fingerprints; execution and manifests live in
:mod:`repro.experiments.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ..core.hashing import content_hash

#: Salt mixed into every stage fingerprint.  Keys are computed from stage
#: *inputs*, not from the code that executes the stage — bump this whenever
#: a stage implementation changes its outputs for identical inputs, so
#: existing stores invalidate wholesale instead of serving stale artifacts.
STORE_SCHEMA_VERSION = 1


def _identity(value: Any) -> Any:
    return value


@dataclass
class Stage:
    """One content-addressed node of an experiment graph."""

    stage_id: str
    kind: str
    inputs: Dict
    deps: Tuple[str, ...] = ()
    encoding: str = "arrays"
    compute: Callable[[Dict[str, Any]], Any] = None
    encode: Callable[[Any], Any] = _identity
    decode: Callable[[Any], Any] = _identity
    cacheable: bool = True


class StageGraph:
    """An ordered DAG of stages; insertion order is a topological order."""

    def __init__(self):
        self._stages: Dict[str, Stage] = {}
        self._fingerprints: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def add(self, stage: Stage) -> Stage:
        """Insert ``stage``; dependencies must already be present.

        Re-adding a ``stage_id`` with the *same* kind/inputs/deps returns
        the existing stage (the compiler reuses shared stages, e.g. the
        FP32 generation feeding both the FP32 table row and the "vs
        full-precision" reference).  Re-adding it with different content is
        an error — otherwise two distinct computations would silently alias
        one artifact (e.g. two row labels that slugify identically).
        """
        existing = self._stages.get(stage.stage_id)
        if existing is not None:
            if (existing.kind != stage.kind
                    or tuple(existing.deps) != tuple(stage.deps)
                    or content_hash(existing.inputs) != content_hash(stage.inputs)):
                raise ValueError(
                    f"stage id '{stage.stage_id}' already exists with "
                    f"different kind/inputs/deps; give the conflicting "
                    f"stages distinct ids (e.g. distinct row labels)")
            return existing
        for dep in stage.deps:
            if dep not in self._stages:
                raise ValueError(
                    f"stage '{stage.stage_id}' depends on unknown stage "
                    f"'{dep}'; add dependencies first")
        self._stages[stage.stage_id] = stage
        return stage

    def __contains__(self, stage_id: str) -> bool:
        return stage_id in self._stages

    def __getitem__(self, stage_id: str) -> Stage:
        return self._stages[stage_id]

    def __len__(self) -> int:
        return len(self._stages)

    @property
    def stages(self) -> List[Stage]:
        """Stages in insertion (topological) order."""
        return list(self._stages.values())

    def dependents(self) -> Dict[str, List[str]]:
        """Map of stage id -> ids of stages that depend on it (deduped)."""
        children: Dict[str, List[str]] = {sid: [] for sid in self._stages}
        for stage in self._stages.values():
            for dep in dict.fromkeys(stage.deps):
                children[dep].append(stage.stage_id)
        return children

    # ------------------------------------------------------------------
    def fingerprint(self, stage_id: str) -> str:
        """Content hash of a stage's kind, inputs and dependency hashes."""
        cached = self._fingerprints.get(stage_id)
        if cached is not None:
            return cached
        stage = self._stages[stage_id]
        digest = content_hash({
            "schema": STORE_SCHEMA_VERSION,
            "kind": stage.kind,
            "inputs": stage.inputs,
            "deps": [self.fingerprint(dep) for dep in stage.deps],
        })
        self._fingerprints[stage_id] = digest
        return digest

    def count_kind(self, kind: str) -> int:
        return sum(1 for stage in self._stages.values() if stage.kind == kind)

"""Execute stage graphs against the run store; emit run manifests.

The :class:`Runner` walks a :class:`~repro.experiments.graph.StageGraph` in
dependency order, short-circuiting every stage whose fingerprint is already
in the :class:`~repro.experiments.store.RunStore` and computing (then
persisting) the rest.  With ``max_workers > 1`` independent stages run
concurrently on a thread pool; results are deterministic regardless of
schedule because every stage derives its randomness from explicit seeds in
its hashed inputs — nothing reads a shared RNG.

Every run emits a :class:`RunManifest`: one record per stage (kind,
content key, cache hit/miss, duration, artifact path) in topological
order, plus aggregate cache statistics.  Manifests are JSON-serializable
so CI can archive them and tests can assert structural properties ("one
pretrain stage per model", "second run is >= 90% cache hits").
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .graph import Stage, StageGraph
from .spec import ExperimentSpec, TableResult
from .stages import ExperimentEnv, compile_experiment
from .store import RunStore

#: Lazily-created store shared by every ``store=None`` call in the process.
#: Lock-guarded: callers fan work out to thread pools, and two threads
#: racing the first call must not each build (and write through) their own
#: store.
_DEFAULT_STORES: dict = {}
_DEFAULT_STORE_LOCK = threading.Lock()


def default_run_store() -> RunStore:
    """The process-wide artifact store ``run_experiment`` defaults to."""
    with _DEFAULT_STORE_LOCK:
        store = _DEFAULT_STORES.get("default")
        if store is None:
            store = RunStore()
            _DEFAULT_STORES["default"] = store
    return store


@dataclass
class StageRecord:
    """What happened to one stage during a run.

    ``started_s``/``finished_s`` are offsets from the run's start on the
    runner's clock (wall time by default), so manifests archived by CI
    show where each stage sat inside the run — the same interval the
    runner's tracer books as the stage's span.
    """

    stage_id: str
    kind: str
    key: str
    cache_hit: bool
    duration_s: float
    artifact_path: Optional[str] = None
    deps: List[str] = field(default_factory=list)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None

    def to_dict(self) -> Dict:
        return {
            "stage_id": self.stage_id, "kind": self.kind, "key": self.key,
            "cache_hit": self.cache_hit, "duration_s": self.duration_s,
            "artifact_path": self.artifact_path, "deps": list(self.deps),
            "started_s": self.started_s, "finished_s": self.finished_s,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "StageRecord":
        return cls(stage_id=data["stage_id"], kind=data["kind"],
                   key=data["key"], cache_hit=data["cache_hit"],
                   duration_s=data["duration_s"],
                   artifact_path=data.get("artifact_path"),
                   deps=list(data.get("deps", [])),
                   started_s=data.get("started_s"),
                   finished_s=data.get("finished_s"))


@dataclass
class RunManifest:
    """Per-stage execution log of one run, in topological stage order."""

    stages: List[StageRecord] = field(default_factory=list)
    spec_fingerprint: Optional[str] = None
    name: Optional[str] = None
    model: Optional[str] = None
    total_duration_s: float = 0.0
    max_workers: int = 1
    #: Run-store counter deltas for this run ({"hits", "misses", "writes"}),
    #: None when the runner had no store.
    store: Optional[Dict] = None

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.stages if record.cache_hit)

    @property
    def cache_misses(self) -> int:
        return len(self.stages) - self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / len(self.stages) if self.stages else 0.0

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.stages:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def stage(self, stage_id: str) -> StageRecord:
        for record in self.stages:
            if record.stage_id == stage_id:
                return record
        raise KeyError(f"no stage '{stage_id}' in manifest")

    def structure(self) -> List[Tuple[str, str, str, bool]]:
        """Schedule-independent shape: (stage_id, kind, key, cache_hit).

        Two runs of the same graph against equally-warm stores produce
        identical structures whatever ``max_workers`` was — only durations
        and artifact roots may differ.
        """
        return [(record.stage_id, record.kind, record.key, record.cache_hit)
                for record in self.stages]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "model": self.model,
            "spec_fingerprint": self.spec_fingerprint,
            "max_workers": self.max_workers,
            "total_duration_s": self.total_duration_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "kind_counts": self.kind_counts(),
            "store": self.store,
            "stages": [record.to_dict() for record in self.stages],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunManifest":
        return cls(
            stages=[StageRecord.from_dict(r) for r in data.get("stages", [])],
            spec_fingerprint=data.get("spec_fingerprint"),
            name=data.get("name"), model=data.get("model"),
            total_duration_s=data.get("total_duration_s", 0.0),
            max_workers=data.get("max_workers", 1),
            store=data.get("store"))

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=2) + "\n")
        return path


@dataclass
class ExperimentRun:
    """One executed spec: the assembled table plus its manifest."""

    spec: ExperimentSpec
    table: TableResult
    manifest: RunManifest


class Runner:
    """Executes stage graphs, caching each stage in the run store.

    ``store=None`` disables artifact caching (every stage recomputes).
    ``max_workers`` bounds how many independent stages run concurrently;
    1 (the default) executes sequentially in topological order.
    """

    def __init__(self, store: Optional[RunStore] = None, max_workers: int = 1,
                 use_cache: bool = True,
                 zoo_cache_dir: Optional[Path] = None,
                 clock=time.perf_counter, tracer=None):
        """``clock`` is any zero-argument seconds callable (consistent with
        :class:`~repro.serving.clock.VirtualClock`); every stage duration
        and manifest timestamp comes from it, so tests can drive a runner
        clock-free.  ``tracer`` (:class:`repro.obs.Tracer`) books one span
        per stage — named ``stage.<kind>``, carrying the stage's store key
        and cache-hit flag — on a lane per worker thread."""
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.store = store
        self.max_workers = max_workers
        self.use_cache = use_cache
        self.zoo_cache_dir = zoo_cache_dir
        self.clock = clock
        self.tracer = tracer if (tracer is not None
                                 and getattr(tracer, "enabled", True)) else None

    # ------------------------------------------------------------------
    def _run_stage(self, stage: Stage, key: str, dep_values: Dict[str, Any],
                   run_started: float = 0.0) -> Tuple[Any, StageRecord]:
        started = self.clock()
        cache_hit = False
        artifact_path: Optional[Path] = None
        value = None
        if self.store is not None and self.use_cache and stage.cacheable:
            payload = self.store.load(key)
            if payload is not None:
                value = stage.decode(payload)
                cache_hit = True
                artifact_path = self.store.find(key)
        if not cache_hit:
            value = stage.compute(dep_values)
            if self.store is not None and stage.cacheable:
                artifact_path = self.store.save(
                    key, stage.encode(value), stage.encoding,
                    meta={"stage_id": stage.stage_id, "kind": stage.kind,
                          "inputs": stage.inputs, "deps": list(stage.deps)})
        finished = self.clock()
        if self.tracer is not None:
            # Lane defaults to the executing thread's name, so parallel
            # runs show one track per pool worker.
            self.tracer.add_span(f"stage.{stage.kind}", started, finished,
                                 category="runner", process="runner",
                                 attrs={"stage_id": stage.stage_id,
                                        "kind": stage.kind, "key": key,
                                        "cache_hit": cache_hit})
        record = StageRecord(
            stage_id=stage.stage_id, kind=stage.kind, key=key,
            cache_hit=cache_hit,
            duration_s=finished - started,
            artifact_path=str(artifact_path) if artifact_path else None,
            deps=list(stage.deps),
            started_s=started - run_started,
            finished_s=finished - run_started)
        return value, record

    # ------------------------------------------------------------------
    def execute(self, graph: StageGraph,
                name: Optional[str] = None,
                spec_fingerprint: Optional[str] = None,
                model: Optional[str] = None
                ) -> Tuple[Dict[str, Any], RunManifest]:
        """Run every stage; return ``(values by stage id, manifest)``."""
        started = self.clock()
        store_before = self.store.stats() if self.store is not None else None
        # Fingerprints are memoized inside the graph; computing them all up
        # front keeps the worker threads read-only.
        keys = {stage.stage_id: graph.fingerprint(stage.stage_id)
                for stage in graph.stages}
        values: Dict[str, Any] = {}
        records: Dict[str, StageRecord] = {}

        if self.max_workers == 1:
            for stage in graph.stages:
                dep_values = {dep: values[dep] for dep in stage.deps}
                value, record = self._run_stage(stage, keys[stage.stage_id],
                                                dep_values,
                                                run_started=started)
                values[stage.stage_id] = value
                records[stage.stage_id] = record
        else:
            self._execute_parallel(graph, keys, values, records, started)

        store_delta = None
        if store_before is not None:
            after = self.store.stats()
            store_delta = {counter: after[counter] - store_before[counter]
                           for counter in ("hits", "misses", "writes")}
        manifest = RunManifest(
            stages=[records[stage.stage_id] for stage in graph.stages],
            spec_fingerprint=spec_fingerprint, name=name, model=model,
            total_duration_s=self.clock() - started,
            max_workers=self.max_workers,
            store=store_delta)
        return values, manifest

    def _execute_parallel(self, graph: StageGraph, keys: Dict[str, str],
                          values: Dict[str, Any],
                          records: Dict[str, StageRecord],
                          run_started: float = 0.0) -> None:
        """Schedule independent stages on a thread pool.

        Bookkeeping (``values``/``records``/``remaining``) is only mutated
        from this thread; workers receive their dependency values by value
        at submission time, so there is no shared mutable state to race on.
        """
        children = graph.dependents()
        remaining = {stage.stage_id: len(set(stage.deps))
                     for stage in graph.stages}
        ready = [stage.stage_id for stage in graph.stages
                 if remaining[stage.stage_id] == 0]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {}

            def submit(stage_id: str) -> None:
                stage = graph[stage_id]
                dep_values = {dep: values[dep] for dep in stage.deps}
                future = pool.submit(self._run_stage, stage, keys[stage_id],
                                     dep_values, run_started)
                futures[future] = stage_id

            for stage_id in ready:
                submit(stage_id)
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    stage_id = futures.pop(future)
                    value, record = future.result()
                    values[stage_id] = value
                    records[stage_id] = record
                    for child in children[stage_id]:
                        remaining[child] -= 1
                        if remaining[child] == 0:
                            submit(child)

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> ExperimentRun:
        """Compile and execute a spec; return table + manifest."""
        plan = compile_experiment(
            spec, env=ExperimentEnv(zoo_cache_dir=self.zoo_cache_dir))
        values, manifest = self.execute(
            plan.graph, name=spec.name, spec_fingerprint=spec.fingerprint(),
            model=spec.model)
        table = plan.assemble(values)
        table.manifest = manifest
        return ExperimentRun(spec=spec, table=table, manifest=manifest)


def run_experiment(spec: ExperimentSpec, store: Optional[RunStore] = None,
                   max_workers: int = 1, use_cache: bool = True,
                   zoo_cache_dir: Optional[Path] = None,
                   tracer=None) -> ExperimentRun:
    """One-call entry point: run ``spec`` against ``store``.

    ``store=None`` uses the process-wide :func:`default_run_store`, so
    separate calls (and entry points) share pretrain/calibration/reference
    artifacts.  Pass ``store=False`` to run without any artifact store;
    ``tracer`` records one span per stage.
    """
    if store is None:
        store = default_run_store()
    elif store is False:
        store = None
    runner = Runner(store=store, max_workers=max_workers, use_cache=use_cache,
                    zoo_cache_dir=zoo_cache_dir, tracer=tracer)
    return runner.run(spec)

"""Content-addressed artifact store backing the experiment run API.

Every stage of an experiment graph (pretrain, calibration data, quantized
pipeline, generated images, evaluation) produces an artifact keyed by a
content hash of the stage's kind, inputs and dependency keys
(:mod:`repro.core.hashing`).  The :class:`RunStore` persists those artifacts
on disk so that

* re-running an identical :class:`~repro.experiments.spec.ExperimentSpec`
  is almost entirely cache hits,
* different entry points (the table harness, single-config experiments,
  the serving variant pool) share work whenever their stage inputs match.

Layout::

    <root>/objects/<key[:2]>/<key>.<ext>        # payload (npz / json / pkl)
    <root>/objects/<key[:2]>/<key>.meta.json    # stage kind + inputs (debug)

All writes go through a temp file + :func:`os.replace`, so a crashed or
concurrent writer can never leave a partially-written artifact visible to
readers; at worst a retry rewrites the same content under the same key.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from ..core.atomic import atomic_write

#: Supported payload encodings and their file suffixes.
ENCODINGS = {"arrays": ".npz", "json": ".json", "pickle": ".pkl"}


def _json_scalar(value):
    """Coerce numpy scalars inside JSON payloads to plain python numbers."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, np.bool_)):
        return value.item()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def default_store_root() -> Path:
    """Resolve the store root: ``$REPRO_RUN_STORE`` or ``<repo>/.run_store``."""
    env = os.environ.get("REPRO_RUN_STORE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".run_store"


class RunStore:
    """Content-addressed artifact store on disk.

    ``load``/``save`` speak in payloads: a dict of numpy arrays
    (``encoding="arrays"``), a JSON-safe dict (``"json"``) or an arbitrary
    picklable object (``"pickle"``).  Stage-level encode/decode (turning a
    model into a state dict and back, say) lives with the stage definitions
    in :mod:`repro.experiments.stages`.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_store_root()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _bucket(self, key: str) -> Path:
        return self.root / "objects" / key[:2]

    def path_for(self, key: str, encoding: str) -> Path:
        suffix = ENCODINGS[encoding]
        return self._bucket(key) / f"{key}{suffix}"

    def meta_path_for(self, key: str) -> Path:
        return self._bucket(key) / f"{key}.meta.json"

    def find(self, key: str) -> Optional[Path]:
        """Path of the stored payload for ``key``, or ``None``."""
        for suffix in ENCODINGS.values():
            path = self._bucket(key) / f"{key}{suffix}"
            if path.exists():
                return path
        return None

    def __contains__(self, key: str) -> bool:
        return self.find(key) is not None

    # ------------------------------------------------------------------
    # load / save
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[Any]:
        """Return the payload stored under ``key`` (counting hit/miss)."""
        path = self.find(key)
        if path is None:
            self.misses += 1
            return None
        self.hits += 1
        if path.suffix == ".npz":
            with np.load(path) as archive:
                return {name: archive[name] for name in archive.files}
        if path.suffix == ".json":
            return json.loads(path.read_text())
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def save(self, key: str, payload: Any, encoding: str = "arrays",
             meta: Optional[Dict] = None) -> Path:
        """Persist ``payload`` under ``key`` atomically; returns its path."""
        if encoding not in ENCODINGS:
            raise ValueError(f"unknown encoding '{encoding}'; "
                             f"choose from {sorted(ENCODINGS)}")
        path = self.path_for(key, encoding)
        if encoding == "arrays":
            arrays = {name: np.asarray(value)
                      for name, value in dict(payload).items()}
            atomic_write(path, lambda fh: np.savez_compressed(fh, **arrays))
        elif encoding == "json":
            text = json.dumps(payload, indent=2, sort_keys=True,
                              default=_json_scalar)
            atomic_write(path, lambda fh: fh.write(text.encode("utf-8")))
        else:
            atomic_write(path, lambda fh: pickle.dump(
                payload, fh, protocol=pickle.HIGHEST_PROTOCOL))
        if meta is not None:
            meta_text = json.dumps(meta, indent=2, sort_keys=True, default=str)
            atomic_write(self.meta_path_for(key),
                         lambda fh: fh.write(meta_text.encode("utf-8")))
        self.writes += 1
        return path

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        return {"root": str(self.root), "hits": self.hits,
                "misses": self.misses, "writes": self.writes}

"""Compile an :class:`~repro.experiments.spec.ExperimentSpec` to a stage graph.

The paper's tables all share the same expensive pipeline::

    pretrain -> calibration data -> quantize -> generate -> evaluate
                 \\                                /
                  `-- full-precision generation --'----- dataset reference

Each arrow is a :class:`~repro.experiments.graph.Stage` keyed by a content
hash of its inputs, so shared work collapses: one pretrain and one
calibration-data stage per model feed every row, the FP32 generation is
computed once and reused both as the FP32 row and as the
"vs full-precision" reference, and any two specs (or the serving variant
pool) that agree on a stage's inputs share its artifact.

The individual ``add_*_stage`` builders are public so other entry points —
:mod:`repro.experiments.variants` builds serving variants from the same
pretrain/calibration/quantize chain — produce identical keys and therefore
reuse experiment artifacts.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import QuantizationConfig, QuantizationReport, clone_model, quantize_pipeline
from ..core.calibration import CalibrationConfig, CalibrationData, collect_calibration_data
from ..core.hashing import content_hash
from ..data import PromptDataset, rooms, shapes10
from ..diffusion import DiffusionPipeline, GenerationPlan
from ..metrics import EvaluationResult, evaluate_images
from ..models import build_model, get_model_spec
from ..zoo import PretrainConfig, load_pretrained
from .graph import Stage, StageGraph
from .spec import ExperimentRow, ExperimentSpec, TableResult


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")


def _prompts_key(prompts: Optional[Sequence[str]]) -> Optional[str]:
    """Hash of the actual prompt texts a stage consumes.

    Keying on the texts (not on how the prompt dataset was parameterized)
    lets differently-constructed prompt sources share artifacts whenever
    they resolve to the same prompts.
    """
    if prompts is None:
        return None
    return content_hash(list(prompts))


@dataclass
class ExperimentEnv:
    """Execution-environment knobs that must NOT affect stage keys."""

    zoo_cache_dir: Optional[Path] = None


def _dataset_reference(model_name: str, num_images: int, image_size: int,
                       seed: int) -> np.ndarray:
    """External reference set: the training-data stand-in for the model."""
    if model_name == "ddim-cifar10":
        images, _ = shapes10(num_images, size=image_size, seed=seed)
        return images
    if model_name == "ldm-bedroom":
        return rooms(num_images, size=image_size, seed=seed)
    return PromptDataset(num_images, image_size=image_size, seed=seed).reference_images()


# ----------------------------------------------------------------------
# stage builders (shared with repro.experiments.variants)
# ----------------------------------------------------------------------
def add_pretrain_stage(graph: StageGraph, model: str, pretrain: PretrainConfig,
                       zoo_cache_dir: Optional[Path] = None) -> str:
    """Pretrained-checkpoint stage; artifact is the model state dict."""
    stage_id = f"pretrain/{model}"

    def compute(deps):
        return load_pretrained(model, pretrain, cache_dir=zoo_cache_dir)

    def decode(payload):
        spec = get_model_spec(model)
        restored = build_model(model, rng=np.random.default_rng(spec.seed))
        restored.load_state_dict(dict(payload))
        restored.eval()
        return restored

    graph.add(Stage(
        stage_id=stage_id, kind="pretrain",
        inputs={"model": model, "pretrain": asdict(pretrain)},
        encoding="arrays", compute=compute,
        encode=lambda value: value.state_dict(), decode=decode))
    return stage_id


def add_calibration_stage(graph: StageGraph, model: str, pretrain_id: str,
                          calibration: CalibrationConfig, num_steps: int,
                          prompts: Optional[Sequence[str]] = None) -> str:
    """Calibration-data stage: per-layer activations of the FP pipeline."""
    stage_id = f"calibration/{model}"
    used_prompts = (list(prompts)[: calibration.num_samples]
                    if prompts is not None else None)

    def compute(deps):
        # Collection temporarily swaps recording wrappers into the U-Net, so
        # it must run on a private clone: with a parallel runner, another
        # stage forwarding through the shared checkpoint at the same time
        # would otherwise pollute the recorded activations.
        pipeline = DiffusionPipeline(clone_model(deps[pretrain_id]),
                                     num_steps=num_steps)
        return collect_calibration_data(pipeline, calibration, prompts=used_prompts)

    def encode(data: CalibrationData):
        return {f"{name}::{index:04d}": record
                for name, records in data.activations.items()
                for index, record in enumerate(records)}

    def decode(payload) -> CalibrationData:
        grouped: Dict[str, List[Tuple[int, np.ndarray]]] = {}
        for key, record in payload.items():
            name, _, index = key.rpartition("::")
            grouped.setdefault(name, []).append((int(index), record))
        data = CalibrationData()
        for name in sorted(grouped):
            data.activations[name] = [record for _, record
                                      in sorted(grouped[name],
                                                key=lambda item: item[0])]
        return data

    graph.add(Stage(
        stage_id=stage_id, kind="calibration",
        inputs={"calibration": asdict(calibration), "num_steps": num_steps,
                "prompts": _prompts_key(used_prompts)},
        deps=(pretrain_id,), encoding="arrays",
        compute=compute, encode=encode, decode=decode))
    return stage_id


def add_quantize_stage(graph: StageGraph, model: str, pretrain_id: str,
                       calibration_id: Optional[str],
                       config: QuantizationConfig, num_steps: int,
                       prompts: Optional[Sequence[str]] = None,
                       stage_id: Optional[str] = None) -> str:
    """Quantized-pipeline stage; artifact is the quantized model + report.

    ``num_steps`` only shapes the throwaway pipeline wrapper used while
    quantizing — the quantized weights depend on the checkpoint, the config
    and the (separately keyed) calibration data, so it is deliberately left
    out of this stage's inputs.
    """
    stage_id = stage_id or f"quantize/{model}/{_slug(config.label)}"

    def compute(deps):
        pipeline = DiffusionPipeline(deps[pretrain_id], num_steps=num_steps)
        calibration = deps[calibration_id] if calibration_id else None
        quantized, report = quantize_pipeline(
            pipeline, config, prompts=prompts, calibration=calibration)
        return quantized.model, report

    deps = (pretrain_id,) + ((calibration_id,) if calibration_id else ())
    graph.add(Stage(
        stage_id=stage_id, kind="quantize",
        inputs={"config": config.to_dict()},
        deps=deps, encoding="pickle", compute=compute,
        encode=lambda value: {"model": value[0], "report": value[1].to_dict()},
        decode=lambda payload: (payload["model"],
                                QuantizationReport.from_dict(payload["report"]))))
    return stage_id


def add_generate_stage(graph: StageGraph, stage_id: str, source_id: str,
                       source_is_quantized: bool, num_images: int,
                       num_steps: int, seed: int, batch_size: int,
                       prompts: Optional[Sequence[str]] = None,
                       plan: Optional[GenerationPlan] = None) -> str:
    """Image-set generation stage (seed-matched, chunked like the harness).

    ``plan`` selects the generation trajectory.  Keys stay backwards
    compatible: a plan's step budget folds into the existing ``num_steps``
    input, and the trajectory fingerprint joins the key only when it differs
    from the default DDIM trajectory — so default-plan stages keep their
    pre-plan artifact keys while any sampler/guidance change re-keys exactly
    the generate (and downstream evaluate) stages.
    """
    if plan is not None and plan.num_steps is not None:
        num_steps = plan.num_steps

    def compute(deps):
        source = deps[source_id]
        model = source[0] if source_is_quantized else source
        pipeline = DiffusionPipeline(model, num_steps=num_steps, plan=plan)
        if prompts is not None:
            return pipeline.generate_from_prompts(list(prompts), seed=seed,
                                                  batch_size=batch_size)
        return pipeline.generate(num_images, seed=seed, batch_size=batch_size)

    inputs = {"num_images": num_images, "num_steps": num_steps,
              "seed": seed, "batch_size": batch_size,
              "prompts": _prompts_key(prompts)}
    if plan is not None and not plan.is_default():
        inputs["plan"] = plan.trajectory_fingerprint()
    graph.add(Stage(
        stage_id=stage_id, kind="generate",
        inputs=inputs,
        deps=(source_id,), encoding="arrays", compute=compute,
        encode=lambda images: {"images": images},
        decode=lambda payload: payload["images"]))
    return stage_id


# ----------------------------------------------------------------------
# the experiment plan
# ----------------------------------------------------------------------
@dataclass
class RowPlan:
    """Where one table row's artifacts live in the graph."""

    label: str
    generate_id: str
    quantize_id: Optional[str] = None
    evaluate_ids: Dict[str, str] = field(default_factory=dict)


@dataclass
class ExperimentPlan:
    """A compiled spec: the stage graph plus the result-assembly mapping."""

    spec: ExperimentSpec
    graph: StageGraph
    row_plans: List[RowPlan]
    reference_ids: Dict[str, str]

    def assemble(self, values: Dict[str, object]) -> TableResult:
        """Build the classic :class:`TableResult` from executed stage values."""
        rows: List[ExperimentRow] = []
        for plan in self.row_plans:
            metrics = {reference: values[eval_id]
                       for reference, eval_id in plan.evaluate_ids.items()}
            report = (values[plan.quantize_id][1]
                      if plan.quantize_id is not None else None)
            generated = (values[plan.generate_id]
                         if self.spec.keep_images else None)
            rows.append(ExperimentRow(label=plan.label, metrics=metrics,
                                      report=report, generated=generated))
        return TableResult(model_name=self.spec.model,
                           reference_names=list(self.spec.references),
                           rows=rows, settings=self.spec.settings)


def compile_experiment(spec: ExperimentSpec,
                       env: Optional[ExperimentEnv] = None) -> ExperimentPlan:
    """Compile a declarative spec into a content-addressed stage graph."""
    env = env or ExperimentEnv()
    settings = spec.settings
    model_spec = get_model_spec(spec.model)
    text_to_image = model_spec.task == "text-to-image"
    for plan in [spec.plan] + [spec.row_plan(row) for row in spec.rows]:
        if plan is not None:
            plan.validate_for_model(model_spec.task, spec.model)

    prompt_dataset = None
    prompts = None
    if text_to_image:
        prompt_dataset = PromptDataset(settings.num_images,
                                       image_size=model_spec.image_size,
                                       seed=settings.seed + 7)
        prompts = prompt_dataset.prompts

    graph = StageGraph()
    pretrain_id = add_pretrain_stage(graph, spec.model, settings.pretrain,
                                     zoo_cache_dir=env.zoo_cache_dir)

    def full_precision_generate() -> str:
        # Generated under the spec-level plan, so "vs full-precision"
        # comparisons hold the trajectory fixed between the quantized rows
        # and their FP reference.
        return add_generate_stage(
            graph, f"generate/{spec.model}/full-precision", pretrain_id,
            source_is_quantized=False, num_images=settings.num_images,
            num_steps=settings.num_steps, seed=settings.seed,
            batch_size=settings.batch_size, prompts=prompts, plan=spec.plan)

    reference_ids: Dict[str, str] = {}
    for reference in spec.references:
        if reference == "dataset":
            stage_id = f"dataset-reference/{spec.model}"
            seed = settings.seed + 99
            num = settings.num_images
            size = model_spec.image_size

            def compute_reference(deps, _m=spec.model, _n=num, _s=size, _seed=seed):
                return _dataset_reference(_m, _n, _s, _seed)

            graph.add(Stage(
                stage_id=stage_id, kind="dataset-reference",
                inputs={"model": spec.model, "num_images": num,
                        "image_size": size, "seed": seed},
                encoding="arrays", compute=compute_reference,
                encode=lambda images: {"images": images},
                decode=lambda payload: payload["images"]))
            reference_ids[reference] = stage_id
        else:
            reference_ids[reference] = full_precision_generate()

    # The plan-less label identifies the row's quantization work: rows that
    # sweep plans over one config share a single quantize stage.
    scaled_rows = [(row.resolved_label(settings),
                    row.resolved_label(settings, include_plan=False),
                    settings.scale_config(row.resolve_config()),
                    spec.row_plan(row))
                   for row in spec.rows]
    needs_calibration = any(not config.is_full_precision()
                            and config.requires_calibration()
                            for _, _, config, _ in scaled_rows)
    calibration_id = None
    if needs_calibration:
        calibration_id = add_calibration_stage(
            graph, spec.model, pretrain_id, settings.calibration_config(),
            num_steps=settings.num_steps, prompts=prompts)

    use_clip = spec.with_clip and text_to_image
    prompt_specs = prompt_dataset.specs if use_clip else None

    row_plans: List[RowPlan] = []
    for label, row_base_label, config, generation_plan in scaled_rows:
        slug = _slug(label)
        if config.is_full_precision():
            quantize_id = None
            if generation_plan == spec.plan:
                generate_id = full_precision_generate()
            else:
                # A row-level plan that differs from the spec default gets
                # its own FP generation (the shared reference stays on the
                # spec plan).
                generate_id = add_generate_stage(
                    graph, f"generate/{spec.model}/{slug}", pretrain_id,
                    source_is_quantized=False, num_images=settings.num_images,
                    num_steps=settings.num_steps, seed=settings.seed,
                    batch_size=settings.batch_size, prompts=prompts,
                    plan=generation_plan)
        else:
            row_calibration = (calibration_id
                               if config.requires_calibration() else None)
            quantize_id = add_quantize_stage(
                graph, spec.model, pretrain_id, row_calibration, config,
                num_steps=settings.num_steps, prompts=prompts,
                stage_id=f"quantize/{spec.model}/{_slug(row_base_label)}")
            generate_id = add_generate_stage(
                graph, f"generate/{spec.model}/{slug}", quantize_id,
                source_is_quantized=True, num_images=settings.num_images,
                num_steps=settings.num_steps, seed=settings.seed,
                batch_size=settings.batch_size, prompts=prompts,
                plan=generation_plan)

        evaluate_ids: Dict[str, str] = {}
        for reference in spec.references:
            reference_id = reference_ids[reference]
            evaluate_id = (f"evaluate/{spec.model}/{slug}"
                           f"/vs-{_slug(reference)}")

            def compute_metrics(deps, _gen=generate_id, _ref=reference_id,
                                _specs=prompt_specs):
                return evaluate_images(deps[_gen], deps[_ref],
                                       prompt_specs=_specs)

            graph.add(Stage(
                stage_id=evaluate_id, kind="evaluate",
                inputs={"reference": reference, "clip": use_clip,
                        "prompts": _prompts_key(prompts) if use_clip else None},
                deps=(generate_id, reference_id), encoding="json",
                compute=compute_metrics,
                encode=lambda result: asdict(result),
                decode=lambda payload: EvaluationResult(**payload)))
            evaluate_ids[reference] = evaluate_id

        row_plans.append(RowPlan(label=label, generate_id=generate_id,
                                 quantize_id=quantize_id,
                                 evaluate_ids=evaluate_ids))

    return ExperimentPlan(spec=spec, graph=graph, row_plans=row_plans,
                          reference_ids=reference_ids)

"""Declarative experiment specs and their result types.

An :class:`ExperimentSpec` is a complete, JSON-round-trippable description
of one table-style experiment: which model, which quantization rows (paper
presets or explicit :class:`~repro.core.QuantizationConfig` objects), which
reference sets to score against, and the scaled-down
:class:`BenchSettings`.  Specs never execute anything themselves — they
compile to a content-addressed stage graph
(:func:`repro.experiments.stages.compile_experiment`) that a
:class:`~repro.experiments.runner.Runner` executes against a
:class:`~repro.experiments.store.RunStore`.

Because every field of a spec is serializable and hashed, an identical spec
always maps to identical stage keys: re-running it is cache hits, and two
different specs share every stage whose inputs agree (same checkpoint, same
calibration settings, same FP32 generation seed, ...).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import PAPER_CONFIGS, QuantizationConfig, QuantizationReport
from ..core.calibration import CalibrationConfig
from ..core.hashing import content_hash
from ..core.rounding import RoundingLearningConfig
from ..diffusion import GenerationPlan
from ..metrics import EvaluationResult
from ..zoo import PretrainConfig

#: The row order used by the paper's tables.
PAPER_ROW_ORDER = ("FP32/FP32", "INT8/INT8", "FP8/FP8", "INT4/INT8",
                   "FP4/FP8 (no RL)", "FP4/FP8")

#: Reference sets a spec may score against.
KNOWN_REFERENCES = ("dataset", "full-precision generated")


@dataclass
class BenchSettings:
    """Scaled-down experiment sizes used by the benchmark harness."""

    num_images: int = 24
    num_steps: int = 10
    seed: int = 1234
    batch_size: int = 8
    num_bias_candidates: int = 21
    rounding_iterations: int = 40
    calibration_samples: int = 4
    calibration_records_per_layer: int = 6
    pretrain: PretrainConfig = field(default_factory=lambda: PretrainConfig(
        dataset_size=96, autoencoder_steps=40, denoiser_steps=80))

    def calibration_config(self) -> CalibrationConfig:
        """The calibration budget every scaled config shares."""
        return CalibrationConfig(
            num_samples=self.calibration_samples,
            max_records_per_layer=self.calibration_records_per_layer,
            batch_size=min(self.batch_size, 4),
            seed=self.seed + 1)

    def scale_config(self, config: QuantizationConfig) -> QuantizationConfig:
        """Apply the bench search/learning budgets to a paper config."""
        scaled = replace(
            config,
            num_bias_candidates=self.num_bias_candidates,
            calibration=self.calibration_config(),
            rounding=RoundingLearningConfig(
                iterations=self.rounding_iterations,
                samples_per_iteration=4,
                seed=self.seed + 2),
        )
        return scaled

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "BenchSettings":
        data = dict(data)
        pretrain = data.pop("pretrain", None)
        settings = cls(**data)
        if pretrain is not None:
            settings.pretrain = PretrainConfig(**pretrain)
        return settings


DEFAULT_BENCH_SETTINGS = BenchSettings()


# ----------------------------------------------------------------------
# row + experiment specs
# ----------------------------------------------------------------------
@dataclass
class RowSpec:
    """One table row: a paper preset label or an explicit config.

    Exactly one of ``preset`` (a :data:`repro.core.PAPER_CONFIGS` key) and
    ``config`` must be given.  ``label`` overrides the display label (it
    defaults to the preset key, or the scaled config's own label, suffixed
    with the plan's description when a non-default ``plan`` is set).

    ``plan`` selects the generation trajectory for this row's image set —
    sampler, step budget, guidance scale (see
    :class:`~repro.diffusion.GenerationPlan`).  ``None`` inherits the
    spec-level plan (or the default DDIM trajectory), so sampler x steps x
    guidance sweeps are just rows that share a config and differ in plan.
    """

    preset: Optional[str] = None
    config: Optional[QuantizationConfig] = None
    label: Optional[str] = None
    plan: Optional[GenerationPlan] = None

    def __post_init__(self):
        if (self.preset is None) == (self.config is None):
            raise ValueError("RowSpec needs exactly one of preset / config")
        if self.preset is not None and self.preset not in PAPER_CONFIGS:
            raise ValueError(
                f"unknown config label ['{self.preset}']; "
                f"known labels: {sorted(PAPER_CONFIGS)}")
        if isinstance(self.plan, dict):
            self.plan = GenerationPlan.from_dict(self.plan)

    def resolve_config(self) -> QuantizationConfig:
        if self.preset is not None:
            return PAPER_CONFIGS[self.preset]
        return self.config

    def resolved_label(self, settings: BenchSettings,
                       include_plan: bool = True) -> str:
        """The row's display label.

        ``include_plan=False`` yields the label minus the plan suffix — the
        identity of the row's *quantization* work, which the stage compiler
        uses so plan-sweep rows over one config share a quantize stage.
        """
        if self.label is not None:
            return self.label
        base = (self.preset if self.preset is not None
                else settings.scale_config(self.config).label)
        if include_plan and self.plan is not None:
            return f"{base} [{self.plan.describe()}]"
        return base

    def fingerprint(self) -> str:
        """Content hash of the row's computation-affecting fields.

        The display ``label`` override is excluded — it renames the table
        row without changing any generated artifact.
        """
        data = self.to_dict()
        data.pop("label")
        return content_hash(data)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        data = {
            "preset": self.preset,
            "config": self.config.to_dict() if self.config is not None else None,
            "label": self.label,
        }
        # Only serialized when set, so pre-plan specs keep their exact JSON
        # shape and content fingerprints.
        if self.plan is not None:
            data["plan"] = self.plan.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RowSpec":
        config = data.get("config")
        plan = data.get("plan")
        return cls(
            preset=data.get("preset"),
            config=QuantizationConfig.from_dict(config) if config else None,
            label=data.get("label"),
            plan=GenerationPlan.from_dict(plan) if plan else None)


@dataclass
class ExperimentSpec:
    """Declarative description of one table-style experiment run."""

    model: str
    rows: List[RowSpec]
    settings: BenchSettings = field(default_factory=BenchSettings)
    references: Tuple[str, ...] = KNOWN_REFERENCES
    with_clip: bool = True
    # Presentation-only: controls artifact retention, not artifact content.
    keep_images: bool = False  # repro: allow[fingerprint-coverage]
    # Presentation-only: display/manifest name, never a cache key.
    name: Optional[str] = None  # repro: allow[fingerprint-coverage]
    #: Default generation plan for every row (and the full-precision
    #: reference generation); individual rows override it via their own
    #: ``plan``.  ``None`` keeps the historical DDIM trajectory.
    plan: Optional[GenerationPlan] = None

    def __post_init__(self):
        if isinstance(self.plan, dict):
            self.plan = GenerationPlan.from_dict(self.plan)
        self.references = tuple(self.references)
        unknown = [ref for ref in self.references if ref not in KNOWN_REFERENCES]
        if unknown:
            raise ValueError(f"unknown references {unknown}; "
                             f"known: {list(KNOWN_REFERENCES)}")
        labels = [row.resolved_label(self.settings) for row in self.rows]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate row labels in spec: {labels}")

    @classmethod
    def from_labels(cls, model: str, labels: Sequence[str],
                    settings: Optional[BenchSettings] = None,
                    **kwargs) -> "ExperimentSpec":
        """Build a spec from ``PAPER_CONFIGS`` labels (the table-style path).

        Unknown labels are reported together, up front, so a caller
        assembling a whole table sees every bad label in one error rather
        than the first ``RowSpec`` rejection.
        """
        unknown = [label for label in labels if label not in PAPER_CONFIGS]
        if unknown:
            raise ValueError(
                f"unknown config labels {unknown}; "
                f"known labels: {sorted(PAPER_CONFIGS)}")
        return cls(model=model,
                   rows=[RowSpec(preset=label) for label in labels],
                   settings=settings or BenchSettings(), **kwargs)

    def row_labels(self) -> List[str]:
        return [row.resolved_label(self.settings) for row in self.rows]

    def row_plan(self, row: RowSpec) -> Optional[GenerationPlan]:
        """The plan a row generates under: its own, else the spec default."""
        return row.plan if row.plan is not None else self.plan

    def fingerprint(self) -> str:
        """Content hash of everything that affects computed artifacts.

        Presentation-only fields (``keep_images``, ``name``, row ``label``
        overrides) are excluded, so cosmetic changes still map to the same
        computation.
        """
        def row_content(row: RowSpec) -> Dict:
            data = row.to_dict()
            data.pop("label")
            return data

        content = {
            "model": self.model,
            "rows": [row_content(row) for row in self.rows],
            "settings": self.settings.to_dict(),
            "references": list(self.references),
            "with_clip": self.with_clip,
        }
        # Added only when set so pre-plan specs keep their fingerprints.
        if self.plan is not None:
            content["plan"] = self.plan.to_dict()
        return content_hash(content)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        data = {
            "model": self.model,
            "rows": [row.to_dict() for row in self.rows],
            "settings": self.settings.to_dict(),
            "references": list(self.references),
            "with_clip": self.with_clip,
            "keep_images": self.keep_images,
            "name": self.name,
        }
        if self.plan is not None:
            data["plan"] = self.plan.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentSpec":
        plan = data.get("plan")
        return cls(
            model=data["model"],
            rows=[RowSpec.from_dict(row) for row in data["rows"]],
            settings=BenchSettings.from_dict(data.get("settings", {})),
            references=tuple(data.get("references", KNOWN_REFERENCES)),
            with_clip=data.get("with_clip", True),
            keep_images=data.get("keep_images", False),
            name=data.get("name"),
            plan=GenerationPlan.from_dict(plan) if plan else None)

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# result types (shared with the classic harness API)
# ----------------------------------------------------------------------
@dataclass
class ExperimentRow:
    """One table row: quantization label plus metrics against each reference."""

    label: str
    metrics: Dict[str, EvaluationResult]
    report: Optional[QuantizationReport] = None
    generated: Optional[np.ndarray] = None


@dataclass
class TableResult:
    """A full table: model, reference-set names and ordered rows."""

    model_name: str
    reference_names: List[str]
    rows: List[ExperimentRow]
    settings: BenchSettings
    manifest: Optional[object] = None  # RunManifest when produced by a Runner

    def row(self, label: str) -> ExperimentRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled '{label}' in table for {self.model_name}")

    def format_table(self) -> str:
        """Render the table in the paper's layout (one block per reference set)."""
        lines = [f"model: {self.model_name}  "
                 f"(N={self.settings.num_images}, steps={self.settings.num_steps})"]
        with_clip = any(result.clip is not None
                        for row in self.rows for result in row.metrics.values())
        for reference in self.reference_names:
            lines.append(f"-- reference: {reference}")
            lines.append(EvaluationResult.header(with_clip=with_clip))
            for row in self.rows:
                lines.append(row.metrics[reference].as_row(row.label))
        return "\n".join(lines)

"""Classic experiment harness, now a thin shim over the declarative run API.

The original one-shot functions (:func:`run_quantization_table`,
:func:`run_config_experiment`) kept their signatures, but each call now
compiles an :class:`~repro.experiments.spec.ExperimentSpec`, executes it
through the :class:`~repro.experiments.runner.Runner` against the shared
content-addressed :class:`~repro.experiments.store.RunStore`, and converts
the result back.  Consequences for callers:

* calibration data is collected once per model and shared across all rows,
* the FP32 reference generation is computed once per (model, seed, steps) —
  even across *separate* calls and processes — instead of per call site,
* repeating a call with identical settings is almost entirely cache hits,
* the returned :class:`TableResult` carries the run manifest
  (``table.manifest``) with per-stage timings and cache hit/miss records.

The experimental protocol itself is unchanged (Section VI-A/C): every
configuration denoises the same starting noise; unconditional models score
against the dataset stand-in, text-to-image models against both the
external reference and the full-precision model's own generations; sizes
are scaled down per EXPERIMENTS.md.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence

from ..core import PAPER_CONFIGS, QuantizationConfig, measure_weight_sparsity, quantize_pipeline
from ..diffusion import DiffusionPipeline
from ..zoo import load_pretrained
from .runner import ExperimentRun, run_experiment
from .spec import (
    DEFAULT_BENCH_SETTINGS,
    PAPER_ROW_ORDER,
    BenchSettings,
    ExperimentRow,
    ExperimentSpec,
    RowSpec,
    TableResult,
)
from .stages import _dataset_reference  # noqa: F401  (re-exported for tests)
from .store import RunStore

#: Lazily-created store shared by every harness-level call in the process.
#: Lock-guarded: table runners fan rows out to a thread pool, and two
#: threads racing the first call must not each build (and write through)
#: their own store.
_DEFAULT_STORES: dict = {}
_DEFAULT_STORE_LOCK = threading.Lock()


def default_run_store() -> RunStore:
    """The process-wide artifact store used by the shim entry points."""
    with _DEFAULT_STORE_LOCK:
        store = _DEFAULT_STORES.get("default")
        if store is None:
            store = RunStore()
            _DEFAULT_STORES["default"] = store
    return store


def _resolve_store(store):
    """``None`` -> the shared default store; ``False`` -> no store at all."""
    return default_run_store() if store is None else store


def load_benchmark_pipeline(model_name: str,
                            settings: BenchSettings = DEFAULT_BENCH_SETTINGS
                            ) -> DiffusionPipeline:
    """Load the cached pre-trained model and wrap it in a bench pipeline."""
    model = load_pretrained(model_name, settings.pretrain)
    return DiffusionPipeline(model, num_steps=settings.num_steps)


def run_quantization_table(model_name: str,
                           config_labels: Sequence[str] = PAPER_ROW_ORDER,
                           settings: BenchSettings = DEFAULT_BENCH_SETTINGS,
                           keep_images: bool = False,
                           store: Optional[RunStore] = None,
                           max_workers: int = 1,
                           use_cache: bool = True,
                           zoo_cache_dir=None,
                           tracer=None) -> TableResult:
    """Reproduce one quantitative table (Tables II-V of the paper).

    Shim over the declarative API: equivalent to running
    ``ExperimentSpec.from_labels(model_name, config_labels, settings)``.
    Returns metric rows for every requested configuration against the
    external dataset reference and against the full-precision model's own
    generations; ``.manifest`` on the result records the stage graph run.
    """
    unknown = [label for label in config_labels if label not in PAPER_CONFIGS]
    if unknown:
        raise ValueError(
            f"unknown config labels {unknown}; "
            f"known labels: {sorted(PAPER_CONFIGS)}")
    spec = ExperimentSpec.from_labels(model_name, config_labels, settings,
                                      keep_images=keep_images,
                                      name=f"table/{model_name}")
    run = run_experiment(spec, store=_resolve_store(store),
                         max_workers=max_workers, use_cache=use_cache,
                         zoo_cache_dir=zoo_cache_dir, tracer=tracer)
    return run.table


def run_config_experiment(model_name: str, config: QuantizationConfig,
                          settings: BenchSettings = DEFAULT_BENCH_SETTINGS,
                          store: Optional[RunStore] = None,
                          max_workers: int = 1,
                          use_cache: bool = True,
                          zoo_cache_dir=None,
                          tracer=None) -> ExperimentRow:
    """Run one arbitrary :class:`QuantizationConfig` (e.g. a policy-driven
    mixed-precision experiment) against the full-precision baseline.

    Unlike :func:`run_quantization_table` this takes a ready-made config
    instead of a ``PAPER_CONFIGS`` label, so custom schemes and per-layer
    policies plug straight in.  Metrics are reported against the
    full-precision model's own generations (the paper's proposed
    reference).  Because the run goes through the shared artifact store,
    the pretrain / calibration / FP-generation stages are reused from (and
    by) any table run with matching settings.
    """
    spec = ExperimentSpec(
        model=model_name,
        rows=[RowSpec(config=config)],
        settings=settings,
        references=("full-precision generated",),
        with_clip=False,
        name=f"config/{model_name}")
    run = run_experiment(spec, store=_resolve_store(store),
                         max_workers=max_workers, use_cache=use_cache,
                         zoo_cache_dir=zoo_cache_dir, tracer=tracer)
    return run.table.rows[0]


def run_experiment_spec(spec: ExperimentSpec,
                        store: Optional[RunStore] = None,
                        max_workers: int = 1,
                        use_cache: bool = True,
                        zoo_cache_dir=None,
                        tracer=None) -> ExperimentRun:
    """Run a declarative spec against the shared harness store."""
    return run_experiment(spec, store=_resolve_store(store),
                          max_workers=max_workers, use_cache=use_cache,
                          zoo_cache_dir=zoo_cache_dir, tracer=tracer)


def run_sparsity_experiment(model_name: str,
                            settings: BenchSettings = DEFAULT_BENCH_SETTINGS
                            ) -> Dict[str, float]:
    """Reproduce one model's bars of Figure 11: weight sparsity percentages."""
    pipeline = load_benchmark_pipeline(model_name, settings)
    results: Dict[str, float] = {}
    # Sparsity is a property of the quantized *weights*, so activations are
    # left in FP32 here; this avoids needing calibration data and keeps the
    # experiment weight-only, exactly what Figure 11 measures.
    fp8_weights = settings.scale_config(QuantizationConfig(
        weight_dtype="fp8", activation_dtype="fp32"))
    fp4_weights = settings.scale_config(QuantizationConfig(
        weight_dtype="fp4", activation_dtype="fp32", rounding_learning=False))
    fp8_pipe, _ = quantize_pipeline(pipeline, fp8_weights)
    fp4_pipe, _ = quantize_pipeline(pipeline, fp4_weights)
    results["FP32"] = measure_weight_sparsity(fp8_pipe.model, use_original=True).percent
    results["FP8"] = measure_weight_sparsity(fp8_pipe.model).percent
    results["FP4"] = measure_weight_sparsity(fp4_pipe.model).percent
    return results

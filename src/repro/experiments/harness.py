"""Benchmark-harness helpers that sit above the declarative run API.

The classic one-shot shims (``run_quantization_table``,
``run_config_experiment``, ``run_experiment_spec``) are gone: every
caller now builds an :class:`~repro.experiments.spec.ExperimentSpec` —
``ExperimentSpec.from_labels`` for paper-table rows, explicit
:class:`~repro.experiments.spec.RowSpec` objects for custom configs —
and executes it with :func:`repro.experiments.runner.run_experiment`,
which defaults to the shared process-wide store
(:func:`repro.experiments.runner.default_run_store`).  The consequences
the shims existed to provide are now properties of the core path:

* calibration data is collected once per model and shared across rows,
* the FP32 reference generation is computed once per (model, seed,
  steps) — even across separate calls and processes,
* repeating a run with identical settings is almost entirely cache hits,
* every result carries the run manifest (``table.manifest``).

What remains here are the pieces with no declarative equivalent: loading
a bench-scaled pipeline outside any stage graph, and the weight-sparsity
experiment (Figure 11), which quantizes weights without calibration or
generation and therefore never touches the store.
"""

from __future__ import annotations

from typing import Dict

from ..core import QuantizationConfig, measure_weight_sparsity, quantize_pipeline
from ..diffusion import DiffusionPipeline
from ..zoo import load_pretrained
from .spec import DEFAULT_BENCH_SETTINGS, BenchSettings
from .stages import _dataset_reference  # noqa: F401  (re-exported for tests)


def load_benchmark_pipeline(model_name: str,
                            settings: BenchSettings = DEFAULT_BENCH_SETTINGS
                            ) -> DiffusionPipeline:
    """Load the cached pre-trained model and wrap it in a bench pipeline."""
    model = load_pretrained(model_name, settings.pretrain)
    return DiffusionPipeline(model, num_steps=settings.num_steps)


def run_sparsity_experiment(model_name: str,
                            settings: BenchSettings = DEFAULT_BENCH_SETTINGS
                            ) -> Dict[str, float]:
    """Reproduce one model's bars of Figure 11: weight sparsity percentages."""
    pipeline = load_benchmark_pipeline(model_name, settings)
    results: Dict[str, float] = {}
    # Sparsity is a property of the quantized *weights*, so activations are
    # left in FP32 here; this avoids needing calibration data and keeps the
    # experiment weight-only, exactly what Figure 11 measures.
    fp8_weights = settings.scale_config(QuantizationConfig(
        weight_dtype="fp8", activation_dtype="fp32"))
    fp4_weights = settings.scale_config(QuantizationConfig(
        weight_dtype="fp4", activation_dtype="fp32", rounding_learning=False))
    fp8_pipe, _ = quantize_pipeline(pipeline, fp8_weights)
    fp4_pipe, _ = quantize_pipeline(pipeline, fp4_weights)
    results["FP32"] = measure_weight_sparsity(fp8_pipe.model, use_original=True).percent
    results["FP8"] = measure_weight_sparsity(fp8_pipe.model).percent
    results["FP4"] = measure_weight_sparsity(fp4_pipe.model).percent
    return results

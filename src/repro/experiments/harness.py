"""Reusable experiment harness for the paper's tables and figures.

The harness mirrors the paper's experimental protocol (Section VI-A/C):

* every configuration being compared denoises *the same* starting noise
  (fixed seed), so differences between rows are caused by quantization alone;
* unconditional models are scored against their dataset stand-in reference,
  text-to-image models against both the external (MS-COCO stand-in) reference
  and the full-precision model's own generations (the paper's proposed
  methodology);
* sample counts, denoising steps and search budgets are scaled down from the
  paper's (50k samples, 200 steps, 111 bias candidates) to sizes that run in
  seconds on a CPU; EXPERIMENTS.md records the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import (
    CalibrationConfig,
    PAPER_CONFIGS,
    QuantizationConfig,
    QuantizationReport,
    measure_weight_sparsity,
    quantize_pipeline,
)
from ..core.calibration import CalibrationData, collect_calibration_data
from ..core.rounding import RoundingLearningConfig
from ..data import PromptDataset, rooms, shapes10
from ..diffusion import DiffusionPipeline
from ..metrics import EvaluationResult, evaluate_images
from ..models import get_model_spec
from ..zoo import PretrainConfig, load_pretrained


@dataclass
class BenchSettings:
    """Scaled-down experiment sizes used by the benchmark harness."""

    num_images: int = 24
    num_steps: int = 10
    seed: int = 1234
    batch_size: int = 8
    num_bias_candidates: int = 21
    rounding_iterations: int = 40
    calibration_samples: int = 4
    calibration_records_per_layer: int = 6
    pretrain: PretrainConfig = field(default_factory=lambda: PretrainConfig(
        dataset_size=96, autoencoder_steps=40, denoiser_steps=80))

    def scale_config(self, config: QuantizationConfig) -> QuantizationConfig:
        """Apply the bench search/learning budgets to a paper config."""
        scaled = replace(
            config,
            num_bias_candidates=self.num_bias_candidates,
            calibration=CalibrationConfig(
                num_samples=self.calibration_samples,
                max_records_per_layer=self.calibration_records_per_layer,
                batch_size=min(self.batch_size, 4),
                seed=self.seed + 1),
            rounding=RoundingLearningConfig(
                iterations=self.rounding_iterations,
                samples_per_iteration=4,
                seed=self.seed + 2),
        )
        return scaled


DEFAULT_BENCH_SETTINGS = BenchSettings()

#: The row order used by the paper's tables.
PAPER_ROW_ORDER = ("FP32/FP32", "INT8/INT8", "FP8/FP8", "INT4/INT8",
                   "FP4/FP8 (no RL)", "FP4/FP8")


@dataclass
class ExperimentRow:
    """One table row: quantization label plus metrics against each reference."""

    label: str
    metrics: Dict[str, EvaluationResult]
    report: Optional[QuantizationReport] = None
    generated: Optional[np.ndarray] = None


@dataclass
class TableResult:
    """A full table: model, reference-set names and ordered rows."""

    model_name: str
    reference_names: List[str]
    rows: List[ExperimentRow]
    settings: BenchSettings

    def row(self, label: str) -> ExperimentRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled '{label}' in table for {self.model_name}")

    def format_table(self) -> str:
        """Render the table in the paper's layout (one block per reference set)."""
        lines = [f"model: {self.model_name}  "
                 f"(N={self.settings.num_images}, steps={self.settings.num_steps})"]
        with_clip = any(result.clip is not None
                        for row in self.rows for result in row.metrics.values())
        for reference in self.reference_names:
            lines.append(f"-- reference: {reference}")
            lines.append(EvaluationResult.header(with_clip=with_clip))
            for row in self.rows:
                lines.append(row.metrics[reference].as_row(row.label))
        return "\n".join(lines)


def _dataset_reference(model_name: str, num_images: int, image_size: int,
                       seed: int) -> np.ndarray:
    """External reference set: the training-data stand-in for the model."""
    if model_name == "ddim-cifar10":
        images, _ = shapes10(num_images, size=image_size, seed=seed)
        return images
    if model_name == "ldm-bedroom":
        return rooms(num_images, size=image_size, seed=seed)
    return PromptDataset(num_images, image_size=image_size, seed=seed).reference_images()


def load_benchmark_pipeline(model_name: str,
                            settings: BenchSettings = DEFAULT_BENCH_SETTINGS
                            ) -> DiffusionPipeline:
    """Load the cached pre-trained model and wrap it in a bench pipeline."""
    model = load_pretrained(model_name, settings.pretrain)
    return DiffusionPipeline(model, num_steps=settings.num_steps)


def run_quantization_table(model_name: str,
                           config_labels: Sequence[str] = PAPER_ROW_ORDER,
                           settings: BenchSettings = DEFAULT_BENCH_SETTINGS,
                           keep_images: bool = False) -> TableResult:
    """Reproduce one quantitative table (Tables II-V of the paper).

    Returns metric rows for every requested configuration against the
    external dataset reference and against the full-precision model's own
    generations.
    """
    unknown = [label for label in config_labels if label not in PAPER_CONFIGS]
    if unknown:
        raise ValueError(
            f"unknown config labels {unknown}; "
            f"known labels: {sorted(PAPER_CONFIGS)}")

    spec = get_model_spec(model_name)
    pipeline = load_benchmark_pipeline(model_name, settings)

    prompt_dataset = None
    prompts = None
    if spec.task == "text-to-image":
        prompt_dataset = PromptDataset(settings.num_images,
                                       image_size=spec.image_size,
                                       seed=settings.seed + 7)
        prompts = prompt_dataset.prompts

    def generate(pipe: DiffusionPipeline) -> np.ndarray:
        if prompts is not None:
            return pipe.generate_from_prompts(prompts, seed=settings.seed,
                                              batch_size=settings.batch_size)
        return pipe.generate(settings.num_images, seed=settings.seed,
                             batch_size=settings.batch_size)

    dataset_reference = _dataset_reference(model_name, settings.num_images,
                                           spec.image_size, settings.seed + 99)
    full_precision_images = generate(pipeline)
    references = {
        "dataset": dataset_reference,
        "full-precision generated": full_precision_images,
    }

    # Collect calibration data once from the full-precision pipeline and share
    # it across configs so the comparison is apples-to-apples.
    shared_calibration: Optional[CalibrationData] = None

    rows: List[ExperimentRow] = []
    for label in config_labels:
        config = settings.scale_config(PAPER_CONFIGS[label])
        if label == "FP32/FP32":
            generated, report = full_precision_images, None
        else:
            if shared_calibration is None and config.requires_calibration():
                shared_calibration = collect_calibration_data(
                    pipeline, config.calibration, prompts=prompts)
            quantized, report = quantize_pipeline(pipeline, config, prompts=prompts,
                                                  calibration=shared_calibration)
            generated = generate(quantized)
        metrics = {
            name: evaluate_images(
                generated, reference,
                prompt_specs=prompt_dataset.specs if prompt_dataset else None)
            for name, reference in references.items()
        }
        rows.append(ExperimentRow(label=label, metrics=metrics, report=report,
                                  generated=generated if keep_images else None))
    return TableResult(model_name=model_name,
                       reference_names=list(references),
                       rows=rows, settings=settings)


def run_config_experiment(model_name: str, config: QuantizationConfig,
                          settings: BenchSettings = DEFAULT_BENCH_SETTINGS
                          ) -> ExperimentRow:
    """Run one arbitrary :class:`QuantizationConfig` (e.g. a policy-driven
    mixed-precision experiment) against the full-precision baseline.

    Unlike :func:`run_quantization_table` this takes a ready-made config
    instead of a ``PAPER_CONFIGS`` label, so custom schemes and per-layer
    policies plug straight in.  Metrics are reported against the
    full-precision model's own generations (the paper's proposed reference).
    """
    spec = get_model_spec(model_name)
    pipeline = load_benchmark_pipeline(model_name, settings)
    scaled = settings.scale_config(config)

    prompts = None
    if spec.task == "text-to-image":
        prompts = PromptDataset(settings.num_images, image_size=spec.image_size,
                                seed=settings.seed + 7).prompts

    def generate(pipe: DiffusionPipeline) -> np.ndarray:
        if prompts is not None:
            return pipe.generate_from_prompts(prompts, seed=settings.seed,
                                              batch_size=settings.batch_size)
        return pipe.generate(settings.num_images, seed=settings.seed,
                             batch_size=settings.batch_size)

    reference = generate(pipeline)
    quantized, report = quantize_pipeline(pipeline, scaled, prompts=prompts)
    generated = generate(quantized)
    metrics = {"full-precision generated": evaluate_images(generated, reference)}
    return ExperimentRow(label=scaled.label, metrics=metrics, report=report)


def run_sparsity_experiment(model_name: str,
                            settings: BenchSettings = DEFAULT_BENCH_SETTINGS
                            ) -> Dict[str, float]:
    """Reproduce one model's bars of Figure 11: weight sparsity percentages."""
    pipeline = load_benchmark_pipeline(model_name, settings)
    results: Dict[str, float] = {}
    # Sparsity is a property of the quantized *weights*, so activations are
    # left in FP32 here; this avoids needing calibration data and keeps the
    # experiment weight-only, exactly what Figure 11 measures.
    fp8_weights = settings.scale_config(QuantizationConfig(
        weight_dtype="fp8", activation_dtype="fp32"))
    fp4_weights = settings.scale_config(QuantizationConfig(
        weight_dtype="fp4", activation_dtype="fp32", rounding_learning=False))
    fp8_pipe, _ = quantize_pipeline(pipeline, fp8_weights)
    fp4_pipe, _ = quantize_pipeline(pipeline, fp4_weights)
    results["FP32"] = measure_weight_sparsity(fp8_pipe.model, use_original=True).percent
    results["FP8"] = measure_weight_sparsity(fp8_pipe.model).percent
    results["FP4"] = measure_weight_sparsity(fp4_pipe.model).percent
    return results

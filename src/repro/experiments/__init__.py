"""Declarative experiment-run API shared by benchmarks, examples and serving.

Every paper table/figure composes the same expensive stages: load a
pre-trained zoo model, collect calibration data, quantize under a set of
configs, generate seed-matched image sets and score them against reference
sets.  This package makes those runs **declarative, cached, resumable and
parallel**:

* :class:`ExperimentSpec` — a JSON-round-trippable description of one run
  (model, rows, references, :class:`BenchSettings`);
* :func:`compile_experiment` — compiles a spec into a
  :class:`StageGraph` whose nodes (pretrain, calibration, quantize,
  generate, evaluate) are keyed by content hashes of their inputs;
* :class:`RunStore` — content-addressed on-disk artifact store, so
  identical stages are computed once and shared across rows, runs, entry
  points and processes;
* :class:`Runner` — executes independent stages in parallel and emits a
  :class:`RunManifest` (per-stage timings, cache hits, artifact paths).

:func:`run_experiment` is the single entry point; with ``store=None`` it
executes against the shared process-wide :func:`default_run_store`, so
separate calls and entry points reuse each other's artifacts.
"""

from .graph import Stage, StageGraph
from .harness import load_benchmark_pipeline, run_sparsity_experiment
from .runner import (
    ExperimentRun,
    RunManifest,
    Runner,
    StageRecord,
    default_run_store,
    run_experiment,
)
from .spec import (
    DEFAULT_BENCH_SETTINGS,
    PAPER_ROW_ORDER,
    BenchSettings,
    ExperimentRow,
    ExperimentSpec,
    RowSpec,
    TableResult,
)
from .stages import ExperimentEnv, ExperimentPlan, compile_experiment
from .store import RunStore
from .variants import VariantBuild, build_variant

__all__ = [
    "BenchSettings",
    "DEFAULT_BENCH_SETTINGS",
    "ExperimentEnv",
    "ExperimentPlan",
    "ExperimentRow",
    "ExperimentRun",
    "ExperimentSpec",
    "PAPER_ROW_ORDER",
    "RowSpec",
    "RunManifest",
    "RunStore",
    "Runner",
    "Stage",
    "StageGraph",
    "StageRecord",
    "TableResult",
    "VariantBuild",
    "build_variant",
    "compile_experiment",
    "default_run_store",
    "load_benchmark_pipeline",
    "run_experiment",
    "run_sparsity_experiment",
]

"""Experiment harness shared by the benchmark suite and the examples.

Each paper table/figure benchmark composes the same three steps: load a
pre-trained zoo model, quantize it under a set of weight/activation configs,
generate a seed-matched image set per config and score it against one or more
reference sets.  :mod:`repro.experiments.harness` packages those steps so
each ``benchmarks/test_*`` module stays a thin, readable declaration of the
experiment it regenerates.
"""

from .harness import (
    DEFAULT_BENCH_SETTINGS,
    BenchSettings,
    ExperimentRow,
    TableResult,
    run_config_experiment,
    run_quantization_table,
    run_sparsity_experiment,
)

__all__ = [
    "BenchSettings",
    "DEFAULT_BENCH_SETTINGS",
    "ExperimentRow",
    "TableResult",
    "run_config_experiment",
    "run_quantization_table",
    "run_sparsity_experiment",
]

"""Run suites, assemble ``BENCH_<suite>.json`` reports, render summaries.

The report is the machine-readable contract of the benchmarking subsystem:

* ``environment`` — a fingerprint of what produced the numbers (python,
  numpy, platform, CPU count) so reports from different machines are never
  silently conflated;
* ``workloads`` — per-workload median/p95/mean/min over outlier-trimmed
  samples, plus metadata (generation-plan and quantization-config
  fingerprints where applicable);
* ``speedups`` — one entry per registered pre/fast pair: the before/after
  delta every optimization in this subsystem is obligated to show up in;
* ``comparison`` — verdicts against a baseline report (see
  :mod:`repro.bench.compare`).
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import schemas
from ..core.hashing import content_hash
from ..tensor import backend_info
from .compare import CALIBRATION_WORKLOAD, compare_reports
from .registry import FAST_ARM, PRE_ARM, Workload, workloads_for_suite
from .timer import BenchTimer, Measurement

SCHEMA_VERSION = 1


def environment_fingerprint() -> Dict:
    """What hardware/software produced this report (content-hashed).

    Includes the active compute backend (and whether its native kernels
    compiled), so a report timed on the reference backend can never be
    compared against an accelerated baseline without the mismatch showing.
    """
    info = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "backend": backend_info(),
    }
    info["fingerprint"] = content_hash(info)
    return info


def run_suite(suite: str, timer: Optional[BenchTimer] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> List[Tuple[Workload, Measurement]]:
    """Execute every workload of ``suite``; returns measurements in order.

    The two arms of a pre/fast pair are measured with *interleaved* samples
    (:meth:`BenchTimer.measure_pair`) whenever both arms belong to the
    suite, so their speedup is insensitive to machine-speed drift between
    measurement windows.
    """
    workloads = workloads_for_suite(suite)
    if not workloads:
        raise ValueError(f"no workloads registered for suite '{suite}'")
    timer = timer or BenchTimer()
    partners: dict = {}
    pair_arms: dict = {}
    for workload in workloads:
        if workload.pair is not None:
            pair_arms.setdefault(workload.pair, {})[workload.arm] = workload
    for arms in pair_arms.values():
        if len(arms) == 2:
            first, second = arms.values()
            partners[first.name] = second
            partners[second.name] = first

    results: List[Tuple[Workload, Measurement]] = []
    done: set = set()
    for workload in workloads:
        if workload.name in done:
            continue
        partner = partners.get(workload.name)
        if partner is None:
            if progress is not None:
                progress(workload.name)
            fn, metadata = workload.build()
            measurement = timer.measure(fn, name=workload.name,
                                        warmup=workload.warmup,
                                        repeats=workload.repeats,
                                        metadata=metadata)
            results.append((workload, measurement))
            done.add(workload.name)
            continue
        if progress is not None:
            progress(f"{workload.name} + {partner.name} (interleaved)")
        fn, metadata = workload.build()
        partner_fn, partner_metadata = partner.build()
        measurement, partner_measurement = timer.measure_pair(
            fn, partner_fn, name_a=workload.name, name_b=partner.name,
            warmup=workload.warmup, repeats=workload.repeats,
            metadata_a=metadata, metadata_b=partner_metadata)
        results.append((workload, measurement))
        results.append((partner, partner_measurement))
        done.update((workload.name, partner.name))
    return results


def run_suite_merged(suite: str, runs: int = 1,
                     timer: Optional[BenchTimer] = None,
                     progress: Optional[Callable[[str], None]] = None
                     ) -> List[Tuple[Workload, Measurement]]:
    """Run the suite ``runs`` times and merge samples per workload.

    Machine speed drifts on the scale of whole suite executions; a baseline
    recorded from a single run inherits whatever window it happened to land
    in.  Merging the samples of several spaced runs centers each workload's
    median over the drift, which is how the committed baseline should be
    refreshed (``--runs 3 --update-baseline``).
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    merged: List[Tuple[Workload, Measurement]] = run_suite(
        suite, timer=timer, progress=progress)
    by_name = {measurement.name: measurement for _, measurement in merged}
    for _ in range(runs - 1):
        for _workload, measurement in run_suite(suite, timer=timer,
                                                progress=progress):
            by_name[measurement.name].samples.extend(measurement.samples)
    return merged


def confirm_regressions(results: List[Tuple[Workload, Measurement]],
                        suite: str, baseline: Dict, threshold: float,
                        normalize: bool, timer: Optional[BenchTimer] = None,
                        max_retries: int = 1,
                        progress: Optional[Callable[[str], None]] = None
                        ) -> Dict:
    """Build the report, re-measuring flagged workloads before failing.

    A single measurement window crossing the threshold can be machine
    noise (contention slows a window, never speeds it up); a *persistent*
    regression is not.  Whenever the comparison flags regressions, the
    flagged workloads (only those) are re-measured in a fresh window and
    the **better window wins** — the lower-median window is the less
    contended one and therefore the better estimate of the workload's true
    cost.  A genuine regression stays slow in every window and keeps its
    verdict; a one-off noisy window is displaced by a clean retry.
    """
    timer = timer or BenchTimer()
    report = build_report(suite, results, baseline=baseline,
                          threshold=threshold, normalize=normalize)
    by_name = {measurement.name: (workload, measurement)
               for workload, measurement in results}
    for _ in range(max_retries):
        regressions = report["comparison"]["regressions"]
        if not regressions:
            break
        for name in regressions:
            workload, measurement = by_name[name]
            if progress is not None:
                progress(f"{name} (confirming regression)")
            fn, _metadata = workload.build()
            confirm = timer.measure(fn, name=name, warmup=workload.warmup,
                                    repeats=workload.repeats)
            if confirm.median_s < measurement.median_s:
                measurement.samples[:] = confirm.samples
        report = build_report(suite, results, baseline=baseline,
                              threshold=threshold, normalize=normalize)
    return report


def _speedups(results: List[Tuple[Workload, Measurement]]) -> Dict:
    """Pair up pre/fast arms into before/after speedup entries."""
    arms: Dict[str, Dict[str, Measurement]] = {}
    for workload, measurement in results:
        if workload.pair is not None:
            arms.setdefault(workload.pair, {})[workload.arm] = measurement
    speedups: Dict[str, Dict] = {}
    for pair in sorted(arms):
        pre = arms[pair].get(PRE_ARM)
        fast = arms[pair].get(FAST_ARM)
        if pre is None or fast is None:
            continue
        speedups[pair] = {
            "pre_s": pre.median_s,
            "fast_s": fast.median_s,
            "speedup": pre.median_s / fast.median_s if fast.median_s > 0 else 0.0,
        }
        macs = fast.metadata.get("macs")
        if macs is not None:
            speedups[pair]["macs"] = macs
    return speedups


def build_report(suite: str, results: List[Tuple[Workload, Measurement]],
                 baseline: Optional[Dict] = None,
                 threshold: float = 0.25, normalize: bool = True) -> Dict:
    """Assemble the full ``BENCH_<suite>.json`` document."""
    report = {
        "schema": schemas.BENCH_REPORT,
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "environment": environment_fingerprint(),
        "workloads": {
            measurement.name: dict(measurement.to_dict(),
                                   suites=list(workload.suites),
                                   pair=workload.pair, arm=workload.arm)
            for workload, measurement in results
        },
        "speedups": _speedups(results),
    }
    report["comparison"] = compare_reports(report, baseline,
                                           threshold=threshold,
                                           normalize=normalize)
    return report


def write_report(report: Dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path) -> Dict:
    return json.loads(Path(path).read_text())


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f} ms"
    return f"{value * 1e6:.1f} us"


def markdown_summary(report: Dict) -> str:
    """Render the report as a markdown summary table (CI step summary)."""
    lines = [f"## Benchmark suite `{report['suite']}`", ""]
    comparison = report.get("comparison", {})
    status = comparison.get("status", "no-baseline")
    if status == "no-baseline":
        lines.append("_No baseline — reporting absolute numbers only._")
    else:
        scale = comparison.get("machine_scale", 1.0)
        lines.append(f"**Gate: {status.upper()}** (threshold "
                     f"{comparison.get('threshold', 0):.0%}, machine scale "
                     f"{scale:.2f}x"
                     f"{', normalized' if comparison.get('normalized') else ''})")
    lines.append("")
    lines.append("| workload | median | p95 | vs baseline | verdict |")
    lines.append("|---|---|---|---|---|")
    verdicts = comparison.get("verdicts", {})
    for name in sorted(report.get("workloads", {})):
        entry = report["workloads"][name]
        verdict = verdicts.get(name, {})
        ratio = verdict.get("ratio")
        ratio_text = f"{ratio:.2f}x" if ratio is not None else "-"
        label = verdict.get("verdict",
                            "calibration" if name == CALIBRATION_WORKLOAD
                            else "-")
        lines.append(f"| {name} | {_format_seconds(entry['median_s'])} "
                     f"| {_format_seconds(entry['p95_s'])} "
                     f"| {ratio_text} | {label} |")
    speedups = report.get("speedups", {})
    if speedups:
        lines += ["", "### Optimization deltas (pre vs fast path)", "",
                  "| pair | pre | fast | speedup | MACs |",
                  "|---|---|---|---|---|"]
        for pair in sorted(speedups):
            entry = speedups[pair]
            macs = entry.get("macs")
            macs_text = f"{macs / 1e6:.1f}M" if macs is not None else "-"
            lines.append(f"| {pair} | {_format_seconds(entry['pre_s'])} "
                         f"| {_format_seconds(entry['fast_s'])} "
                         f"| {entry['speedup']:.2f}x | {macs_text} |")
    return "\n".join(lines) + "\n"

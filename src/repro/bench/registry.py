"""Workload registry: named benchmark workloads grouped into suites.

A workload is a *setup function* returning the callable to time (plus
optional metadata).  Setup runs once per benchmark run, outside the timed
region, so model construction, quantization and calibration never pollute
the samples.  Workloads declare which suites they belong to (``ci`` is
what the CI perf gate runs; ``micro``/``macro`` slice it by granularity;
``full`` is everything) and optionally pair up as the two *arms* of a
before/after
comparison: ``pair="sampler_loop.ddim", arm="pre"`` and ``arm="fast"``
produce a speedup entry in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: The timed callable, or (timed callable, metadata dict).
SetupFn = Callable[[], object]

PRE_ARM = "pre"
FAST_ARM = "fast"


@dataclass
class Workload:
    """One registered benchmark workload."""

    name: str
    setup: SetupFn
    suites: Tuple[str, ...] = ("full",)
    #: Base name of a before/after comparison this workload is one arm of.
    pair: Optional[str] = None
    #: "pre" (the unoptimized reference arm) or "fast" (the shipped path).
    arm: Optional[str] = None
    repeats: Optional[int] = None        # per-workload override
    warmup: Optional[int] = None
    metadata: Dict = field(default_factory=dict)

    def build(self) -> Tuple[Callable[[], object], Dict]:
        """Run setup; returns ``(timed_callable, metadata)``."""
        built = self.setup()
        if isinstance(built, tuple):
            fn, extra = built
            metadata = {**self.metadata, **extra}
        else:
            fn, metadata = built, dict(self.metadata)
        return fn, metadata


WORKLOAD_REGISTRY: Dict[str, Workload] = {}


def register_workload(name: str, setup: SetupFn,
                      suites: Tuple[str, ...] = ("full",),
                      pair: Optional[str] = None, arm: Optional[str] = None,
                      repeats: Optional[int] = None,
                      warmup: Optional[int] = None,
                      metadata: Optional[Dict] = None,
                      override: bool = False) -> Workload:
    """Register a workload under ``name``; duplicate names raise."""
    if not name:
        raise ValueError("workload name must be non-empty")
    if name in WORKLOAD_REGISTRY and not override:
        raise ValueError(f"workload '{name}' is already registered; "
                         "pass override=True to replace it")
    if (pair is None) != (arm is None):
        raise ValueError("pair and arm must be given together")
    if arm is not None and arm not in (PRE_ARM, FAST_ARM):
        raise ValueError(f"arm must be '{PRE_ARM}' or '{FAST_ARM}', got {arm!r}")
    workload = Workload(name=name, setup=setup, suites=tuple(suites),
                        pair=pair, arm=arm, repeats=repeats, warmup=warmup,
                        metadata=dict(metadata or {}))
    WORKLOAD_REGISTRY[name] = workload
    return workload


def bench_workload(name: str, suites: Tuple[str, ...] = ("full",), **kwargs):
    """Decorator form of :func:`register_workload` for setup functions."""
    def decorate(setup: SetupFn) -> SetupFn:
        register_workload(name, setup, suites=suites, **kwargs)
        return setup
    return decorate


def unregister_workload(name: str) -> None:
    """Remove a workload (mainly for tests)."""
    WORKLOAD_REGISTRY.pop(name, None)


def workloads_for_suite(suite: str) -> List[Workload]:
    """All workloads belonging to ``suite``, in registration order."""
    return [w for w in WORKLOAD_REGISTRY.values() if suite in w.suites]


def available_suites() -> Tuple[str, ...]:
    suites = set()
    for workload in WORKLOAD_REGISTRY.values():
        suites.update(workload.suites)
    return tuple(sorted(suites))

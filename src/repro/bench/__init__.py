"""Continuous benchmarking subsystem: ``python -m repro.bench --suite ci``.

Micro (tensor ops, kernels, quantize/dequantize) and macro (sampler
trajectories, quantized forwards, end-to-end serving) workloads behind a
registry, timed with warmup/repetition/outlier trimming, reported as
``BENCH_<suite>.json`` with an environment fingerprint, pre/fast speedup
deltas and baseline-comparison verdicts.  The CI ``perf-regression`` job
runs the ``ci`` suite against the committed baseline in
``benchmarks/baselines/bench_baseline.json`` and fails on >25% median
regressions.
"""

from .compare import (
    CALIBRATION_WORKLOAD,
    DEFAULT_THRESHOLD,
    VERDICT_IMPROVED,
    VERDICT_MISSING,
    VERDICT_NEW,
    VERDICT_PASS,
    VERDICT_REGRESSION,
    compare_reports,
)
from .registry import (
    FAST_ARM,
    PRE_ARM,
    WORKLOAD_REGISTRY,
    Workload,
    available_suites,
    bench_workload,
    register_workload,
    unregister_workload,
    workloads_for_suite,
)
from .reporter import (
    SCHEMA_VERSION,
    build_report,
    confirm_regressions,
    environment_fingerprint,
    load_report,
    markdown_summary,
    run_suite,
    run_suite_merged,
    write_report,
)
from .timer import BenchTimer, Measurement

__all__ = [
    "BenchTimer", "Measurement",
    "Workload", "WORKLOAD_REGISTRY", "register_workload", "bench_workload",
    "unregister_workload", "workloads_for_suite", "available_suites",
    "PRE_ARM", "FAST_ARM",
    "run_suite", "run_suite_merged", "build_report", "confirm_regressions",
    "write_report", "load_report",
    "markdown_summary", "environment_fingerprint", "SCHEMA_VERSION",
    "compare_reports", "CALIBRATION_WORKLOAD", "DEFAULT_THRESHOLD",
    "VERDICT_PASS", "VERDICT_REGRESSION", "VERDICT_IMPROVED",
    "VERDICT_NEW", "VERDICT_MISSING",
]

"""Baseline comparison: per-workload verdicts with a regression threshold.

A committed baseline (``benchmarks/baselines/bench_baseline.json``) was
recorded on *some* machine; the current run executes on another.  Raw
medians are therefore normalized before comparing: the machine-speed scale
is the **median of the per-workload current/baseline ratios** (the
``calibration.reference`` anchor votes like any other workload).  A
uniformly slower machine moves every ratio by the same factor, which the
median absorbs, while a genuine regression stands out against the pack of
unregressed workloads.  The deliberate trade-off: a change that slows
*most* workloads by a similar factor is indistinguishable from a slower
machine — which is why the report also carries the pre/fast ``speedups``
block, an absolute same-run guard on the optimized paths, and why
``--no-normalize`` exists for same-machine comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Machine-speed anchor (a fixed numpy matmul loop, independent of repo
#: code); participates in the scale estimate but never gets a verdict.
CALIBRATION_WORKLOAD = "calibration.reference"

VERDICT_PASS = "pass"
VERDICT_REGRESSION = "regression"
VERDICT_IMPROVED = "improved"
VERDICT_NEW = "new"
VERDICT_MISSING = "missing"

DEFAULT_THRESHOLD = 0.25


def _median(report: Dict, name: str) -> Optional[float]:
    entry = report.get("workloads", {}).get(name)
    if entry is None:
        return None
    return float(entry["median_s"])


def compare_reports(current: Dict, baseline: Optional[Dict],
                    threshold: float = DEFAULT_THRESHOLD,
                    normalize: bool = True) -> Dict:
    """Build the ``comparison`` block of a benchmark report.

    ``threshold`` is the tolerated fractional slowdown: with the default
    0.25, a workload regresses when its (normalized) median exceeds the
    baseline's by more than 25%.  Symmetric improvements are labeled
    ``improved``; workloads present on only one side get ``new`` /
    ``missing`` and never fail the gate.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if baseline is None:
        return {"status": "no-baseline", "threshold": threshold,
                "normalized": False, "verdicts": {}, "regressions": []}

    scale = 1.0
    normalized = False
    if normalize:
        ratios: List[float] = []
        for name, entry in current.get("workloads", {}).items():
            base_median = _median(baseline, name)
            if base_median:
                ratios.append(float(entry["median_s"]) / base_median)
        if ratios:
            # Multiplying baseline medians by this factor re-expresses them
            # in the current machine's time units.
            ordered = sorted(ratios)
            middle = len(ordered) // 2
            scale = (ordered[middle] if len(ordered) % 2
                     else 0.5 * (ordered[middle - 1] + ordered[middle]))
            normalized = True

    verdicts: Dict[str, Dict] = {}
    regressions = []
    for name, entry in current.get("workloads", {}).items():
        if name == CALIBRATION_WORKLOAD:
            continue
        base_median = _median(baseline, name)
        if base_median is None:
            verdicts[name] = {"verdict": VERDICT_NEW,
                              "median_s": float(entry["median_s"])}
            continue
        expected = base_median * scale
        ratio = float(entry["median_s"]) / expected if expected > 0 else 1.0
        if ratio > 1.0 + threshold:
            verdict = VERDICT_REGRESSION
            regressions.append(name)
        elif ratio < 1.0 - threshold:
            verdict = VERDICT_IMPROVED
        else:
            verdict = VERDICT_PASS
        verdicts[name] = {
            "verdict": verdict,
            "median_s": float(entry["median_s"]),
            "baseline_median_s": base_median,
            "expected_s": expected,
            "ratio": ratio,
        }
    for name in baseline.get("workloads", {}):
        if name != CALIBRATION_WORKLOAD and name not in verdicts:
            verdicts[name] = {"verdict": VERDICT_MISSING}

    return {
        "status": "regression" if regressions else "pass",
        "threshold": threshold,
        "normalized": normalized,
        "machine_scale": scale,
        "verdicts": verdicts,
        "regressions": sorted(regressions),
    }

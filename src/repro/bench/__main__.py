"""CLI for the benchmarking subsystem.

Examples::

    PYTHONPATH=src python -m repro.bench --suite ci
    PYTHONPATH=src python -m repro.bench --suite ci \\
        --baseline benchmarks/baselines/bench_baseline.json --threshold 0.25
    PYTHONPATH=src python -m repro.bench --suite ci --update-baseline

Writes ``BENCH_<suite>.json`` (override with ``--output``), prints a
markdown summary (also appended to ``$GITHUB_STEP_SUMMARY`` when set, so CI
surfaces the table on the run page), and exits non-zero when any workload
regresses more than the threshold against the baseline.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from . import workloads  # noqa: F401  (registers the built-in workloads)
from .compare import DEFAULT_THRESHOLD
from .registry import available_suites, workloads_for_suite
from .reporter import (
    build_report,
    confirm_regressions,
    load_report,
    markdown_summary,
    run_suite_merged,
    write_report,
)
from .timer import BenchTimer

DEFAULT_BASELINE = Path("benchmarks/baselines/bench_baseline.json")


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run a benchmark suite and write BENCH_<suite>.json.")
    parser.add_argument("--suite", default="ci",
                        help="suite to run (default: ci; see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list suites and their workloads, then exit")
    parser.add_argument("--output", type=Path, default=None,
                        help="report path (default: BENCH_<suite>.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline report to compare against "
                             f"(default: {DEFAULT_BASELINE} when it exists)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="tolerated fractional median regression "
                             "(default: 0.25)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw medians instead of "
                             "calibration-normalized ones")
    parser.add_argument("--no-fail", action="store_true",
                        help="exit 0 even when regressions are found")
    parser.add_argument("--update-baseline", action="store_true",
                        help=f"also write the report to {DEFAULT_BASELINE}")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override the default sample count per workload")
    parser.add_argument("--warmup", type=int, default=None,
                        help="override the default warmup calls per workload")
    parser.add_argument("--runs", type=int, default=1,
                        help="execute the suite N times and merge samples "
                             "(use --runs 3 when refreshing the baseline)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="fresh re-measurement windows a flagged "
                             "workload gets before its regression verdict "
                             "stands (default: 2)")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])

    if args.list:
        for suite in available_suites():
            print(f"{suite}:")
            for workload in workloads_for_suite(suite):
                print(f"  {workload.name}")
        return 0

    timer_kwargs = {}
    if args.repeats is not None:
        timer_kwargs["repeats"] = args.repeats
    if args.warmup is not None:
        timer_kwargs["warmup"] = args.warmup
    timer = BenchTimer(**timer_kwargs)

    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE
    if baseline_path is not None:
        baseline = load_report(baseline_path)

    progress = lambda name: print(f"  bench {name} ...", file=sys.stderr)
    results = run_suite_merged(args.suite, runs=args.runs, timer=timer,
                               progress=progress)
    if baseline is not None:
        # Flagged workloads get re-measured in a fresh window before a
        # regression verdict stands (one noisy window must not fail CI).
        report = confirm_regressions(results, args.suite, baseline,
                                     threshold=args.threshold,
                                     normalize=not args.no_normalize,
                                     timer=timer,
                                     max_retries=args.max_retries,
                                     progress=progress)
    else:
        report = build_report(args.suite, results, baseline=None,
                              threshold=args.threshold,
                              normalize=not args.no_normalize)
    if baseline_path is not None:
        report["comparison"]["baseline_path"] = str(baseline_path)

    output = args.output or Path(f"BENCH_{args.suite}.json")
    write_report(report, output)
    print(f"wrote {output}", file=sys.stderr)
    if args.update_baseline:
        # The baseline is a reference measurement; its comparison against
        # the *previous* baseline is meaningless to future readers.
        baseline_copy = {key: value for key, value in report.items()
                         if key != "comparison"}
        write_report(baseline_copy, DEFAULT_BASELINE)
        print(f"updated baseline {DEFAULT_BASELINE}", file=sys.stderr)

    summary = markdown_summary(report)
    print(summary)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as handle:
            handle.write(summary)

    status = report["comparison"]["status"]
    if status == "regression":
        regressions = ", ".join(report["comparison"]["regressions"])
        print(f"perf regression(s): {regressions}", file=sys.stderr)
        return 0 if args.no_fail else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark timer: warmup, repetition, outlier trimming, injectable clock.

Timing on a shared machine is noisy in exactly one direction — a sample can
only be *slowed down* by interference (GC pauses, scheduler preemption,
cache pollution), never sped up.  The timer therefore runs ``warmup``
untimed calls (JIT-free here, but they populate im2col workspaces, memoized
dequantizations and other caches the steady state enjoys), takes ``repeats``
timed samples, and drops the slowest ``trim_fraction`` of them before
computing the summary statistics.  The clock is injectable so tests can
drive the whole machinery deterministically.
"""

from __future__ import annotations

import gc
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Measurement:
    """Timing samples for one workload plus their trimmed summary."""

    name: str
    samples: List[float]                 # raw per-repetition seconds
    warmup: int
    trim_fraction: float = 0.2
    #: Optional per-workload annotations (plan/config fingerprints, sizes).
    metadata: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def trimmed_samples(self) -> List[float]:
        """Samples with the slowest ``trim_fraction`` dropped (>= 1 kept)."""
        ordered = sorted(self.samples)
        keep = max(1, len(ordered) - math.floor(len(ordered) * self.trim_fraction))
        return ordered[:keep]

    @property
    def trimmed(self) -> int:
        return len(self.samples) - len(self.trimmed_samples)

    # ------------------------------------------------------------------
    @staticmethod
    def _percentile(ordered: List[float], q: float) -> float:
        """Linear-interpolation percentile of an already-sorted list."""
        if not ordered:
            return 0.0
        if len(ordered) == 1:
            return ordered[0]
        position = (len(ordered) - 1) * q / 100.0
        low = math.floor(position)
        high = min(low + 1, len(ordered) - 1)
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    @property
    def median_s(self) -> float:
        return self._percentile(self.trimmed_samples, 50.0)

    @property
    def p95_s(self) -> float:
        return self._percentile(self.trimmed_samples, 95.0)

    @property
    def mean_s(self) -> float:
        kept = self.trimmed_samples
        return sum(kept) / len(kept) if kept else 0.0

    @property
    def min_s(self) -> float:
        return min(self.samples) if self.samples else 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "median_s": self.median_s,
            "p95_s": self.p95_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "repeats": len(self.samples),
            "warmup": self.warmup,
            "trimmed": self.trimmed,
            "samples_s": list(self.samples),
            "metadata": dict(self.metadata),
        }


class BenchTimer:
    """Measures callables with warmup, repetition and outlier trimming."""

    def __init__(self, warmup: int = 1, repeats: int = 7,
                 trim_fraction: float = 0.2,
                 clock: Callable[[], float] = time.perf_counter):
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if not 0.0 <= trim_fraction < 1.0:
            raise ValueError(
                f"trim_fraction must be in [0, 1), got {trim_fraction}")
        self.warmup = warmup
        self.repeats = repeats
        self.trim_fraction = trim_fraction
        self.clock = clock

    def measure(self, fn: Callable[[], object], name: str = "",
                warmup: Optional[int] = None, repeats: Optional[int] = None,
                metadata: Optional[Dict] = None) -> Measurement:
        """Time ``fn`` and return its :class:`Measurement`."""
        warmup = self.warmup if warmup is None else warmup
        repeats = self.repeats if repeats is None else repeats
        for _ in range(warmup):
            fn()
        samples: List[float] = []
        # Collect leftovers from setup/warmup, then keep the collector out
        # of the timed region: one workload's garbage (e.g. a graph-building
        # reference arm) must not be charged to whichever sample the cycle
        # collector happens to fire in.
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                started = self.clock()
                fn()
                samples.append(self.clock() - started)
        finally:
            if gc_was_enabled:
                gc.enable()
        return Measurement(name=name, samples=samples, warmup=warmup,
                           trim_fraction=self.trim_fraction,
                           metadata=dict(metadata or {}))

    def measure_pair(self, fn_a: Callable[[], object],
                     fn_b: Callable[[], object],
                     name_a: str = "", name_b: str = "",
                     warmup: Optional[int] = None,
                     repeats: Optional[int] = None,
                     metadata_a: Optional[Dict] = None,
                     metadata_b: Optional[Dict] = None
                     ) -> "tuple[Measurement, Measurement]":
        """Time two callables with interleaved samples (a, b, a, b, ...).

        Machine speed drifts over seconds (frequency scaling, co-tenants);
        two arms of a before/after comparison measured in separate
        contiguous windows would each see *different* drift and their ratio
        would absorb it.  Interleaving exposes both arms to the same
        conditions, which is what makes the reported speedups stable.
        """
        warmup = self.warmup if warmup is None else warmup
        repeats = self.repeats if repeats is None else repeats
        for _ in range(warmup):
            fn_a()
            fn_b()
        samples_a: List[float] = []
        samples_b: List[float] = []
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                started = self.clock()
                fn_a()
                samples_a.append(self.clock() - started)
                started = self.clock()
                fn_b()
                samples_b.append(self.clock() - started)
        finally:
            if gc_was_enabled:
                gc.enable()
        return (
            Measurement(name=name_a, samples=samples_a, warmup=warmup,
                        trim_fraction=self.trim_fraction,
                        metadata=dict(metadata_a or {})),
            Measurement(name=name_b, samples=samples_b, warmup=warmup,
                        trim_fraction=self.trim_fraction,
                        metadata=dict(metadata_b or {})),
        )

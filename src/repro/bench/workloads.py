"""The built-in benchmark workloads.

Workloads are registered at import time and built lazily: every setup
function constructs its models/arrays on first use (outside the timed
region) and returns the callable the timer samples.

Coverage matches what the serving stack actually executes:

* ``tensor.*`` / ``kernel.*`` — micro benchmarks of the autograd engine's
  hot primitives (elementwise chains, matmul, im2col convolution,
  attention), each measured on the graph-building path and the
  inference fast path.
* ``quant.<scheme>.*`` — quantize (and packed dequantize) throughput per
  registered quantization scheme.
* ``sampler_loop.<plan>`` — one full sampler trajectory per registered
  solver, as a ``pre``/``fast`` pair: the *pre* arm replays the pre-PR
  execution (grad-enabled model, allocation-per-step update math), the
  *fast* arm is the shipped path (``inference_mode`` + buffer reuse).
  Workload metadata carries the :class:`~repro.diffusion.GenerationPlan`
  fingerprint, so bench rows and experiment-store generate stages describing
  the same trajectory share an identity.
* ``qforward.<scheme>`` — one U-Net forward at serving precision, paired
  against full precision: the *pre* arm runs the FP32 model, the *fast*
  arm runs the quantized model with packed weights on the accelerated
  backend, where the deep layers dispatch straight to the fused
  dequantize-GEMM kernels.  Metadata carries the
  :class:`~repro.core.QuantizationConfig` fingerprint and the MAC count
  of one forward.
* ``serving.throughput`` — end-to-end dynamic-batched serving of a small
  deterministic workload through the real engine.
* ``calibration.reference`` — a fixed numpy matmul loop used to normalize
  medians across machines when comparing against a committed baseline.

Both arms of every pair are verified at setup time, so a reported speedup
can never come from computing less: arms that compute the same thing must
be bit-identical, and the ``qforward`` pairs — whose arms legitimately
differ by quantization error — are checked against the reference backend
within the accelerated kernels' documented tolerance instead.
"""

from __future__ import annotations

import copy
from functools import lru_cache

import numpy as np

from ..core import QuantizationConfig, quantize_pipeline
from ..core.qmodules import PackedIntWeight
from ..diffusion import DiffusionPipeline, GenerationPlan
from ..models import DiffusionModel, ModelSpec, UNetConfig
from ..tensor import Tensor, count_macs, inference_mode, use_backend
from ..tensor import functional as F
from .registry import FAST_ARM, PRE_ARM, register_workload

#: Suite membership: ``ci`` is the gate suite the perf-regression job runs
#: (currently every built-in workload — micro and macro are its slices for
#: targeted local runs; all of it finishes in seconds at bench scale).
_MICRO = ("ci", "micro", "full")
_MACRO = ("ci", "macro", "full")


# ----------------------------------------------------------------------
# shared fixtures (built once per process, outside the timed region)
# ----------------------------------------------------------------------
def _bench_spec(name: str = "bench-tiny", task: str = "unconditional") -> ModelSpec:
    """The bench model: deliberately small so fixed per-op overhead (graph
    construction, allocations) is a visible fraction of a forward — that
    overhead is exactly what the inference fast path removes."""
    context = 16 if task == "text-to-image" else None
    return ModelSpec(
        name=name, task=task, image_size=8, image_channels=3,
        latent=False, latent_channels=4, latent_downsample=4,
        unet=UNetConfig(
            in_channels=3, out_channels=3, base_channels=8,
            channel_multipliers=(1, 2), num_res_blocks=1,
            attention_levels=(1,), num_heads=2, context_dim=context),
        text_embed_dim=context, train_timesteps=8, default_sampling_steps=4,
        seed=3)


@lru_cache(maxsize=None)
def _bench_model() -> DiffusionModel:
    return DiffusionModel(_bench_spec(), rng=np.random.default_rng(17))


@lru_cache(maxsize=None)
def _bench_pipeline() -> DiffusionPipeline:
    return DiffusionPipeline(_bench_model(), num_steps=4)


def _quantization_config(scheme: str) -> QuantizationConfig:
    return QuantizationConfig(weight_dtype=scheme, activation_dtype="int8",
                              rounding_learning=False).scaled_for_speed()


def _weight_array(size: int = 16384) -> np.ndarray:
    # Sized so the float64 temporaries of a quantize pass stay cache
    # resident: keeps the workload compute-bound instead of riding the
    # machine's (noisy, co-tenant-dependent) memory bandwidth.
    rng = np.random.default_rng(9)
    return (rng.standard_normal(size).astype(np.float32) * 0.05).reshape(64, -1)


# ----------------------------------------------------------------------
# calibration reference (machine-speed normalization anchor)
# ----------------------------------------------------------------------
def _setup_calibration():
    rng = np.random.default_rng(3)
    a = rng.standard_normal((256, 256)).astype(np.float32)
    b = rng.standard_normal((256, 256)).astype(np.float32)

    def run():
        out = a
        for _ in range(8):
            out = out @ b
        return out

    return run, {"role": "calibration"}


register_workload("calibration.reference", _setup_calibration,
                  suites=("ci", "micro", "macro", "full"), repeats=9)


# ----------------------------------------------------------------------
# tensor-op micro benchmarks
# ----------------------------------------------------------------------
def _setup_tensor_elementwise():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 64, 64)).astype(np.float32))

    def run():
        with inference_mode():
            for _ in range(12):
                out = x * 2.0 + 1.0
                out = out.silu()
                out = (out - 0.5) * out.sigmoid()
                out = out.sum()
            return out

    return run


def _setup_tensor_matmul():
    rng = np.random.default_rng(1)
    a = Tensor(rng.standard_normal((16, 96, 96)).astype(np.float32))
    b = Tensor(rng.standard_normal((16, 96, 96)).astype(np.float32))

    def run():
        with inference_mode():
            for _ in range(6):
                out = a.matmul(b)
            return out

    return run


def _setup_tensor_softmax():
    rng = np.random.default_rng(2)
    x = Tensor(rng.standard_normal((32, 128, 128)).astype(np.float32))

    def run():
        with inference_mode():
            return x.softmax(axis=-1)

    return run


register_workload("tensor.elementwise", _setup_tensor_elementwise, suites=_MICRO)
register_workload("tensor.matmul", _setup_tensor_matmul, suites=_MICRO)
register_workload("tensor.softmax", _setup_tensor_softmax, suites=_MICRO)


# ----------------------------------------------------------------------
# kernel benchmarks: conv and attention, graph path vs inference path
# ----------------------------------------------------------------------
def _conv_fixture():
    # U-Net-block-sized conv: small enough that the im2col/pad allocations
    # and graph bookkeeping are a visible fraction of the BLAS time.
    rng = np.random.default_rng(4)
    x = rng.standard_normal((2, 8, 16, 16)).astype(np.float32)
    weight = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
    bias = rng.standard_normal((16,)).astype(np.float32)
    return x, weight, bias


def _setup_conv_grad():
    x, weight, bias = _conv_fixture()
    weight_t = Tensor(weight, requires_grad=True)
    bias_t = Tensor(bias, requires_grad=True)

    def run():
        for _ in range(8):
            out = F.conv2d(Tensor(x), weight_t, bias_t, stride=1, padding=1)
        return out

    return run


def _setup_conv_inference():
    x, weight, bias = _conv_fixture()
    weight_t = Tensor(weight)
    bias_t = Tensor(bias)

    def run():
        with inference_mode():
            for _ in range(8):
                out = F.conv2d(Tensor(x), weight_t, bias_t, stride=1, padding=1)
            return out

    return run


def _setup_attention():
    rng = np.random.default_rng(5)
    q = Tensor(rng.standard_normal((8, 64, 32)).astype(np.float32))
    k = Tensor(rng.standard_normal((8, 64, 32)).astype(np.float32))
    v = Tensor(rng.standard_normal((8, 64, 32)).astype(np.float32))

    def run():
        with inference_mode():
            for _ in range(8):
                out = F.scaled_dot_product_attention(q, k, v)
            return out

    return run


register_workload("kernel.conv2d.pre", _setup_conv_grad, suites=_MICRO,
                  pair="kernel.conv2d", arm=PRE_ARM)
register_workload("kernel.conv2d.fast", _setup_conv_inference, suites=_MICRO,
                  pair="kernel.conv2d", arm=FAST_ARM)
register_workload("kernel.attention", _setup_attention, suites=_MICRO)


# ----------------------------------------------------------------------
# quantize / dequantize per scheme
# ----------------------------------------------------------------------
def _setup_quantize(scheme_name: str):
    def setup():
        from ..core import get_scheme
        from ..core.quantizer import LayerQuantizationRecord
        from .. import nn

        values = _weight_array()
        layer = nn.Linear(values.shape[1], values.shape[0])
        layer.weight.data = values
        record = LayerQuantizationRecord(
            path="bench", layer_type="Linear", weight_format="FP32",
            activation_format="FP32", weight_mse=0.0)
        from ..core.calibration import CalibrationData
        _quantized, quantizer = get_scheme(scheme_name).quantize_weights(
            layer, _quantization_config("int8"), CalibrationData(), "bench",
            record)

        def run():
            for _ in range(24):
                out = quantizer.quantize(values)
            return out

        return run, {"scheme": scheme_name, "elements": int(values.size),
                     "iterations": 24}

    return setup


def _setup_dequantize(scheme_name: str, bits: int):
    def setup():
        from ..core.integer import calibrate_int_format

        values = _weight_array()
        packed = PackedIntWeight.pack(values, calibrate_int_format(values, bits))

        def run():
            for _ in range(80):
                packed.drop_dequantized()
                out = packed.dequantize()
            return out

        return run, {"scheme": scheme_name, "elements": int(values.size),
                     "packed_bytes": packed.nbytes, "iterations": 80}

    return setup


for _scheme in ("fp8", "fp4", "int8", "int4", "int8_pc", "fp4_block"):
    register_workload(f"quant.{_scheme}.quantize", _setup_quantize(_scheme),
                      suites=_MICRO, repeats=9)
for _scheme, _bits in (("int8", 8), ("int4", 4)):
    register_workload(f"quant.{_scheme}.dequantize",
                      _setup_dequantize(_scheme, _bits), suites=_MICRO,
                      repeats=9)


# ----------------------------------------------------------------------
# sampler loops, pre (grad-enabled, allocating) vs fast (shipped path)
# ----------------------------------------------------------------------
_SAMPLER_PLANS = {
    "ddim": GenerationPlan(sampler="ddim", num_steps=4),
    "ddpm": GenerationPlan(sampler="ddpm"),
    "dpm2": GenerationPlan(sampler="dpm2", num_steps=4),
}
_SAMPLE_SHAPE = (1, 3, 8, 8)


def _legacy_ddim_step(x, eps, alpha_bar, alpha_bar_prev):
    x0_pred = (x - np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha_bar)
    direction = np.sqrt(max(1.0 - alpha_bar_prev, 0.0)) * eps
    return (np.sqrt(alpha_bar_prev) * x0_pred + direction).astype(np.float32)


def _legacy_sampler_loop(plan: GenerationPlan, model, schedule, noise):
    """The pre-PR trajectory: grad-enabled forwards, fresh arrays per step."""
    shape = noise.shape
    x = noise.copy()
    rng = np.random.default_rng(1)
    if plan.sampler == "ddpm":
        for t in reversed(range(schedule.num_timesteps)):
            t_batch = np.full((shape[0],), t, dtype=np.int64)
            eps = model(Tensor(x), t_batch, context=None).data
            alpha = schedule.alphas[t]
            alpha_bar = schedule.alphas_bar[t]
            beta = schedule.betas[t]
            mean = (x - beta / np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha)
            if t > 0:
                step_noise = rng.standard_normal(shape).astype(np.float32)
                x = mean + np.sqrt(beta) * step_noise
            else:
                x = mean
            x = x.astype(np.float32)
        return x
    sampler = plan.build_sampler(schedule, plan.num_steps)
    timesteps = sampler.timesteps
    for index, t in enumerate(timesteps):
        t_batch = np.full((shape[0],), t, dtype=np.int64)
        eps = model(Tensor(x), t_batch, context=None).data
        alpha_bar = schedule.alphas_bar[t]
        prev_t = timesteps[index + 1] if index + 1 < len(timesteps) else -1
        if plan.sampler == "dpm2" and prev_t >= 0:
            alpha_bar_prev = schedule.alphas_bar[prev_t]
            midpoint = _legacy_ddim_step(x, eps, alpha_bar, alpha_bar_prev)
            prev_batch = np.full((shape[0],), prev_t, dtype=np.int64)
            eps_prev = model(Tensor(midpoint), prev_batch, context=None).data
            eps = (0.5 * (eps + eps_prev)).astype(np.float32)
            x = _legacy_ddim_step(x, eps, alpha_bar, alpha_bar_prev)
        else:
            alpha_bar_prev = schedule.alphas_bar[prev_t] if prev_t >= 0 else 1.0
            x = _legacy_ddim_step(x, eps, alpha_bar, alpha_bar_prev)
    return x


def _setup_sampler(plan_name: str, arm: str):
    def setup():
        plan = _SAMPLER_PLANS[plan_name]
        pipeline = _bench_pipeline()
        model = _bench_model()
        noise = pipeline.initial_noise(_SAMPLE_SHAPE[0], seed=11)
        schedule = pipeline.schedule

        def run_fast():
            sampler = plan.build_sampler(schedule, pipeline.num_steps)
            return sampler.sample(model, _SAMPLE_SHAPE,
                                  np.random.default_rng(1),
                                  initial_noise=noise.copy())

        def run_pre():
            return _legacy_sampler_loop(plan, model, schedule, noise)

        # Both arms must compute the same trajectory — a speedup that came
        # from computing something else would be meaningless.  Verified in
        # one arm's setup only (run_suite always builds both arms of a
        # pair), so the two trajectories are not recomputed per arm.
        if arm == FAST_ARM and not np.array_equal(run_fast(), run_pre()):
            raise AssertionError(
                f"sampler arms diverged for plan {plan.describe()}")
        run = run_fast if arm == FAST_ARM else run_pre
        return run, {"plan": plan.to_dict(),
                     "plan_fingerprint": plan.fingerprint()}

    return setup


for _name in _SAMPLER_PLANS:
    register_workload(f"sampler_loop.{_name}.pre", _setup_sampler(_name, PRE_ARM),
                      suites=_MACRO, pair=f"sampler_loop.{_name}", arm=PRE_ARM,
                      repeats=9)
    register_workload(f"sampler_loop.{_name}.fast",
                      _setup_sampler(_name, FAST_ARM),
                      suites=_MACRO, pair=f"sampler_loop.{_name}", arm=FAST_ARM,
                      repeats=9)


# ----------------------------------------------------------------------
# quantized forward, pre (FP32 weights) vs fast (packed, fused kernels)
# ----------------------------------------------------------------------
def _qforward_spec() -> ModelSpec:
    """A bottom-heavy U-Net sized for the fused dequantize-GEMM kernels.

    The fused path pays off exactly where a layer's float weight spills
    the last-level cache while its GEMM stays skinny (M <= 8): the deepest
    U-Net level, where channels are wide and the spatial grid is 2x2.
    ``channel_multipliers=(1, 2, 8)`` concentrates nearly all of the
    ~170 MB of weights at that level, so the pair measures the weight-
    traffic win instead of drowning it in shallow high-resolution layers
    that both arms execute identically.
    """
    return ModelSpec(
        name="bench-qheavy", task="unconditional", image_size=8,
        image_channels=3, latent=False, latent_channels=4,
        latent_downsample=4,
        unet=UNetConfig(in_channels=3, out_channels=3, base_channels=64,
                        channel_multipliers=(1, 2, 8), num_res_blocks=1,
                        attention_levels=(2,), num_heads=4,
                        context_dim=None),
        text_embed_dim=None, train_timesteps=8, default_sampling_steps=4,
        seed=3)


@lru_cache(maxsize=None)
def _qforward_pipeline() -> DiffusionPipeline:
    model = DiffusionModel(_qforward_spec(), rng=np.random.default_rng(17))
    return DiffusionPipeline(model, num_steps=4)


@lru_cache(maxsize=None)
def _qforward_quantized(scheme: str) -> DiffusionPipeline:
    quantized, _report = quantize_pipeline(_qforward_pipeline(),
                                           _quantization_config(scheme))
    return quantized


def _setup_qforward(scheme: str, arm: str):
    def setup():
        config = _quantization_config(scheme)
        pipeline = _qforward_pipeline()
        x = pipeline.initial_noise(1, seed=7)
        t_batch = np.full((1,), 3, dtype=np.int64)
        fp32_model = pipeline.model
        quantized_model = _qforward_quantized(scheme).model

        def run_pre():
            with inference_mode():
                return fp32_model(Tensor(x), t_batch).data

        def run_fast():
            with inference_mode(), use_backend("accelerated"):
                return quantized_model(Tensor(x), t_batch).data

        metadata = {"scheme": scheme,
                    "config_fingerprint": config.fingerprint()}
        # Verified in one arm's setup only; see _setup_sampler.  The two
        # arms legitimately differ (by quantization error), so the
        # bit-identity check the other pairs use does not apply; instead
        # the fast arm must match the same quantized model on the
        # reference backend within the fused kernels' documented
        # tolerance.  The verification forward also yields the pair's MAC
        # count for the report.
        if arm == FAST_ARM:
            with inference_mode():
                reference_out = quantized_model(Tensor(x), t_batch).data
            with count_macs() as mac_counter:
                accelerated_out = run_fast()
            if not np.all(np.isfinite(accelerated_out)):
                raise AssertionError(
                    f"qforward.{scheme} produced non-finite values on the "
                    f"accelerated backend")
            scale = max(float(np.max(np.abs(reference_out))), 1.0)
            if not np.allclose(accelerated_out, reference_out,
                               rtol=1e-3, atol=1e-3 * scale):
                raise AssertionError(
                    f"qforward.{scheme} diverged between the accelerated "
                    f"and reference backends beyond tolerance")
            metadata["macs"] = mac_counter.macs
        run = run_fast if arm == FAST_ARM else run_pre
        return run, metadata

    return setup


for _scheme in ("int8", "int4"):
    register_workload(f"qforward.{_scheme}.pre", _setup_qforward(_scheme, PRE_ARM),
                      suites=_MACRO, pair=f"qforward.{_scheme}", arm=PRE_ARM,
                      repeats=9)
    register_workload(f"qforward.{_scheme}.fast",
                      _setup_qforward(_scheme, FAST_ARM),
                      suites=_MACRO, pair=f"qforward.{_scheme}", arm=FAST_ARM,
                      repeats=9)


# ----------------------------------------------------------------------
# end-to-end serving throughput
# ----------------------------------------------------------------------
def _setup_serving():
    from ..serving import (
        EngineConfig,
        ModelVariantPool,
        ServingEngine,
        SLORouter,
        WorkloadConfig,
        generate_workload,
    )

    spec = _bench_spec(name="stable-diffusion", task="text-to-image")
    model = DiffusionModel(spec, rng=np.random.default_rng(23))
    pipeline = DiffusionPipeline(model, num_steps=4)
    requests = generate_workload(WorkloadConfig(
        num_requests=12, models=("stable-diffusion",), num_steps=4,
        prompt_pool_size=4, popularity_skew=1.2, slo_tiers=(None,), seed=77))

    def run():
        pool = ModelVariantPool(builder=lambda _model, _scheme: pipeline)
        engine = ServingEngine(pool, router=SLORouter(),
                               config=EngineConfig(max_batch_size=8))
        pool.warm([("stable-diffusion", "fp32")])
        responses = engine.serve([copy.copy(r) for r in requests])
        if len(responses) != len(requests):
            raise AssertionError("serving bench dropped requests")
        return responses

    return run, {"num_requests": len(requests), "num_steps": 4,
                 "max_batch_size": 8}


register_workload("serving.throughput", _setup_serving, suites=_MACRO,
                  repeats=5)


# ----------------------------------------------------------------------
# cluster simulator throughput (events/second of the discrete-event loop)
# ----------------------------------------------------------------------
def _setup_cluster_sim():
    from ..serving.cluster import (
        ClusterConfig,
        ClusterSimulation,
        TraceConfig,
        generate_trace,
    )

    trace = generate_trace(TraceConfig(num_requests=2000, seed=13))

    def run():
        report = ClusterSimulation(
            ClusterConfig(initial_replicas=3, policy="affinity")).run(trace)
        if report["requests"]["offered"] != 2000:
            raise AssertionError("cluster sim dropped arrivals")
        return report

    return run, {"num_requests": len(trace), "replicas": 3,
                 "policy": "affinity"}


register_workload("cluster.sim", _setup_cluster_sim, suites=_MACRO,
                  repeats=5)


# ----------------------------------------------------------------------
# telemetry overhead: traced sampler loop (pre) vs tracer disabled (fast)
# ----------------------------------------------------------------------
def _setup_telemetry(arm: str):
    def setup():
        from ..obs import Tracer

        plan = _SAMPLER_PLANS["ddim"]
        pipeline = _bench_pipeline()
        model = _bench_model()
        noise = pipeline.initial_noise(_SAMPLE_SHAPE[0], seed=11)
        schedule = pipeline.schedule
        tracer = Tracer()

        def run_traced():
            tracer.clear()
            sampler = plan.build_sampler(schedule, pipeline.num_steps)
            return sampler.sample(model, _SAMPLE_SHAPE,
                                  np.random.default_rng(1),
                                  initial_noise=noise.copy(),
                                  tracer=tracer,
                                  step_attrs={"workload": "telemetry"})

        def run_untraced():
            sampler = plan.build_sampler(schedule, pipeline.num_steps)
            return sampler.sample(model, _SAMPLE_SHAPE,
                                  np.random.default_rng(1),
                                  initial_noise=noise.copy())

        # Tracing must never change the trajectory; the pair exists to
        # price the per-step span bookkeeping, not a different answer.
        if arm == FAST_ARM and not np.array_equal(run_traced(),
                                                  run_untraced()):
            raise AssertionError("tracing changed the sampler trajectory")
        run = run_traced if arm == PRE_ARM else run_untraced
        return run, {"plan": plan.to_dict(), "traced": arm == PRE_ARM}

    return setup


register_workload("telemetry.overhead.pre", _setup_telemetry(PRE_ARM),
                  suites=_MACRO, pair="telemetry.overhead", arm=PRE_ARM,
                  repeats=9)
register_workload("telemetry.overhead.fast", _setup_telemetry(FAST_ARM),
                  suites=_MACRO, pair="telemetry.overhead", arm=FAST_ARM,
                  repeats=9)


# ----------------------------------------------------------------------
# static analysis: cold fact cache (pre) vs warm content-addressed cache
# ----------------------------------------------------------------------
def _setup_analysis(arm: str):
    def setup():
        import shutil
        import tempfile
        from pathlib import Path

        from ..analysis.cache import FactCache
        from ..analysis.config import AnalysisConfig
        from ..analysis.project import Project
        from ..analysis.registry import run_analysis

        src_root = Path(__file__).resolve().parents[2]  # .../src
        config = AnalysisConfig()
        cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-analysis-"))

        def analyze(cold: bool):
            if cold:
                shutil.rmtree(cache_dir, ignore_errors=True)
            cache = FactCache(cache_dir,
                              config_fingerprint=config.fingerprint())
            project = Project.load([src_root],
                                   defer_parse_for=cache.cached_hashes())
            run = run_analysis(project, config, cache=cache)
            return sorted(f.identity() for f in run.findings)

        def run_cold():
            return analyze(cold=True)

        def run_warm():
            return analyze(cold=False)

        # Both arms must report the identical finding set: the warm arm
        # may only skip work, never skip findings.  run_cold() also leaves
        # the cache populated, so the timed warm runs start warm.
        if arm == FAST_ARM and run_cold() != run_warm():
            raise AssertionError("cached analysis changed the findings")
        run = run_warm if arm == FAST_ARM else run_cold
        return run, {"root": str(src_root), "cached": arm == FAST_ARM}

    return setup


register_workload("analysis.full.pre", _setup_analysis(PRE_ARM),
                  suites=("ci", "full"), pair="analysis.full", arm=PRE_ARM,
                  repeats=3, warmup=1)
register_workload("analysis.full.fast", _setup_analysis(FAST_ARM),
                  suites=("ci", "full"), pair="analysis.full", arm=FAST_ARM,
                  repeats=3, warmup=1)

"""repro: reproduction of "Low-Bitwidth Floating Point Quantization for
Efficient High-Quality Diffusion Models" (IISWC 2024).

Subpackages
-----------
``repro.tensor``
    numpy-backed autograd engine (PyTorch substitute).
``repro.nn``
    neural-network layers, modules and optimizers.
``repro.models``
    U-Net / autoencoder / text-encoder architectures and named model specs.
``repro.diffusion``
    noise schedules, DDPM/DDIM samplers, generation pipelines, training.
``repro.zoo``
    deterministic "pre-trained" checkpoints for the named models.
``repro.data``
    synthetic datasets standing in for CIFAR-10, LSUN-Bedrooms and MS-COCO.
``repro.core``
    the paper's contribution: floating-point PTQ with per-tensor format
    search and gradient-based rounding learning, plus the integer baseline.
``repro.metrics``
    FID, sFID, Precision/Recall and a CLIP-score substitute.
``repro.profiling``
    analytic latency/memory characterization of the U-Net.
``repro.serving``
    dynamic-batching inference engine: request queue, model-variant pool,
    embedding cache and SLO-aware scheme routing.
"""

from . import (core, data, diffusion, metrics, models, nn, profiling,
               serving, tensor, zoo)

__version__ = "0.1.0"

__all__ = [
    "core", "data", "diffusion", "metrics", "models", "nn", "profiling",
    "serving", "tensor", "zoo", "__version__",
]

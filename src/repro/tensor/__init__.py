"""numpy-backed tensor and autograd engine used throughout the reproduction."""

from .tensor import (
    Tensor,
    concatenate,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
    stack,
    where,
)
from . import functional

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "functional",
]

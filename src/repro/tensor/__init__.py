"""numpy-backed tensor and autograd engine used throughout the reproduction."""

from .backend import (
    active_backend,
    backend_info,
    count_macs,
    get_backend,
    list_backends,
    set_backend,
    use_backend,
)
from .tensor import (
    Tensor,
    concatenate,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
    stack,
    where,
)
from . import functional

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "functional",
    "active_backend",
    "backend_info",
    "count_macs",
    "get_backend",
    "list_backends",
    "set_backend",
    "use_backend",
]

"""numpy-backed tensor and autograd engine used throughout the reproduction."""

from .tensor import Tensor, concatenate, stack, where, no_grad, is_grad_enabled
from . import functional

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "functional",
]

"""Low-level fused dequantize-GEMM kernels for the accelerated backend.

The accelerated backend's win comes from never materializing the float32
weight matrix: the GEMM consumes the packed integer levels directly and
converts them to float in-register, so a weight row costs ``bits/8`` bytes
of memory traffic instead of four.  On the memory-bound GEMV-shaped
matmuls of batch-1 diffusion inference that is the difference between
int4/int8 being *slower* than FP32 (dequantize + BLAS) and being ~2x
faster.

Three acquisition tiers, tried in order at first use:

1. **Numba** — ``@njit(fastmath=True)`` kernels, when numba is importable
   (it is an optional dependency and absent from the reference
   environment).
2. **Runtime-compiled C** — the embedded source below is compiled once
   per machine with the system C compiler (``cc``/``gcc``/``clang``,
   override with ``REPRO_CC``) into a content-addressed shared object
   under a small on-disk cache, then loaded via :mod:`ctypes`.
   Reduction reassociation (``-fassociative-math``) matters: without it
   the convert+FMA loop does not vectorize and the kernel loses to BLAS
   by an order of magnitude.
3. **None** — no compiler available (``REPRO_NO_CKERNELS=1`` forces
   this); the accelerated backend then falls back to blocked pure-numpy
   tile dequantization, which bounds the float working set but cannot
   beat BLAS on wall-clock.

Both kernels compute the *raw level dot products*
``raw[m, n] = sum_k x[m, k] * float(levels[n, k])``; the affine
correction ``y = scale * (raw - zero_point * rowsum(x))`` is applied by
the caller on the small ``(M, N)`` output, which lets one kernel serve
per-tensor and per-channel formats alike.  The int4 kernel unpacks two
nibbles per byte in-register, matching the interleaved flat layout of
:func:`repro.core.qmodules._pack_levels` (byte ``j`` holds element ``2j``
in the low nibble and ``2j + 1`` in the high nibble), which is why it
requires an even reduction depth ``K``.

Accumulation order differs from BLAS (and ``-fassociative-math``
reassociates freely), so outputs are tolerance-bounded, not
bit-identical — the reference backend never calls into this module.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

C_SOURCE = r"""
#include <stddef.h>
#include <stdint.h>

/* raw[m,n] = sum_k x[m,k] * (float)levels[n,k]
 * x:       (m_rows, k) float32, C-contiguous
 * levels:  (n_rows, k) uint8,   C-contiguous
 * out:     (m_rows, n_rows) float32, C-contiguous
 */
void gemm_u8_levels(const float *restrict x, const uint8_t *restrict levels,
                    float *restrict out,
                    ptrdiff_t m_rows, ptrdiff_t n_rows, ptrdiff_t k) {
    for (ptrdiff_t n = 0; n < n_rows; ++n) {
        const uint8_t *restrict row = levels + n * k;
        for (ptrdiff_t m = 0; m < m_rows; ++m) {
            const float *restrict xr = x + m * k;
            float acc = 0.0f;
            for (ptrdiff_t i = 0; i < k; ++i)
                acc += xr[i] * (float)row[i];
            out[m * n_rows + n] = acc;
        }
    }
}

/* Same contract with two 4-bit levels per byte (k must be even):
 * byte j of a row holds element 2j in the low nibble, 2j+1 in the high
 * nibble.  Split accumulators keep the two nibble streams independent so
 * the compiler can vectorize the unpack+FMA loop.
 */
void gemm_u4_levels(const float *restrict x, const uint8_t *restrict packed,
                    float *restrict out,
                    ptrdiff_t m_rows, ptrdiff_t n_rows, ptrdiff_t k) {
    ptrdiff_t kb = k / 2;
    for (ptrdiff_t n = 0; n < n_rows; ++n) {
        const uint8_t *restrict row = packed + n * kb;
        for (ptrdiff_t m = 0; m < m_rows; ++m) {
            const float *restrict xr = x + m * k;
            float acc_lo = 0.0f, acc_hi = 0.0f;
            for (ptrdiff_t j = 0; j < kb; ++j) {
                uint8_t b = row[j];
                acc_lo += xr[2 * j] * (float)(b & 0x0F);
                acc_hi += xr[2 * j + 1] * (float)(b >> 4);
            }
            out[m * n_rows + n] = acc_lo + acc_hi;
        }
    }
}
"""

#: Flags the measured speedups were validated with; part of the cache key.
#: Deliberately NOT ``-ffast-math``: that flag makes gcc link
#: ``crtfastmath.o`` into the shared object, whose constructor flips the
#: FPU into flush-to-zero/denormals-are-zero mode for the whole process
#: the moment the ``.so`` is loaded.  The individual flags below grant
#: the one licence the kernels need — reassociating the reduction so the
#: convert+FMA loop vectorizes — without touching global float state.
C_FLAGS = ("-O3", "-march=native", "-fassociative-math",
           "-fno-signed-zeros", "-fno-trapping-math", "-fno-math-errno",
           "-funroll-loops", "-shared", "-fPIC")

_LOAD_LOCK = threading.Lock()
_LOADED = False
_KERNELS: Optional["KernelSet"] = None
_STATUS = "unloaded"


class KernelSet:
    """A pair of raw level-dot GEMM kernels plus how they were obtained."""

    def __init__(self, kind: str, gemm_u8, gemm_u4):
        self.kind = kind  # "numba" | "cc"
        self._gemm_u8 = gemm_u8
        self._gemm_u4 = gemm_u4

    def gemm_u8(self, x: np.ndarray, levels: np.ndarray,
                out: np.ndarray) -> None:
        """``out[m, n] = sum_k x[m, k] * float(levels[n, k])`` in place."""
        self._gemm_u8(x, levels, out)

    def gemm_u4(self, x: np.ndarray, packed: np.ndarray,
                out: np.ndarray) -> None:
        """int4 variant; ``packed`` is ``(N, K // 2)`` interleaved nibbles."""
        self._gemm_u4(x, packed, out)


# ----------------------------------------------------------------------
# tier 1: numba
# ----------------------------------------------------------------------
def _numba_kernels() -> Optional[KernelSet]:
    try:
        import numba
    except ImportError:
        return None
    try:
        @numba.njit(fastmath=True, cache=False)
        def nb_u8(x, levels, out):  # pragma: no cover - jitted
            m_rows, k = x.shape
            n_rows = levels.shape[0]
            for n in range(n_rows):
                for m in range(m_rows):
                    acc = np.float32(0.0)
                    for i in range(k):
                        acc += x[m, i] * np.float32(levels[n, i])
                    out[m, n] = acc

        @numba.njit(fastmath=True, cache=False)
        def nb_u4(x, packed, out):  # pragma: no cover - jitted
            m_rows, k = x.shape
            n_rows = packed.shape[0]
            kb = k // 2
            for n in range(n_rows):
                for m in range(m_rows):
                    acc_lo = np.float32(0.0)
                    acc_hi = np.float32(0.0)
                    for j in range(kb):
                        b = packed[n, j]
                        acc_lo += x[m, 2 * j] * np.float32(b & 0x0F)
                        acc_hi += x[m, 2 * j + 1] * np.float32(b >> 4)
                    out[m, n] = acc_lo + acc_hi

        # Force compilation now so a broken numba install fails the tier
        # here (and we fall through to the C path) instead of mid-forward.
        x = np.zeros((1, 2), dtype=np.float32)
        nb_u8(x, np.zeros((1, 2), dtype=np.uint8),
              np.zeros((1, 1), dtype=np.float32))
        nb_u4(x, np.zeros((1, 1), dtype=np.uint8),
              np.zeros((1, 1), dtype=np.float32))
    except Exception:
        return None
    return KernelSet("numba", nb_u8, nb_u4)


# ----------------------------------------------------------------------
# tier 2: runtime-compiled C via ctypes
# ----------------------------------------------------------------------
def _find_compiler() -> Optional[str]:
    override = os.environ.get("REPRO_CC")
    if override:
        return override if shutil.which(override) else None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / f"repro-ckernels-{os.getuid()}"


def _compile_shared_object(compiler: str) -> Optional[Path]:
    """Compile :data:`C_SOURCE` into a content-addressed ``.so``.

    The object file name hashes the source, the flags and the compiler, so
    a changed kernel never collides with a stale cache entry; concurrent
    processes racing the first compile each build to a private temp name
    and ``os.replace`` (atomic) into place — last writer wins with
    identical bytes.
    """
    key = hashlib.sha256("\x00".join(
        [C_SOURCE, " ".join(C_FLAGS), compiler]).encode()).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / f"repro_gemm_{key}.so"
    if target.exists():
        return target
    try:
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            src = Path(tmp) / "kernels.c"
            src.write_text(C_SOURCE)
            obj = Path(tmp) / "kernels.so"
            result = subprocess.run(
                [compiler, *C_FLAGS, str(src), "-o", str(obj)],
                capture_output=True, timeout=120)
            if result.returncode != 0:
                return None
            os.replace(obj, target)
    except (OSError, subprocess.SubprocessError):
        return None
    return target


def _ctypes_kernels() -> Optional[KernelSet]:
    compiler = _find_compiler()
    if compiler is None:
        return None
    path = _compile_shared_object(compiler)
    if path is None:
        return None
    try:
        lib = ctypes.CDLL(str(path))
        for symbol in ("gemm_u8_levels", "gemm_u4_levels"):
            fn = getattr(lib, symbol)
            fn.argtypes = [ctypes.c_void_p] * 3 + [ctypes.c_ssize_t] * 3
            fn.restype = None
    except (OSError, AttributeError):
        return None

    def c_u8(x, levels, out, _fn=lib.gemm_u8_levels):
        _fn(x.ctypes.data, levels.ctypes.data, out.ctypes.data,
            x.shape[0], levels.shape[0], x.shape[1])

    def c_u4(x, packed, out, _fn=lib.gemm_u4_levels):
        _fn(x.ctypes.data, packed.ctypes.data, out.ctypes.data,
            x.shape[0], packed.shape[0], x.shape[1])

    return KernelSet("cc", c_u8, c_u4)


# ----------------------------------------------------------------------
# acquisition
# ----------------------------------------------------------------------
def load_kernels() -> Optional[KernelSet]:
    """The process-wide kernel set, acquired once (lock-guarded memo)."""
    global _LOADED, _KERNELS, _STATUS
    with _LOAD_LOCK:
        if _LOADED:
            return _KERNELS
        if os.environ.get("REPRO_NO_CKERNELS"):
            _KERNELS, _STATUS = None, "disabled"
        else:
            kernels = _numba_kernels() or _ctypes_kernels()
            _KERNELS = kernels
            _STATUS = kernels.kind if kernels else "unavailable"
        _LOADED = True
    return _KERNELS


def kernel_status() -> str:
    """``"numba" | "cc" | "unavailable" | "disabled" | "unloaded"``."""
    with _LOAD_LOCK:
        return _STATUS


def reset_kernels_for_testing() -> None:
    """Forget the memoized kernel set (tests flip the env gates)."""
    global _LOADED, _KERNELS, _STATUS
    with _LOAD_LOCK:
        _LOADED, _KERNELS, _STATUS = False, None, "unloaded"

"""A small numpy-backed reverse-mode autograd engine.

The engine substitutes for PyTorch in this reproduction.  Every value in the
diffusion models and in the quantization method (notably the gradient-based
rounding learning of the paper, Eq. 12-14) is a :class:`Tensor` holding a
``numpy.ndarray`` plus, when gradients are requested, a backward closure that
accumulates gradients into its parents.

Only the operations actually needed by the reproduction are implemented, but
they cover the usual deep-learning vocabulary: broadcast arithmetic, matmul,
reductions, activations, reshaping, indexing, concatenation and clipping.
Convolution and attention primitives live in :mod:`repro.tensor.functional`.

Grad modes
----------

Two context managers control how much autograd machinery an operation pays:

* :func:`no_grad` disables gradient *tracking*: results come out with
  ``requires_grad=False`` and no graph is recorded.
* :func:`inference_mode` is stricter: in addition to disabling tracking it
  promises that nothing produced inside will ever join an autograd graph,
  which lets every operation take the allocation-free fast path (no backward
  closure, no parent tuple) and lets :mod:`repro.tensor.functional` reuse
  cached im2col workspaces.  Calling :meth:`Tensor.backward` inside
  inference mode raises.

Every operation short-circuits graph construction whenever the result cannot
require gradients (grad disabled, or no input requires them), so the hot
inference paths — samplers, serving, calibration forward passes — never
allocate backward closures at all.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from .backend import active_backend, reference_backend

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

#: Grad mode is **thread-local**: the parallel experiment runner executes
#: independent stages on worker threads, and one stage entering ``no_grad``
#: (e.g. image decoding) must not switch off gradient tracking under a
#: concurrent stage that is learning rounding parameters.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking inside its block."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


@contextlib.contextmanager
def inference_mode():
    """Disable gradient tracking *and* every autograd allocation.

    Stricter than :func:`no_grad`: inside the block ``backward()`` raises,
    tensors cannot be created with ``requires_grad=True``, and operations
    skip backward-closure construction entirely.  Use it on inference-only
    paths (sampling, serving, calibration forward passes) where nothing will
    ever need a gradient.
    """
    prev_enabled = is_grad_enabled()
    prev_inference = is_inference_mode()
    _GRAD_STATE.enabled = False
    _GRAD_STATE.inference = True
    try:
        yield
    finally:
        _GRAD_STATE.enabled = prev_enabled
        _GRAD_STATE.inference = prev_inference


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return getattr(_GRAD_STATE, "enabled", True)


def is_inference_mode() -> bool:
    """Return whether the strict inference fast path is active."""
    return getattr(_GRAD_STATE, "inference", False)


def _no_graph(*parents: "Tensor") -> bool:
    """Whether an op over ``parents`` can skip graph construction entirely."""
    if not getattr(_GRAD_STATE, "enabled", True):
        return True
    for parent in parents:
        if parent.requires_grad:
            return False
    return True


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    Numpy broadcasting may have expanded an operand along new leading axes or
    along axes of size one; the gradient flowing back must be summed over the
    broadcast axes to recover the operand's original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``float32`` by default.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _from_data(data) -> "Tensor":
        """Fast constructor for graph-free results (the inference path)."""
        out = object.__new__(Tensor)
        out.data = np.asarray(data, dtype=np.float32)
        out.requires_grad = False
        out.grad = None
        out._backward = None
        out._parents = ()
        out.name = None
        return out

    @staticmethod
    def _wire(data, parents: Sequence["Tensor"], backward) -> "Tensor":
        """Create a gradient-tracking result wired into the autograd graph."""
        out = Tensor._from_data(data)
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
        return out

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], backward) -> "Tensor":
        """Create a result tensor and wire it into the autograd graph.

        Kept as the compatibility entry point for operations (e.g. in
        :mod:`repro.tensor.functional`) that build the backward closure
        before knowing whether the result needs one; operations defined in
        this module check :func:`_no_graph` first and skip closure
        construction entirely on the fast path.
        """
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            return Tensor._wire(data, parents, backward)
        return Tensor._from_data(data)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float32)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones, which is the usual convention when the
        tensor is a scalar loss.
        """
        if is_inference_mode():
            raise RuntimeError(
                "backward() is not allowed inside inference_mode(); use "
                "no_grad() if downstream code still differentiates")
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()

        # Iterative topological sort to avoid recursion limits on deep graphs.
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if id(node) in visited or not node.requires_grad:
                continue
            if processed:
                visited.add(id(node))
                topo.append(node)
            else:
                stack.append((node, True))
                for parent in node._parents:
                    if id(parent) not in visited and parent.requires_grad:
                        stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data + other_t.data
        if _no_graph(self, other_t):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._wire(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        if _no_graph(self):
            return Tensor._from_data(-self.data)

        def backward(grad):
            self._accumulate(-grad)

        return Tensor._wire(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data - other_t.data
        if _no_graph(self, other_t):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(-grad, other_t.shape))

        return Tensor._wire(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data * other_t.data
        if _no_graph(self, other_t):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._wire(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data / other_t.data
        if _no_graph(self, other_t):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape))

        return Tensor._wire(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        data = self.data ** exponent
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._wire(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix multiplication supporting 2-D and batched (>2-D) operands.

        The product dispatches through the active compute backend; the
        backward closure always uses the reference backend so gradient
        numerics are independent of the backend selection.
        """
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = active_backend().batched_gemm(self.data, other_t.data)
        if _no_graph(self, other_t):
            return Tensor._from_data(data)

        def backward(grad):
            a, b = self.data, other_t.data
            reference = reference_backend()
            grad_a = reference.batched_gemm(grad, np.swapaxes(b, -1, -2))
            grad_b = reference.batched_gemm(np.swapaxes(a, -1, -2), grad)
            self._accumulate(_unbroadcast(grad_a, a.shape))
            other_t._accumulate(_unbroadcast(grad_b, b.shape))

        return Tensor._wire(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad * data)

        return Tensor._wire(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._wire(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._wire(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad * np.sign(self.data))

        return Tensor._wire(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._wire(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._wire(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad * (self.data > 0.0))

        return Tensor._wire(data, (self,), backward)

    def silu(self) -> "Tensor":
        """SiLU / swish activation, ``x * sigmoid(x)`` (used throughout U-Nets)."""
        if _no_graph(self):
            return Tensor._from_data(active_backend().silu(self.data))
        sig = 1.0 / (1.0 + np.exp(-self.data))
        data = self.data * sig

        def backward(grad):
            self._accumulate(grad * (sig + self.data * sig * (1.0 - sig)))

        return Tensor._wire(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi).astype(np.float32)
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
            dt = (1.0 - t ** 2) * dinner
            self._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return Tensor._wire(data, (self,), backward)

    def clip(self, minimum: float, maximum: float) -> "Tensor":
        """Element-wise clamp; the gradient is passed where values are inside."""
        data = np.clip(self.data, minimum, maximum)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            inside = (self.data >= minimum) & (self.data <= maximum)
            self._accumulate(grad * inside)

        return Tensor._wire(data, (self,), backward)

    clamp = clip

    def floor(self) -> "Tensor":
        """Floor with a zero gradient (used only on detached quantities)."""
        data = np.floor(self.data)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(np.zeros_like(self.data))

        return Tensor._wire(data, (self,), backward)

    def round(self) -> "Tensor":
        """Round-to-nearest with a straight-through gradient estimator."""
        data = np.round(self.data)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad)

        return Tensor._wire(data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad, self.shape)
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                if not keepdims:
                    for ax in sorted(a % self.ndim for a in axes):
                        grad = np.expand_dims(grad, ax)
                expanded = np.broadcast_to(grad, self.shape)
            self._accumulate(expanded)

        return Tensor._wire(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for a in axes:
                count *= self.shape[a % self.ndim]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                mask = (self.data == self.data.max())
                self._accumulate(grad * mask / max(mask.sum(), 1))
            else:
                full = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == full)
                g = grad if keepdims else np.expand_dims(grad, axis)
                counts = mask.sum(axis=axis, keepdims=True)
                self._accumulate(mask * g / np.maximum(counts, 1))

        return Tensor._wire(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        if _no_graph(self):
            return Tensor._from_data(active_backend().softmax(self.data, axis))
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad):
            dot = (grad * data).sum(axis=axis, keepdims=True)
            self._accumulate(data * (grad - dot))

        return Tensor._wire(data, (self,), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(grad.reshape(self.shape))

        return Tensor._wire(data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        if _no_graph(self):
            return Tensor._from_data(data)
        inverse = np.argsort(axes)

        def backward(grad):
            self._accumulate(grad.transpose(inverse))

        return Tensor._wire(data, (self,), backward)

    permute = transpose

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._wire(data, (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero padding; ``pad_width`` follows ``numpy.pad`` conventions."""
        data = np.pad(self.data, pad_width)
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            slices = tuple(slice(before, before + size)
                           for (before, _), size in zip(pad_width, self.shape))
            self._accumulate(grad[slices])

        return Tensor._wire(data, (self,), backward)

    def broadcast_to(self, shape) -> "Tensor":
        data = np.broadcast_to(self.data, shape).copy()
        if _no_graph(self):
            return Tensor._from_data(data)

        def backward(grad):
            self._accumulate(_unbroadcast(grad, self.shape))

        return Tensor._wire(data, (self,), backward)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None,
              requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape).astype(np.float32),
                      requires_grad=requires_grad)

    @staticmethod
    def arange(n: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.arange(n, dtype=np.float32), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    if _no_graph(*tensors):
        return Tensor._from_data(data)
    sizes = [t.shape[axis] for t in tensors]

    def backward(grad):
        start = 0
        for tensor, size in zip(tensors, sizes):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, start + size)
            tensor._accumulate(grad[tuple(slicer)])
            start += size

    return Tensor._wire(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    if _no_graph(*tensors):
        return Tensor._from_data(data)

    def backward(grad):
        moved = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, moved):
            tensor._accumulate(piece)

    return Tensor._wire(data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select elements from ``a`` where ``condition`` holds, otherwise ``b``."""
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(_as_array(a))
    b = b if isinstance(b, Tensor) else Tensor(_as_array(b))
    data = np.where(condition, a.data, b.data)
    if _no_graph(a, b):
        return Tensor._from_data(data)

    def backward(grad):
        a._accumulate(_unbroadcast(grad * condition, a.shape))
        b._accumulate(_unbroadcast(grad * (~condition), b.shape))

    return Tensor._wire(data, (a, b), backward)

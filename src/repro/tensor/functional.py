"""Structured tensor operations: convolution, pooling, resampling, attention.

These are implemented on top of the :class:`repro.tensor.Tensor` autograd
primitives so that both the diffusion models and the rounding-learning
optimization of the quantizer can differentiate through them.

The convolution is the dominant cost of every U-Net forward, and its im2col
lowering is also the dominant *allocation*: one padded image plus one patch
matrix per call.  When a convolution is not going to join an autograd graph
(inference mode, ``no_grad``, or simply no input requiring gradients) those
two scratch arrays are drawn from a small per-thread workspace cache keyed by
shape, so repeated forwards — every denoising step of every sampler pass —
reuse the same buffers instead of re-allocating them.  Graph-building calls
never use the cache: their backward closures retain the patch matrix, which
must therefore stay privately owned.

Every GEMM in this module dispatches through :mod:`repro.tensor.backend`
rather than calling numpy directly: inference paths use the active backend,
graph-building forwards and all backward closures pin the bit-exact
reference backend.  :func:`fused_linear` / :func:`fused_conv2d` are the
packed-integer-weight entry points the quantized layer wrappers try first.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from .backend import PackedLevelsView, active_backend, reference_backend
from .tensor import Tensor, is_grad_enabled, is_inference_mode

#: Per-thread workspace cache (thread-local: the parallel experiment runner
#: forwards independent models on worker threads).  Bounded so long-running
#: servers that touch many distinct shapes cannot grow it without limit.
_WORKSPACES = threading.local()
_WORKSPACE_LIMIT = 64


# repro: hot -- every conv/matmul on the inference path draws scratch from here
def _workspace(key: tuple, shape: tuple, dtype, zero: bool = False) -> np.ndarray:
    """Return a cached scratch array for ``key``, (re)allocating on mismatch."""
    cache = getattr(_WORKSPACES, "arrays", None)
    if cache is None:
        cache = OrderedDict()
        _WORKSPACES.arrays = cache
    array = cache.get(key)
    if array is None or array.shape != shape or array.dtype != dtype:
        array = np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
        cache[key] = array
        while len(cache) > _WORKSPACE_LIMIT:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return array


def clear_workspaces() -> None:
    """Drop this thread's cached im2col workspaces (frees their memory)."""
    _WORKSPACES.arrays = OrderedDict()


def workspace_count() -> int:
    """Number of live workspace buffers on this thread (for tests/metrics)."""
    return len(getattr(_WORKSPACES, "arrays", ()))


# repro: hot -- dominant non-matmul cost of every convolution
def _im2col(x: np.ndarray, kernel: Tuple[int, int], stride: int,
            padding: int, reuse: bool = False) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rearrange image patches into columns for convolution as a matmul.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        Spatial kernel size ``(kh, kw)``.
    reuse:
        Draw the padded image and the column matrix from the per-thread
        workspace cache.  Only safe when the caller does not retain ``cols``
        beyond the current operation (i.e. builds no backward closure).

    Returns
    -------
    cols:
        Array of shape ``(N, out_h * out_w, C * kh * kw)``.
    (out_h, out_w):
        Output spatial dimensions.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    if padding:
        if reuse:
            # The workspace is zero-initialized once; the borders stay zero
            # because only the interior is ever written.
            padded = _workspace(("pad", n, c, h, w, padding, x.dtype.str),
                                (n, c, h + 2 * padding, w + 2 * padding),
                                x.dtype, zero=True)
            padded[:, :, padding:padding + h, padding:padding + w] = x
            x = padded
        else:
            x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ph, pw = x.shape[2], x.shape[3]
    out_h = (ph - kh) // stride + 1
    out_w = (pw - kw) // stride + 1
    strides = x.strides
    shape = (n, c, out_h, out_w, kh, kw)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(strides[0], strides[1], strides[2] * stride,
                 strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    patches = view.transpose(0, 2, 3, 1, 4, 5)
    if reuse:
        cols = _workspace(("cols", n, out_h, out_w, c, kh, kw, x.dtype.str),
                          (n, out_h * out_w, c * kh * kw), x.dtype)
        np.copyto(cols.reshape(n, out_h, out_w, c, kh, kw), patches)
        return cols, (out_h, out_w)
    cols = patches.reshape(n, out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), (out_h, out_w)


def _col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
            kernel: Tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`_im2col`, accumulating overlapping patches."""
    n, c, h, w = x_shape
    kh, kw = kernel
    ph, pw = h + 2 * padding, w + 2 * padding
    out_h = (ph - kh) // stride + 1
    out_w = (pw - kw) // stride + 1
    padded = np.zeros((n, c, ph, pw), dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += \
                cols[:, :, :, :, i, j]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution with autograd support.

    ``x`` has shape ``(N, C_in, H, W)`` and ``weight`` has shape
    ``(C_out, C_in, kh, kw)``.  Implemented with im2col so the heavy lifting
    is a single matmul, which keeps the pure-Python overhead manageable.
    Graph-free calls (inference/no-grad) additionally run the im2col and the
    matmul inside cached per-thread workspaces.
    """
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    parents = [x, weight] if bias is None else [x, weight, bias]
    track = is_grad_enabled() and any(p.requires_grad for p in parents)
    cols, (out_h, out_w) = _im2col(x.data, (kh, kw), stride, padding,
                                   reuse=not track)
    w_mat = weight.data.reshape(c_out, -1)

    if not track:
        gemm = _workspace(("gemm", n, out_h * out_w, c_out, cols.dtype.str),
                          (n, out_h * out_w, c_out), cols.dtype)
        active_backend().im2col_conv(
            cols, w_mat, None if bias is None else bias.data, out=gemm)
        # ascontiguousarray forces a copy out of the workspace (the plain
        # transpose+reshape would alias it), so the returned tensor owns its
        # data and the workspace is free for the next call.
        out = np.ascontiguousarray(gemm.transpose(0, 2, 1))
        return Tensor._from_data(out.reshape(n, c_out, out_h, out_w))

    # Graph-building path: pinned to the reference backend, like every
    # backward closure — autograd numerics never change with the backend.
    out = reference_backend().im2col_conv(
        cols, w_mat, None if bias is None else bias.data)  # (N, L, C_out)
    out = out.transpose(0, 2, 1).reshape(n, c_out, out_h, out_w)

    def backward(grad):
        reference = reference_backend()
        grad_mat = grad.reshape(n, c_out, out_h * out_w).transpose(0, 2, 1)
        if weight.requires_grad:
            grad_w = reference.gemm(
                np.ascontiguousarray(grad_mat).reshape(-1, c_out),
                cols.reshape(-1, cols.shape[-1]), transpose_a=True)
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 1)))
        if x.requires_grad:
            grad_cols = reference.batched_gemm(grad_mat, w_mat)
            grad_x = _col2im(grad_cols, x.shape, (kh, kw), stride, padding)
            x._accumulate(grad_x)

    return Tensor._wire(out, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` over the last dimension."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def fused_linear(x: Tensor, storage, bias: Optional[Tensor] = None
                 ) -> Optional[Tensor]:
    """Linear layer straight from packed integer weight storage.

    ``storage`` is a ``QuantizedStorage`` (see :mod:`repro.core.qmodules`);
    its :meth:`packed_view` bytes go to the active backend's fused
    dequantize-GEMM without materializing the float weight.  Returns
    ``None`` whenever the fused path does not apply — outside inference
    mode, when the storage has no row-aligned view, or when the backend
    declines the shape — and the caller falls back to the dequantized
    :func:`linear` path.
    """
    if not is_inference_mode():
        return None
    view: Optional[PackedLevelsView] = storage.packed_view()
    if view is None:
        return None
    n_rows, k = view.shape
    if x.shape[-1] != k:
        return None
    m = x.size // k
    backend = active_backend()
    if not backend.fused_eligible(m, view):
        return None
    x2d = np.ascontiguousarray(x.data.reshape(m, k), dtype=np.float32)
    out = backend.fused_dequant_gemm(
        x2d, view, bias=None if bias is None else bias.data)
    if out is None:
        return None
    return Tensor._from_data(out.reshape(x.shape[:-1] + (n_rows,)))


def fused_conv2d(x: Tensor, storage, bias: Optional[Tensor] = None,
                 stride: int = 1, padding: int = 0,
                 kernel_size: int = 1) -> Optional[Tensor]:
    """Convolution straight from packed integer weight storage.

    The im2col lowering turns the convolution into exactly the GEMV-shaped
    product :func:`fused_linear` handles — ``(N * out_h * out_w, K)``
    patches against the packed ``(C_out, K)`` weight — so the same fused
    kernel serves both layer types.  Same ``None``-fallback contract as
    :func:`fused_linear`; eligibility is probed from shapes *before* the
    im2col so a declined call costs nothing.
    """
    if not is_inference_mode():
        return None
    view: Optional[PackedLevelsView] = storage.packed_view()
    if view is None:
        return None
    n, c_in, h, w = x.shape
    c_out, k = view.shape
    if k != c_in * kernel_size * kernel_size:
        return None
    out_h = (h + 2 * padding - kernel_size) // stride + 1
    out_w = (w + 2 * padding - kernel_size) // stride + 1
    m = n * out_h * out_w
    backend = active_backend()
    if not backend.fused_eligible(m, view):
        return None
    cols, _ = _im2col(x.data, (kernel_size, kernel_size), stride, padding,
                      reuse=True)
    out = backend.fused_dequant_gemm(
        cols.reshape(m, k), view, bias=None if bias is None else bias.data)
    if out is None:
        return None
    out = np.ascontiguousarray(
        out.reshape(n, out_h * out_w, c_out).transpose(0, 2, 1))
    return Tensor._from_data(out.reshape(n, c_out, out_h, out_w))


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Average pooling with a square kernel and matching stride."""
    n, c, h, w = x.shape
    out_h, out_w = h // kernel, w // kernel
    view = x.data[:, :, :out_h * kernel, :out_w * kernel]
    view = view.reshape(n, c, out_h, kernel, out_w, kernel)
    out = view.mean(axis=(3, 5))

    def backward(grad):
        expanded = np.repeat(np.repeat(grad, kernel, axis=2), kernel, axis=3)
        full = np.zeros_like(x.data)
        full[:, :, :out_h * kernel, :out_w * kernel] = expanded / (kernel * kernel)
        x._accumulate(full)

    return Tensor._make(out, (x,), backward)


def upsample_nearest(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour spatial upsampling by an integer factor."""
    out = np.repeat(np.repeat(x.data, scale, axis=2), scale, axis=3)

    def backward(grad):
        n, c, h, w = x.shape
        grad = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        x._accumulate(grad)

    return Tensor._make(out, (x,), backward)


def scaled_dot_product_attention(query: Tensor, key: Tensor,
                                 value: Tensor) -> Tensor:
    """Attention ``softmax(Q K^T / sqrt(d)) V`` over the last two dims.

    Shapes follow the usual ``(batch*heads, tokens, head_dim)`` convention.
    Both products and the softmax dispatch through the active compute
    backend via the :class:`Tensor` operations.
    """
    d = query.shape[-1]
    scores = query.matmul(key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
    weights = scores.softmax(axis=-1)
    return weights.matmul(value)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between two tensors."""
    diff = prediction - target
    return (diff * diff).mean()

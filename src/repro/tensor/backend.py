"""Pluggable compute backends behind the tensor engine's heavy kernels.

Every GEMM-shaped operation in the reproduction — matmul, im2col
convolution, attention score/value products — and the graph-free norm /
activation fast paths dispatch through the :class:`ComputeBackend`
contract defined here instead of calling numpy directly.  Two backends
ship:

``reference`` (default)
    The exact numpy spellings the engine has always used, in the same
    operation order and dtypes.  Outputs are **bit-identical** to the
    pre-backend code by construction; this is the backend every autograd
    (gradient-tracking) path uses unconditionally.

``accelerated`` (opt-in)
    Inherits the reference arithmetic for float GEMMs — numpy's BLAS
    (OpenBLAS) is already a blocked, cache-tiled GEMM, which no pure-
    Python tiling can beat — and adds **fused dequantize-GEMM** kernels
    that consume :class:`PackedLevelsView` integer weights directly, so
    int8 costs 1/4 and int4 1/8 of the float weight's memory traffic.
    Engages only in inference mode, for GEMV-shaped products (``M <= 8``
    output rows) on weights large enough to be memory-bound; everything
    else falls back to the reference path.  Fused outputs accumulate in
    float32 (fast-math) instead of BLAS order and are therefore
    **tolerance-bounded**, not bit-identical — see the per-kernel notes
    in ``EXPERIMENTS.md``.

Selection: :func:`set_backend` switches the process default (used by
every thread that has no override), :func:`use_backend` is a scoped
thread-local override, and the ``REPRO_BACKEND`` environment variable
picks the default at import time.  The active default and the fused
kernel tier are reported by :func:`backend_info`, which the bench
environment fingerprint includes.

MACs accounting: :func:`count_macs` is a context manager that counts the
multiply-accumulate operations of every dispatched GEMM on the current
thread (one MAC per output element per reduction step), which the bench
suite reports alongside wall-clock so speedups can be read against a
constant work metric.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from . import _ckernels

# ----------------------------------------------------------------------
# MACs accounting
# ----------------------------------------------------------------------
_MACS = threading.local()


class MacCounter:
    """Accumulates multiply-accumulate counts of dispatched GEMMs."""

    __slots__ = ("macs",)

    def __init__(self):
        self.macs = 0


@contextlib.contextmanager
def count_macs():
    """Count GEMM MACs on this thread inside the block.

    Yields a :class:`MacCounter` whose ``macs`` attribute accumulates one
    multiply-accumulate per output element per reduction step of every
    backend-dispatched GEMM (plain, batched, im2col and fused).  Counters
    nest; each active counter sees the full count of its block.
    """
    counter = MacCounter()
    stack = getattr(_MACS, "stack", None)
    if stack is None:
        stack = []
        _MACS.stack = stack
    stack.append(counter)
    try:
        yield counter
    finally:
        stack.pop()


def _add_macs(count: int) -> None:
    stack = getattr(_MACS, "stack", None)
    if stack:
        for counter in stack:
            counter.macs += count


# ----------------------------------------------------------------------
# packed weight view
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PackedLevelsView:
    """Row-aligned view of packed integer weight levels for fused GEMM.

    A GEMM-ready presentation of a quantized weight: the ``(N, K)``
    logical matrix whose rows are output channels, with per-row affine
    parameters (per-tensor formats broadcast one scale/zero-point to all
    rows).  ``packed`` is ``(N, K)`` uint8 for byte-packed levels
    (bitwidth 5–8) or ``(N, K // 2)`` for nibble-packed levels
    (bitwidth <= 4, two interleaved levels per byte) — nibble packing is
    only row-alignable when ``K`` is even, so storages with odd reduction
    depth expose no view at all.

    Deliberately plain (numpy fields only): defined here so the tensor
    layer never imports :mod:`repro.core`, while ``PackedIntWeight``
    up in the core package constructs it.
    """

    packed: np.ndarray
    bitwidth: int
    shape: Tuple[int, int]
    scales: np.ndarray       # (N,) float64
    zero_points: np.ndarray  # (N,) float64


# ----------------------------------------------------------------------
# backend contract
# ----------------------------------------------------------------------
class ComputeBackend:
    """Kernel contract every compute backend implements.

    The reference implementations below are the single source of the
    engine's numerics; subclasses override individual kernels and must
    document their tolerance against the reference spelling.
    """

    name = "reference"

    # -- GEMM family ---------------------------------------------------
    # repro: hot -- every 2-D matmul on inference and autograd paths
    def gemm(self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None,
             transpose_a: bool = False, transpose_b: bool = False) -> np.ndarray:
        """2-D product ``op(a) @ op(b)``, optionally into ``out``."""
        lhs = a.T if transpose_a else a
        rhs = b.T if transpose_b else b
        result = np.matmul(lhs, rhs, out=out)
        _add_macs(result.size * lhs.shape[-1])
        return result

    # repro: hot -- Tensor.matmul forwards every attention product here
    def batched_gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Broadcasting batched matmul, numpy ``a @ b`` semantics."""
        result = a @ b
        _add_macs(result.size * a.shape[-1])
        return result

    # repro: hot -- the convolution matmul of every U-Net forward
    def im2col_conv(self, cols: np.ndarray, w_mat: np.ndarray,
                    bias: Optional[np.ndarray] = None,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
        """Patch-matrix convolution product ``cols @ w_mat.T (+ bias)``.

        ``cols`` is the ``(N, L, K)`` im2col matrix, ``w_mat`` the
        ``(C_out, K)`` flattened weight; returns ``(N, L, C_out)``.  When
        ``out`` is given the product and bias add run in place (the
        caller owns the workspace).
        """
        if out is None:
            result = cols @ w_mat.T
            if bias is not None:
                result = result + bias.reshape(1, 1, -1)
        else:
            result = np.matmul(cols, w_mat.T, out=out)
            if bias is not None:
                np.add(result, bias.reshape(1, 1, -1), out=result)
        _add_macs(result.size * cols.shape[-1])
        return result

    # -- fused dequantize-GEMM -----------------------------------------
    def fused_eligible(self, m_rows: int, view: PackedLevelsView) -> bool:
        """Whether :meth:`fused_dequant_gemm` would engage for this shape.

        Callers probe this *before* paying im2col / reshape so a declined
        product costs nothing.  The reference backend never fuses: its
        quantized path is dequantize (memoized) + BLAS.
        """
        return False

    def fused_dequant_gemm(self, x2d: np.ndarray, view: PackedLevelsView,
                           bias: Optional[np.ndarray] = None
                           ) -> Optional[np.ndarray]:
        """``x2d @ W.T (+ bias)`` with ``W`` dequantized from ``view``.

        ``x2d`` is ``(M, K)`` float32, the result ``(M, N)`` float32, and
        ``W[n, k] = scales[n] * (levels[n, k] - zero_points[n])``.
        Returns ``None`` when the backend declines (the caller falls back
        to the dequantize-and-GEMM reference path).
        """
        return None

    # -- norm / activation fast paths ----------------------------------
    # These are the graph-free spellings of the corresponding autograd
    # operations: same operations, same order, same dtypes, minus the
    # per-op Tensor wrapping — bit-identical outputs.

    # repro: hot -- graph-free GroupNorm of every U-Net block
    def group_norm(self, x: np.ndarray, num_groups: int, weight: np.ndarray,
                   bias: np.ndarray, eps: float) -> np.ndarray:
        n, c, h, w = x.shape
        grouped = x.reshape(n, num_groups, c // num_groups * h * w)
        inv_count = np.float32(1.0 / grouped.shape[2])
        mean = grouped.sum(axis=2, keepdims=True) * inv_count
        centered = grouped - mean
        var = (centered * centered).sum(axis=2, keepdims=True) * inv_count
        normed = centered / np.sqrt(var + np.float32(eps))
        normed = normed.reshape(n, c, h, w)
        return (normed * weight.reshape(1, c, 1, 1)
                + bias.reshape(1, c, 1, 1))

    # repro: hot -- graph-free LayerNorm of the transformer blocks
    def layer_norm(self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                   eps: float) -> np.ndarray:
        inv_count = np.float32(1.0 / x.shape[-1])
        mean = x.sum(axis=-1, keepdims=True) * inv_count
        centered = x - mean
        var = (centered * centered).sum(axis=-1, keepdims=True) * inv_count
        normed = centered / np.sqrt(var + np.float32(eps))
        return normed * weight + bias

    # repro: hot -- graph-free SiLU between every pair of U-Net convs
    def silu(self, x: np.ndarray) -> np.ndarray:
        sig = 1.0 / (1.0 + np.exp(-x))
        return x * sig

    # repro: hot -- graph-free attention softmax
    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)


class NumpyReferenceBackend(ComputeBackend):
    """The default backend: plain numpy, bit-identical to the pre-backend
    engine.  All kernels are the base-class reference implementations."""

    name = "reference"


class AcceleratedBackend(ComputeBackend):
    """Opt-in backend with fused dequantize-GEMM integer kernels.

    Float GEMMs are inherited unchanged from the reference backend —
    numpy's BLAS is already a blocked, cache-tiled implementation with
    its own packing workspaces, and a Python-level re-tiling of it only
    loses.  What this backend adds is the quantized-weight product: when
    a GEMV-shaped matmul (``M <= _FUSED_MAX_M`` output rows, the batch-1
    denoising regime) hits a packed integer weight big enough to be
    memory-bound (``N * K >= _FUSED_MIN_WEIGHT``), the packed bytes go
    straight to a fused kernel from :mod:`repro.tensor._ckernels` that
    converts levels to float in-register — the float32 weight matrix is
    never materialized.  The affine correction

        ``y[m, n] = scales[n] * (raw[m, n] - zero_points[n] * sumx[m])``

    with ``raw = x @ levels.T`` and ``sumx[m] = sum_k x[m, k]`` is
    applied on the small ``(M, N)`` output in float64, which lets one
    raw-levels kernel serve per-tensor and per-channel formats alike.

    When no jitted/compiled kernel is available the fused product falls
    back to pure-numpy **tile dequantization**: weight rows are
    dequantized in row blocks into a preallocated per-thread workspace
    and multiplied per block, bounding the float working set to one tile
    instead of the whole weight (same numerics class, no wall-clock win
    over BLAS — the compiled kernels are where the speed lives).

    Tolerance: fused outputs accumulate in float32 with reassociation
    (fast-math) instead of BLAS order, giving relative error on the
    order of ``K * eps_f32`` against the reference dequantize-then-GEMM
    spelling; see ``EXPERIMENTS.md`` for the per-kernel table.
    """

    name = "accelerated"

    #: Fused kernels beat BLAS sgemm only while the product is
    #: memory-bound on the weight; at M >= 16 BLAS's operand reuse wins
    #: (measured crossover on the reference machine: ~0.7x at M=16).
    _FUSED_MAX_M = 8
    #: Minimum weight elements (N * K) for fusing.  Below ~1 MB of float32
    #: weight the dequantized matrix lives in L2 and BLAS wins (measured
    #: 0.2-0.5x at 0.6 MB); at and above it the float traffic is what the
    #: fused path avoids (measured 1.3-3x, growing once a model's total
    #: weights stream from memory every forward).
    _FUSED_MIN_WEIGHT = 262144
    #: Row-block size of the pure-numpy tile-dequantization fallback,
    #: sized so a float32 tile of a wide (K ~ 1k) weight stays ~L2-sized.
    _TILE_ROWS = 64

    _WORKSPACE_LIMIT = 32

    def __init__(self):
        self._workspaces = threading.local()

    def _workspace(self, key: tuple, shape: tuple, dtype) -> np.ndarray:
        """Bounded per-thread scratch cache (mirrors functional's)."""
        cache = getattr(self._workspaces, "arrays", None)
        if cache is None:
            cache = OrderedDict()
            self._workspaces.arrays = cache
        array = cache.get(key)
        if array is None or array.shape != shape or array.dtype != dtype:
            array = np.empty(shape, dtype=dtype)
            cache[key] = array
            while len(cache) > self._WORKSPACE_LIMIT:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        return array

    def fused_eligible(self, m_rows: int, view: PackedLevelsView) -> bool:
        if view is None:
            return False
        n_rows, k = view.shape
        return m_rows <= self._FUSED_MAX_M and n_rows * k >= self._FUSED_MIN_WEIGHT

    # repro: hot -- the quantized-layer product of every fused forward
    def fused_dequant_gemm(self, x2d: np.ndarray, view: PackedLevelsView,
                           bias: Optional[np.ndarray] = None
                           ) -> Optional[np.ndarray]:
        m_rows = x2d.shape[0]
        if not self.fused_eligible(m_rows, view):
            return None
        n_rows, k = view.shape
        x2d = np.ascontiguousarray(x2d, dtype=np.float32)
        kernels = _ckernels.load_kernels()
        if kernels is not None:
            raw = self._workspace(("raw", m_rows, n_rows), (m_rows, n_rows),
                                  np.float32)
            if view.bitwidth > 4:
                kernels.gemm_u8(x2d, view.packed, raw)
            else:
                kernels.gemm_u4(x2d, view.packed, raw)
            # Affine correction on the small (M, N) output, in float64 so
            # the raw-levels accumulation stays the only float32 error
            # source: y = s * (raw - z * sumx).
            sumx = x2d.sum(axis=1, dtype=np.float64)
            out = (view.scales[None, :]
                   * (raw.astype(np.float64)
                      - view.zero_points[None, :] * sumx[:, None]))
            out = out.astype(np.float32)
        else:
            out = self._tiled_dequant_gemm(x2d, view)
        _add_macs(m_rows * n_rows * k)
        if bias is not None:
            out += bias
        return out

    def _tiled_dequant_gemm(self, x2d: np.ndarray,
                            view: PackedLevelsView) -> np.ndarray:
        """Pure-numpy fallback: dequantize weight rows one tile at a time."""
        m_rows = x2d.shape[0]
        n_rows, k = view.shape
        tile = self._TILE_ROWS
        wbuf = self._workspace(("tile", tile, k), (tile, k), np.float32)
        scales = view.scales.astype(np.float32)
        zero_points = view.zero_points.astype(np.float32)
        out = np.empty((m_rows, n_rows), dtype=np.float32)
        for n0 in range(0, n_rows, tile):
            n1 = min(n0 + tile, n_rows)
            rows = n1 - n0
            block = wbuf[:rows]
            if view.bitwidth > 4:
                block[:] = view.packed[n0:n1]
            else:
                nibbles = view.packed[n0:n1]
                block[:, 0::2] = nibbles & np.uint8(0x0F)
                block[:, 1::2] = nibbles >> np.uint8(4)
            block -= zero_points[n0:n1, None]
            block *= scales[n0:n1, None]
            out[:, n0:n1] = x2d @ block.T
        return out


# ----------------------------------------------------------------------
# registry and selection
# ----------------------------------------------------------------------
#: Guards the registry and the process-default switch; the *read* path
#: (active_backend) is lock-free — it reads one reference, and a torn
#: read cannot occur on a single attribute swap.
_BACKEND_LOCK = threading.Lock()
_BACKENDS: dict = {}
_OVERRIDES = threading.local()


def register_backend(backend: ComputeBackend) -> None:
    """Add a backend instance to the registry under ``backend.name``."""
    with _BACKEND_LOCK:
        _BACKENDS[backend.name] = backend


def get_backend(name: str) -> ComputeBackend:
    """Look up a registered backend by name."""
    with _BACKEND_LOCK:
        backend = _BACKENDS.get(name)
        if backend is None:
            known = sorted(_BACKENDS)
            raise ValueError(f"unknown backend {name!r}; known backends: {known}")
        return backend


def list_backends() -> Tuple[str, ...]:
    """Names of all registered backends."""
    with _BACKEND_LOCK:
        return tuple(sorted(_BACKENDS))


register_backend(NumpyReferenceBackend())
register_backend(AcceleratedBackend())

_DEFAULT = _BACKENDS["reference"]


def set_backend(name: str) -> None:
    """Switch the process-default backend (all threads without overrides)."""
    global _DEFAULT
    backend = get_backend(name)
    with _BACKEND_LOCK:
        _DEFAULT = backend


# repro: hot -- autograd backward closures pin the bit-exact backend
def reference_backend() -> ComputeBackend:
    """The always-registered bit-exact reference backend.

    Gradient paths dispatch through this unconditionally — autograd
    numerics never change with the backend selection.  Lock-free read of
    a registry key that is installed at import and never removed.
    """
    return _BACKENDS["reference"]


# repro: hot -- consulted by every dispatched tensor operation
def active_backend() -> ComputeBackend:
    """The backend in effect on this thread: innermost override, else
    the process default."""
    stack = getattr(_OVERRIDES, "stack", None)
    if stack:
        return stack[-1]
    return _DEFAULT


@contextlib.contextmanager
def use_backend(name: str):
    """Scoped thread-local backend override (does not affect other threads)."""
    backend = get_backend(name)
    stack = getattr(_OVERRIDES, "stack", None)
    if stack is None:
        stack = []
        _OVERRIDES.stack = stack
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()


def backend_info() -> dict:
    """Backend facts for the bench environment fingerprint."""
    return {
        "default": _DEFAULT.name,
        "kernels": _ckernels.kernel_status(),
    }


_env_choice = os.environ.get("REPRO_BACKEND")
if _env_choice:
    set_backend(_env_choice)  # raises on unknown names: fail at import, loudly
del _env_choice

"""Reverse-process samplers behind a pluggable registry.

The samplers drive the backward process of Figure 3 in the paper: starting
from Gaussian noise ``x_T``, the noise-prediction network is applied
repeatedly and the predicted noise removed at every step.  The iterative
structure is exactly what makes diffusion models sensitive to quantization:
quantization error injected at every step accumulates across the trajectory
— which also makes the *sampler choice and step budget* first-class
experimental variables.  Three solvers are registered out of the box:

* ``ddpm`` — ancestral sampling over the full training grid (Ho et al.),
* ``ddim`` — deterministic strided sampling (Song et al.),
* ``dpm2`` — a second-order Heun / DPM-Solver-2-style corrector that spends
  two model evaluations per step for a more accurate trajectory at small
  step budgets.

New solvers plug in through :func:`register_sampler`; a
:class:`~repro.diffusion.plan.GenerationPlan` names a registered sampler and
the registry's per-sampler metadata (``evals_per_step``,
``uses_step_budget``) feeds the serving cost model.

Classifier-free guidance is a *model* wrapper, not a sampler:
:class:`GuidedDenoiser` blends conditional and unconditional noise
predictions (two U-Net evaluations per step) and composes with every
registered sampler.

Every sampler shares one calling convention::

    sampler.sample(model, shape, rng, context=None, trace=None,
                   initial_noise=None, tracer=None, step_attrs=None)

``initial_noise`` pins ``x_T`` so seed-matched comparisons denoise identical
starting noise (paper Section VI-C); the optional ``trace`` callback lets the
quantization calibration machinery record intermediate latents at selected
timesteps (the paper's "initialization dataset" and "calibration dataset",
Section V).

``tracer`` (a :class:`repro.obs.Tracer`) books one span per denoising step;
``step_attrs`` is attached to every step span, which is how callers stamp
steps with roofline cost-model predictions for the calibration report.  The
default ``tracer=None`` skips even the clock reads — the loops guard with
``if tracer is not None`` so disabled telemetry costs nothing (guarded by
the ``telemetry.overhead`` bench workload).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, inference_mode
from .schedule import NoiseSchedule

TraceFn = Callable[[int, np.ndarray], None]


def _predict_noise(model, x: np.ndarray, t: np.ndarray,
                   context: Optional[Tensor]) -> np.ndarray:
    # repro: allow[hot-path-alloc] -- every sampler loop calls this under 'with inference_mode():'; the wrapper is graph-free
    prediction = model(Tensor(x), t, context=context)
    return prediction.data


def _predict_x0(x: np.ndarray, eps: np.ndarray, alpha_bar: float) -> np.ndarray:
    return (x - np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha_bar)


def _resolve_initial_noise(shape, rng: np.random.Generator,
                           initial_noise: Optional[np.ndarray]) -> np.ndarray:
    if initial_noise is not None:
        return np.asarray(initial_noise, dtype=np.float32).reshape(shape)
    return rng.standard_normal(shape).astype(np.float32)


class _StepBuffers:
    """Preallocated per-trajectory scratch arrays for the sampler loops.

    Every denoising update is a handful of elementwise operations whose
    temporaries numpy promotes to float64 (the schedule scalars are float64).
    Allocating them per step dominates the loop's non-model cost, so each
    ``sample()`` call owns two float64 work buffers plus one float32 output
    buffer and the updates run through ``out=`` ufuncs.  The operation order
    and dtypes mirror the expression forms exactly, so trajectories stay
    bit-identical to the unbuffered spelling.

    ``trace`` callbacks receive a *copy* of the latent: the live ``x`` buffer
    is overwritten by the next step.
    """

    __slots__ = ("work1", "work2", "out")

    def __init__(self, shape):
        self.work1 = np.empty(shape, dtype=np.float64)
        self.work2 = np.empty(shape, dtype=np.float64)
        self.out = np.empty(shape, dtype=np.float32)

    def finish(self, trace: Optional[TraceFn], t: int) -> np.ndarray:
        """Cast work1 into the float32 output and run the trace callback."""
        np.copyto(self.out, self.work1)
        if trace is not None:
            trace(t, self.out.copy())
        return self.out


# ----------------------------------------------------------------------
# classifier-free guidance
# ----------------------------------------------------------------------
class GuidedDenoiser:
    """Classifier-free guidance as a drop-in noise-prediction model.

    Wraps any denoiser and blends its conditional and unconditional
    predictions, ``eps = eps_uncond + s * (eps_cond - eps_uncond)``.  The
    unconditional branch re-evaluates the model with ``context=None`` (the
    U-Net's cross-attention blocks skip themselves), so a guided step costs
    two model evaluations — the 2x factor the serving cost model charges.
    When there is no context to condition on (or ``s == 1``) the blend
    degenerates to the plain prediction and the second evaluation is skipped.
    """

    def __init__(self, model, guidance_scale: float):
        self.model = model
        self.guidance_scale = guidance_scale

    def __call__(self, x: Tensor, t: np.ndarray,
                 context: Optional[Tensor] = None) -> Tensor:
        conditional = self.model(x, t, context=context)
        if context is None or self.guidance_scale == 1.0:
            return conditional
        unconditional = self.model(x, t, context=None)
        return unconditional + (conditional - unconditional) * self.guidance_scale


# ----------------------------------------------------------------------
# samplers
# ----------------------------------------------------------------------
class DDPMSampler:
    """Ancestral sampler following Ho et al. (paper Eq. 3)."""

    def __init__(self, schedule: NoiseSchedule):
        self.schedule = schedule

    # repro: hot -- T model evaluations per image; per-step temporaries dominate non-model cost
    def sample(self, model, shape, rng: np.random.Generator,
               context: Optional[Tensor] = None,
               trace: Optional[TraceFn] = None,
               initial_noise: Optional[np.ndarray] = None,
               tracer=None, step_attrs: Optional[Dict] = None) -> np.ndarray:
        """Generate samples of the given ``(N, C, H, W)`` shape.

        ``initial_noise`` pins ``x_T`` (the per-step transition noise still
        comes from ``rng``), so seed-matched comparisons start every DDPM
        trajectory from the same point just like DDIM ones.
        """
        schedule = self.schedule
        x = _resolve_initial_noise(shape, rng, initial_noise)
        buffers = _StepBuffers(shape)
        work = buffers.work1
        t_batch = np.empty((shape[0],), dtype=np.int64)
        with inference_mode():
            for t in reversed(range(schedule.num_timesteps)):
                if tracer is not None:
                    span_started = tracer.time()
                t_batch.fill(t)
                eps = _predict_noise(model, x, t_batch, context)
                alpha = schedule.alphas[t]
                alpha_bar = schedule.alphas_bar[t]
                beta = schedule.betas[t]
                # mean = (x - beta / sqrt(1 - alpha_bar) * eps) / sqrt(alpha)
                np.multiply(eps, beta / np.sqrt(1.0 - alpha_bar), out=work)
                np.subtract(x, work, out=work)
                np.divide(work, np.sqrt(alpha), out=work)
                if t > 0:
                    # repro: allow[hot-path-alloc] -- float64 draw + cast keeps trajectories bit-identical to the legacy spelling
                    noise = rng.standard_normal(shape).astype(np.float32)
                    np.multiply(noise, np.sqrt(beta), out=buffers.work2)
                    np.add(work, buffers.work2, out=work)
                x = buffers.finish(trace, t)
                if tracer is not None:
                    tracer.add_span("sampler.step", span_started, tracer.time(),
                                    category="sampler", process="sampler",
                                    attrs={"t": int(t), "sampler": "ddpm",
                                           **(step_attrs or {})})
        return x


#: Cached strided-timestep tables keyed by (train_steps, num_steps); every
#: pipeline call rebuilds its sampler from the generation plan, so the table
#: construction must not be repaid per call.
_TIMESTEP_TABLES: Dict[Tuple[int, int], Tuple[int, ...]] = {}

#: Serving replicas build samplers from worker threads (variant pool warmup
#: and per-request plan changes), so the table memo is lock-guarded.
_TIMESTEP_LOCK = threading.Lock()


def _validate_num_steps(schedule: NoiseSchedule, num_steps: int) -> None:
    if num_steps < 1 or num_steps > schedule.num_timesteps:
        raise ValueError(
            f"num_steps must be in [1, {schedule.num_timesteps}], got {num_steps}")


class DDIMSampler:
    """Deterministic DDIM sampler with a strided timestep schedule.

    ``num_steps`` selects how many of the training timesteps are visited;
    the paper uses 200 steps for unconditional generation and 50 for
    text-to-image, while this reproduction defaults to the per-model
    ``default_sampling_steps`` to keep runtimes tractable.
    """

    def __init__(self, schedule: NoiseSchedule, num_steps: int, eta: float = 0.0):
        _validate_num_steps(schedule, num_steps)
        self.schedule = schedule
        self.num_steps = num_steps
        self.eta = eta
        self.timesteps = self._build_timesteps(schedule.num_timesteps, num_steps)

    @staticmethod
    def _build_timesteps(train_steps: int, num_steps: int) -> List[int]:
        """Strided timestep table, cached per ``(train_steps, num_steps)``.

        Rounding collisions after deduplication must not silently shrink the
        table below ``num_steps`` visited timesteps; collisions are refilled
        with the smallest unused timesteps (deterministic), and an impossible
        request raises instead of under-delivering steps.
        """
        key = (train_steps, num_steps)
        with _TIMESTEP_LOCK:
            cached = _TIMESTEP_TABLES.get(key)
            if cached is None:
                stride = train_steps / num_steps
                raw = (min(int(round(stride * i)), train_steps - 1)
                       for i in range(num_steps))
                steps = set(raw)
                if len(steps) < num_steps:
                    for candidate in range(train_steps):
                        if len(steps) == num_steps:
                            break
                        steps.add(candidate)
                if len(steps) != num_steps:
                    raise ValueError(
                        f"cannot visit {num_steps} distinct timesteps out of "
                        f"{train_steps} training steps")
                cached = tuple(sorted(steps, reverse=True))
                _TIMESTEP_TABLES[key] = cached
        return list(cached)

    # repro: hot -- the paper's fast path: num_steps model evaluations per image
    def sample(self, model, shape, rng: np.random.Generator,
               context: Optional[Tensor] = None,
               trace: Optional[TraceFn] = None,
               initial_noise: Optional[np.ndarray] = None,
               tracer=None, step_attrs: Optional[Dict] = None) -> np.ndarray:
        """Generate samples; with ``eta=0`` the trajectory is deterministic
        given ``initial_noise`` (or the rng state), which is how the paper
        fixes seeds to compare quantization configurations on identical
        trajectories (Section VI-C)."""
        schedule = self.schedule
        x = _resolve_initial_noise(shape, rng, initial_noise)
        timesteps = self.timesteps
        buffers = _StepBuffers(shape)
        work, work2 = buffers.work1, buffers.work2
        t_batch = np.empty((shape[0],), dtype=np.int64)
        with inference_mode():
            for index, t in enumerate(timesteps):
                if tracer is not None:
                    span_started = tracer.time()
                t_batch.fill(t)
                eps = _predict_noise(model, x, t_batch, context)
                alpha_bar = schedule.alphas_bar[t]
                prev_t = timesteps[index + 1] if index + 1 < len(timesteps) else -1
                alpha_bar_prev = schedule.alphas_bar[prev_t] if prev_t >= 0 else 1.0
                sigma = self.eta * np.sqrt(
                    (1.0 - alpha_bar_prev) / (1.0 - alpha_bar)
                    * (1.0 - alpha_bar / alpha_bar_prev))
                # x0_pred = (x - sqrt(1 - alpha_bar) * eps) / sqrt(alpha_bar)
                np.multiply(eps, np.sqrt(1.0 - alpha_bar), out=work)
                np.subtract(x, work, out=work)
                np.divide(work, np.sqrt(alpha_bar), out=work)
                # x = sqrt(alpha_bar_prev) * x0_pred + direction
                np.multiply(eps,
                            np.sqrt(max(1.0 - alpha_bar_prev - sigma ** 2, 0.0)),
                            out=work2)
                np.multiply(work, np.sqrt(alpha_bar_prev), out=work)
                np.add(work, work2, out=work)
                if sigma > 0:
                    # repro: allow[hot-path-alloc] -- float64 draw + cast keeps trajectories bit-identical to the legacy spelling
                    noise = rng.standard_normal(shape).astype(np.float32)
                    np.multiply(noise, sigma, out=work2)
                    np.add(work, work2, out=work)
                x = buffers.finish(trace, t)
                if tracer is not None:
                    tracer.add_span("sampler.step", span_started, tracer.time(),
                                    category="sampler", process="sampler",
                                    attrs={"t": int(t), "index": index,
                                           "sampler": "ddim",
                                           **(step_attrs or {})})
        return x


def _ddim_step(x: np.ndarray, eps: np.ndarray, alpha_bar: float,
               alpha_bar_prev: float) -> np.ndarray:
    """One deterministic (eta=0) DDIM update from alpha_bar to alpha_bar_prev."""
    x0_pred = _predict_x0(x, eps, alpha_bar)
    direction = np.sqrt(max(1.0 - alpha_bar_prev, 0.0)) * eps
    return (np.sqrt(alpha_bar_prev) * x0_pred + direction).astype(np.float32)


def _ddim_step_into(x: np.ndarray, eps: np.ndarray, alpha_bar: float,
                    alpha_bar_prev: float, buffers: _StepBuffers,
                    out: np.ndarray) -> np.ndarray:
    """Buffer-reusing :func:`_ddim_step`; bit-identical, writes into ``out``.

    ``out`` may alias ``x``: every read of ``x`` happens before the final
    cast into ``out``.
    """
    work, work2 = buffers.work1, buffers.work2
    np.multiply(eps, np.sqrt(1.0 - alpha_bar), out=work)
    np.subtract(x, work, out=work)
    np.divide(work, np.sqrt(alpha_bar), out=work)
    np.multiply(eps, np.sqrt(max(1.0 - alpha_bar_prev, 0.0)), out=work2)
    np.multiply(work, np.sqrt(alpha_bar_prev), out=work)
    np.add(work, work2, out=work)
    np.copyto(out, work)
    return out


class DPMSolver2Sampler:
    """Second-order deterministic solver (Heun / DPM-Solver-2 style).

    Each step first takes the deterministic DDIM (Euler) update to the next
    timestep, re-evaluates the model there, and re-takes the step with the
    *averaged* noise prediction — the classic predictor-corrector that keeps
    trajectories accurate at small step budgets, where first-order solvers
    (and quantization error, per the paper) drift most.  The final step to
    ``x_0`` has no second grid point and falls back to first order, so the
    solver spends ``2 * num_steps - 1`` model evaluations.
    """

    def __init__(self, schedule: NoiseSchedule, num_steps: int):
        _validate_num_steps(schedule, num_steps)
        self.schedule = schedule
        self.num_steps = num_steps
        self.timesteps = DDIMSampler._build_timesteps(
            schedule.num_timesteps, num_steps)

    # repro: hot -- 2*num_steps-1 model evaluations per image
    def sample(self, model, shape, rng: np.random.Generator,
               context: Optional[Tensor] = None,
               trace: Optional[TraceFn] = None,
               initial_noise: Optional[np.ndarray] = None,
               tracer=None, step_attrs: Optional[Dict] = None) -> np.ndarray:
        schedule = self.schedule
        x = _resolve_initial_noise(shape, rng, initial_noise)
        timesteps = self.timesteps
        buffers = _StepBuffers(shape)
        midpoint = np.empty(shape, dtype=np.float32)
        eps_avg = np.empty(shape, dtype=np.float32)
        t_batch = np.empty((shape[0],), dtype=np.int64)
        prev_batch = np.empty((shape[0],), dtype=np.int64)
        with inference_mode():
            for index, t in enumerate(timesteps):
                if tracer is not None:
                    span_started = tracer.time()
                t_batch.fill(t)
                eps = _predict_noise(model, x, t_batch, context)
                alpha_bar = schedule.alphas_bar[t]
                prev_t = timesteps[index + 1] if index + 1 < len(timesteps) else -1
                if prev_t < 0:
                    x = _ddim_step_into(x, eps, alpha_bar, 1.0, buffers,
                                        buffers.out)
                else:
                    alpha_bar_prev = schedule.alphas_bar[prev_t]
                    _ddim_step_into(x, eps, alpha_bar, alpha_bar_prev, buffers,
                                    midpoint)
                    prev_batch.fill(prev_t)
                    eps_prev = _predict_noise(model, midpoint, prev_batch, context)
                    # eps_avg = 0.5 * (eps + eps_prev)
                    np.add(eps, eps_prev, out=eps_avg)
                    np.multiply(eps_avg, 0.5, out=eps_avg)
                    x = _ddim_step_into(x, eps_avg, alpha_bar, alpha_bar_prev,
                                        buffers, buffers.out)
                if trace is not None:
                    trace(t, x.copy())
                if tracer is not None:
                    tracer.add_span("sampler.step", span_started, tracer.time(),
                                    category="sampler", process="sampler",
                                    attrs={"t": int(t), "index": index,
                                           "sampler": "dpm2",
                                           **(step_attrs or {})})
        return x


# ----------------------------------------------------------------------
# sampler registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SamplerInfo:
    """Registry entry: how to build a sampler and what it costs.

    ``factory(schedule, num_steps, eta)`` builds the sampler (entries are
    free to ignore arguments that do not apply to them).
    ``evals_per_step`` is the model evaluations one step costs (before
    guidance doubles it), ``first_order_final_step`` credits back the
    evaluations a predictor-corrector saves on its last step, and
    ``uses_step_budget`` is False for samplers that always walk the full
    training grid (DDPM) — all three feed the serving cost model through
    :func:`repro.profiling.plan_model_evals`.
    ``deterministic`` is False for samplers that draw transition noise from
    the rng every step (DDPM); ``uses_eta`` marks samplers whose trajectory
    actually responds to the plan's ``eta`` — a plan normalizes away knobs
    its sampler ignores so fingerprints never split identical work.
    """

    name: str
    factory: Callable[[NoiseSchedule, int, float], object]
    evals_per_step: int = 1
    uses_step_budget: bool = True
    deterministic: bool = True
    uses_eta: bool = False
    first_order_final_step: bool = False


SAMPLER_REGISTRY: Dict[str, SamplerInfo] = {}


def register_sampler(name: str,
                     factory: Callable[[NoiseSchedule, int, float], object],
                     evals_per_step: int = 1,
                     uses_step_budget: bool = True,
                     deterministic: bool = True,
                     uses_eta: bool = False,
                     first_order_final_step: bool = False) -> SamplerInfo:
    """Register a sampler under ``name`` for use in generation plans."""
    if not name or not isinstance(name, str):
        raise ValueError(f"sampler name must be a non-empty string, got {name!r}")
    if evals_per_step < 1:
        raise ValueError(f"evals_per_step must be >= 1, got {evals_per_step}")
    info = SamplerInfo(name=name, factory=factory,
                       evals_per_step=evals_per_step,
                       uses_step_budget=uses_step_budget,
                       deterministic=deterministic,
                       uses_eta=uses_eta,
                       first_order_final_step=first_order_final_step)
    SAMPLER_REGISTRY[name] = info
    return info


def get_sampler_info(name: str) -> SamplerInfo:
    """Look up a registered sampler; unknown names list the known ones."""
    info = SAMPLER_REGISTRY.get(name)
    if info is None:
        raise ValueError(f"unknown sampler '{name}'; "
                         f"registered samplers: {available_samplers()}")
    return info


def available_samplers() -> Tuple[str, ...]:
    return tuple(sorted(SAMPLER_REGISTRY))


register_sampler(
    "ddpm", lambda schedule, num_steps, eta: DDPMSampler(schedule),
    uses_step_budget=False, deterministic=False)
register_sampler(
    "ddim", lambda schedule, num_steps, eta: DDIMSampler(schedule, num_steps,
                                                         eta=eta),
    uses_eta=True)
register_sampler(
    "dpm2", lambda schedule, num_steps, eta: DPMSolver2Sampler(schedule,
                                                               num_steps),
    evals_per_step=2, first_order_final_step=True)

"""Reverse-process samplers: DDPM (ancestral) and DDIM (deterministic).

The samplers drive the backward process of Figure 3 in the paper: starting
from Gaussian noise ``x_T``, the noise-prediction network is applied
repeatedly and the predicted noise removed at every step.  The iterative
structure is exactly what makes diffusion models sensitive to quantization:
quantization error injected at every step accumulates across the trajectory.

Both samplers accept an optional ``trace`` callback so that the quantization
calibration machinery can record intermediate latents and layer inputs at
selected timesteps (the paper's "initialization dataset" and "calibration
dataset", Section V).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..tensor import Tensor, no_grad
from .schedule import NoiseSchedule

TraceFn = Callable[[int, np.ndarray], None]


def _predict_noise(model, x: np.ndarray, t: np.ndarray,
                   context: Optional[Tensor]) -> np.ndarray:
    prediction = model(Tensor(x), t, context=context)
    return prediction.data


def _predict_x0(x: np.ndarray, eps: np.ndarray, alpha_bar: float) -> np.ndarray:
    return (x - np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha_bar)


class DDPMSampler:
    """Ancestral sampler following Ho et al. (paper Eq. 3)."""

    def __init__(self, schedule: NoiseSchedule):
        self.schedule = schedule

    def sample(self, model, shape, rng: np.random.Generator,
               context: Optional[Tensor] = None,
               trace: Optional[TraceFn] = None) -> np.ndarray:
        """Generate samples of the given ``(N, C, H, W)`` shape."""
        schedule = self.schedule
        x = rng.standard_normal(shape).astype(np.float32)
        with no_grad():
            for t in reversed(range(schedule.num_timesteps)):
                t_batch = np.full((shape[0],), t, dtype=np.int64)
                eps = _predict_noise(model, x, t_batch, context)
                alpha = schedule.alphas[t]
                alpha_bar = schedule.alphas_bar[t]
                beta = schedule.betas[t]
                mean = (x - beta / np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha)
                if t > 0:
                    noise = rng.standard_normal(shape).astype(np.float32)
                    x = mean + np.sqrt(beta) * noise
                else:
                    x = mean
                x = x.astype(np.float32)
                if trace is not None:
                    trace(t, x)
        return x


class DDIMSampler:
    """Deterministic DDIM sampler with a strided timestep schedule.

    ``num_steps`` selects how many of the training timesteps are visited;
    the paper uses 200 steps for unconditional generation and 50 for
    text-to-image, while this reproduction defaults to the per-model
    ``default_sampling_steps`` to keep runtimes tractable.
    """

    def __init__(self, schedule: NoiseSchedule, num_steps: int, eta: float = 0.0):
        if num_steps < 1 or num_steps > schedule.num_timesteps:
            raise ValueError(
                f"num_steps must be in [1, {schedule.num_timesteps}], got {num_steps}")
        self.schedule = schedule
        self.num_steps = num_steps
        self.eta = eta
        self.timesteps = self._build_timesteps(schedule.num_timesteps, num_steps)

    @staticmethod
    def _build_timesteps(train_steps: int, num_steps: int) -> List[int]:
        stride = train_steps / num_steps
        steps = [int(round(stride * i)) for i in range(num_steps)]
        steps = sorted(set(min(s, train_steps - 1) for s in steps))
        return list(reversed(steps))

    def sample(self, model, shape, rng: np.random.Generator,
               context: Optional[Tensor] = None,
               trace: Optional[TraceFn] = None,
               initial_noise: Optional[np.ndarray] = None) -> np.ndarray:
        """Generate samples; with ``eta=0`` the trajectory is deterministic
        given ``initial_noise`` (or the rng state), which is how the paper
        fixes seeds to compare quantization configurations on identical
        trajectories (Section VI-C)."""
        schedule = self.schedule
        if initial_noise is not None:
            x = np.asarray(initial_noise, dtype=np.float32).reshape(shape)
        else:
            x = rng.standard_normal(shape).astype(np.float32)
        timesteps = self.timesteps
        with no_grad():
            for index, t in enumerate(timesteps):
                t_batch = np.full((shape[0],), t, dtype=np.int64)
                eps = _predict_noise(model, x, t_batch, context)
                alpha_bar = schedule.alphas_bar[t]
                prev_t = timesteps[index + 1] if index + 1 < len(timesteps) else -1
                alpha_bar_prev = schedule.alphas_bar[prev_t] if prev_t >= 0 else 1.0
                x0_pred = _predict_x0(x, eps, alpha_bar)
                sigma = self.eta * np.sqrt(
                    (1.0 - alpha_bar_prev) / (1.0 - alpha_bar)
                    * (1.0 - alpha_bar / alpha_bar_prev))
                direction = np.sqrt(max(1.0 - alpha_bar_prev - sigma ** 2, 0.0)) * eps
                x = np.sqrt(alpha_bar_prev) * x0_pred + direction
                if sigma > 0:
                    x = x + sigma * rng.standard_normal(shape).astype(np.float32)
                x = x.astype(np.float32)
                if trace is not None:
                    trace(t, x)
        return x

"""Serializable generation plans: *how* a pipeline samples, as data.

A :class:`GenerationPlan` pins everything about the reverse process that the
paper treats as an experimental variable — which sampler walks the
trajectory, how many timesteps it visits, and the classifier-free-guidance
scale — in one JSON-round-trippable, content-fingerprinted value.  It plays
the same role for generation that :class:`~repro.core.QuantizationConfig`
plays for quantization:

* pipelines accept a plan everywhere they used to take ad-hoc flags
  (``DiffusionPipeline.generate(plan=...)`` replaces ``use_ddpm``),
* experiment rows carry a plan, so sampler x steps x guidance sweeps key
  their generate stages by plan fingerprint and cache correctly,
* the serving router emits a (scheme, plan) decision per request and the
  batcher groups requests by plan fingerprint.

Plans are frozen (hashable — they sit inside serving batch keys) and
validate their sampler name against the registry on construction, so a typo
fails at spec-build time rather than mid-run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional

from .samplers import GuidedDenoiser, get_sampler_info
from .schedule import NoiseSchedule


def _content_hash(value):
    # Imported lazily: repro.core pulls in the quantizer, which imports this
    # package back — a module-level import would be a cycle.
    from ..core.hashing import content_hash

    return content_hash(value)


@dataclass(frozen=True)
class GenerationPlan:
    """Declarative description of one generation trajectory.

    ``sampler`` names a registry entry (``ddpm`` / ``ddim`` / ``dpm2`` /
    any :func:`~repro.diffusion.samplers.register_sampler` addition);
    ``num_steps=None`` defers to the pipeline (ultimately the model's
    ``default_sampling_steps``); ``guidance_scale != 1`` turns on
    classifier-free guidance; ``eta`` adds DDIM stochasticity.
    """

    sampler: str = "ddim"
    num_steps: Optional[int] = None
    guidance_scale: float = 1.0
    eta: float = 0.0

    def __post_init__(self):
        info = get_sampler_info(self.sampler)  # fail fast on unknown samplers
        if self.num_steps is not None and self.num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {self.num_steps}")
        if self.num_steps is not None and not info.uses_step_budget:
            # Samplers that always walk the full training grid (DDPM) have
            # no step budget; normalizing it away keeps every layer that
            # keys on the plan (stage graph, batch keys, labels) consistent
            # with the work actually done.
            object.__setattr__(self, "num_steps", None)
        if self.eta != 0.0 and not info.uses_eta:
            # Same story for eta: a sampler that ignores it (DDPM, dpm2)
            # must not have its fingerprint split by a knob with no effect.
            object.__setattr__(self, "eta", 0.0)
        if self.guidance_scale <= 0.0:
            raise ValueError(
                f"guidance_scale must be > 0, got {self.guidance_scale}")
        if self.eta < 0.0:
            raise ValueError(f"eta must be >= 0, got {self.eta}")

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    @property
    def is_stochastic(self) -> bool:
        """Whether the trajectory draws fresh noise from the rng per step.

        True for ancestral samplers (DDPM) and for DDIM with ``eta > 0``;
        deterministic plans depend only on ``initial_noise``.
        """
        return self.eta > 0.0 or not get_sampler_info(self.sampler).deterministic

    def is_default(self) -> bool:
        """Whether this plan samples exactly like the pre-plan pipelines.

        ``num_steps`` is deliberately *excluded*: the step budget was always
        a pipeline parameter (and is keyed separately by the experiment
        stage graph), so a plan that only pins steps still follows the
        default DDIM trajectory.
        """
        return (self.sampler == "ddim" and self.guidance_scale == 1.0
                and self.eta == 0.0)

    def resolve_steps(self, default_steps: int,
                      train_steps: Optional[int] = None) -> int:
        """Concrete step count for a model with the given defaults.

        Samplers that ignore the step budget (DDPM walks the full training
        grid) resolve to ``train_steps`` so latency predictions and batch
        keys reflect the work actually done.
        """
        info = get_sampler_info(self.sampler)
        if not info.uses_step_budget and train_steps is not None:
            return train_steps
        return self.num_steps if self.num_steps is not None else default_steps

    def build_sampler(self, schedule: NoiseSchedule, default_steps: int):
        """Instantiate the registered sampler for ``schedule``."""
        info = get_sampler_info(self.sampler)
        steps = self.resolve_steps(default_steps, schedule.num_timesteps)
        return info.factory(schedule, steps, self.eta)

    def wrap_model(self, model):
        """Apply classifier-free guidance around ``model`` when requested."""
        if self.guidance_scale == 1.0:
            return model
        return GuidedDenoiser(model, self.guidance_scale)

    def validate_for_model(self, task: str, model_name: str) -> None:
        """Reject plan knobs the model cannot honor.

        Classifier-free guidance blends conditional and unconditional
        predictions, so it needs a conditioning context — requesting it for
        an unconditional model would silently produce unguided images
        mislabeled as guided.  Shared by the pipeline, the serving engine's
        admission check and the experiment compiler.
        """
        if self.guidance_scale != 1.0 and task != "text-to-image":
            raise ValueError(
                "classifier-free guidance needs a conditioning context; "
                f"model '{model_name}' is unconditional "
                f"(plan {self.describe()})")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the full plan (including the step budget)."""
        return _content_hash(self.to_dict())

    def trajectory_fingerprint(self) -> str:
        """Content hash of the trajectory shape, *excluding* ``num_steps``.

        The experiment stage graph keys the step budget through its existing
        ``num_steps`` input, so two spellings of the same work — a plan
        carrying ``num_steps=5`` vs. bench settings with ``num_steps=5`` —
        share artifacts.
        """
        data = self.to_dict()
        data.pop("num_steps")
        return _content_hash(data)

    def describe(self) -> str:
        """Short human-readable label, e.g. ``dpm2-5`` or ``ddim-g2.5``."""
        parts = [self.sampler]
        if self.num_steps is not None:
            parts.append(str(self.num_steps))
        if self.guidance_scale != 1.0:
            parts.append(f"g{self.guidance_scale:g}")
        if self.eta != 0.0:
            parts.append(f"eta{self.eta:g}")
        return "-".join(parts)

    def with_(self, **changes) -> "GenerationPlan":
        """A copy with the given fields replaced (plans are frozen)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "GenerationPlan":
        return cls(**data)

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "GenerationPlan":
        return cls.from_dict(json.loads(text))


#: The plan every legacy call path resolves to: deterministic DDIM at the
#: pipeline's step count, no guidance.
DEFAULT_PLAN = GenerationPlan()

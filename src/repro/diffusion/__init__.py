"""Diffusion processes, samplers, generation plans, pipelines and training."""

from .schedule import NoiseSchedule, cosine_beta_schedule, linear_beta_schedule
from .forward import add_noise, forward_trajectory
from .samplers import (
    DDIMSampler,
    DDPMSampler,
    DPMSolver2Sampler,
    GuidedDenoiser,
    SamplerInfo,
    available_samplers,
    get_sampler_info,
    register_sampler,
)
from .plan import DEFAULT_PLAN, GenerationPlan
from .pipeline import DiffusionPipeline
from .training import TrainingResult, train_autoencoder, train_denoiser

__all__ = [
    "NoiseSchedule", "linear_beta_schedule", "cosine_beta_schedule",
    "add_noise", "forward_trajectory",
    "DDPMSampler", "DDIMSampler", "DPMSolver2Sampler", "GuidedDenoiser",
    "SamplerInfo", "register_sampler", "get_sampler_info", "available_samplers",
    "GenerationPlan", "DEFAULT_PLAN",
    "DiffusionPipeline",
    "TrainingResult", "train_autoencoder", "train_denoiser",
]

"""Diffusion processes, samplers, pipelines and training loops."""

from .schedule import NoiseSchedule, cosine_beta_schedule, linear_beta_schedule
from .forward import add_noise, forward_trajectory
from .samplers import DDIMSampler, DDPMSampler
from .pipeline import DiffusionPipeline
from .training import TrainingResult, train_autoencoder, train_denoiser

__all__ = [
    "NoiseSchedule", "linear_beta_schedule", "cosine_beta_schedule",
    "add_noise", "forward_trajectory",
    "DDPMSampler", "DDIMSampler",
    "DiffusionPipeline",
    "TrainingResult", "train_autoencoder", "train_denoiser",
]

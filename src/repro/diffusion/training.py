"""Training loops used to produce the zoo's "pre-trained" checkpoints.

The paper performs *post-training* quantization on published checkpoints; no
such checkpoints can be downloaded offline, so the model zoo trains each
scaled-down model for a short, deterministic run on the synthetic datasets.
Two losses are involved:

* the standard denoising objective ``E || eps - eps_theta(x_t, t) ||^2`` for
  the U-Net, and
* a pixel reconstruction loss for the latent autoencoder of LDM/Stable
  Diffusion stand-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .. import nn
from ..models import DiffusionModel
from ..tensor import Tensor
from ..tensor import functional as F
from .forward import add_noise
from .schedule import NoiseSchedule


@dataclass
class TrainingResult:
    """Loss history returned by the training helpers."""

    losses: List[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.losses[0] if self.losses else float("nan")


def train_autoencoder(model: DiffusionModel, images: np.ndarray, num_steps: int = 60,
                      batch_size: int = 8, lr: float = 2e-3,
                      seed: int = 0) -> TrainingResult:
    """Train the latent autoencoder with an L2 reconstruction loss."""
    if model.autoencoder is None:
        return TrainingResult(losses=[])
    rng = np.random.default_rng(seed)
    autoencoder = model.autoencoder
    optimizer = nn.Adam(autoencoder.parameters(), lr=lr)
    losses: List[float] = []
    for _ in range(num_steps):
        batch_idx = rng.integers(0, len(images), size=batch_size)
        batch = Tensor(images[batch_idx])
        reconstruction = autoencoder(batch)
        loss = F.mse_loss(reconstruction, batch)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return TrainingResult(losses=losses)


def train_denoiser(model: DiffusionModel, images: np.ndarray,
                   prompts: Optional[Sequence[str]] = None,
                   num_steps: int = 120, batch_size: int = 8, lr: float = 2e-3,
                   seed: int = 0,
                   progress: Optional[Callable[[int, float], None]] = None
                   ) -> TrainingResult:
    """Train the U-Net with the denoising objective.

    For latent models the images are first encoded by the (already trained)
    autoencoder; for text-to-image models the per-image prompt is encoded by
    the text encoder and passed as cross-attention context.
    """
    rng = np.random.default_rng(seed)
    spec = model.spec
    schedule = NoiseSchedule.create(spec.train_timesteps)
    optimizer = nn.Adam(model.unet.parameters(), lr=lr)

    # Pre-encode the dataset into the space the U-Net operates in.
    if model.autoencoder is not None:
        encoded = []
        for start in range(0, len(images), 16):
            batch = Tensor(images[start:start + 16])
            encoded.append(model.autoencoder.encode(batch).data)
        latents = np.concatenate(encoded, axis=0)
    else:
        latents = np.asarray(images, dtype=np.float32)

    contexts = None
    if model.text_encoder is not None and prompts is not None:
        contexts = model.text_encoder.encode_prompts(list(prompts)).data

    losses: List[float] = []
    for step in range(num_steps):
        batch_idx = rng.integers(0, len(latents), size=batch_size)
        x0 = latents[batch_idx]
        t = rng.integers(0, schedule.num_timesteps, size=batch_size)
        xt, noise = add_noise(x0, t, schedule, rng=rng)
        context = Tensor(contexts[batch_idx]) if contexts is not None else None
        prediction = model.unet(Tensor(xt), t, context=context)
        loss = F.mse_loss(prediction, Tensor(noise))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
        if progress is not None:
            progress(step, losses[-1])
    return TrainingResult(losses=losses)

"""Noise schedules for the diffusion forward and backward processes.

Implements the quantities of paper Eq. (1)-(3): the per-step noise intensities
``beta_t``, ``alpha_t = 1 - beta_t`` and the cumulative products
``alpha_bar_t`` that parameterize both the forward noising process and the
reverse denoising mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def linear_beta_schedule(num_timesteps: int, beta_start: float = 1e-4,
                         beta_end: float = 2e-2,
                         reference_timesteps: int = 1000) -> np.ndarray:
    """The linear beta schedule used by DDPM/DDIM.

    The canonical endpoints (1e-4, 2e-2) are defined for a 1000-step forward
    process.  The scaled-down models here train with fewer steps, so the
    endpoints are rescaled by ``reference_timesteps / num_timesteps`` to keep
    the terminal state close to pure Gaussian noise regardless of ``T`` —
    the same total amount of noise is injected, just in fewer increments.
    """
    scale = reference_timesteps / num_timesteps
    betas = np.linspace(beta_start * scale, beta_end * scale, num_timesteps,
                        dtype=np.float64)
    return np.clip(betas, 0.0, 0.999)


def cosine_beta_schedule(num_timesteps: int, s: float = 8e-3) -> np.ndarray:
    """Cosine schedule (Nichol & Dhariwal); included for schedule ablations."""
    steps = np.arange(num_timesteps + 1, dtype=np.float64)
    alphas_bar = np.cos((steps / num_timesteps + s) / (1 + s) * np.pi / 2) ** 2
    alphas_bar /= alphas_bar[0]
    betas = 1.0 - alphas_bar[1:] / alphas_bar[:-1]
    return np.clip(betas, 0.0, 0.999)


_SCHEDULES = {
    "linear": linear_beta_schedule,
    "cosine": cosine_beta_schedule,
}


@dataclass(frozen=True)
class NoiseSchedule:
    """Precomputed schedule arrays shared by the samplers and the trainer."""

    betas: np.ndarray
    alphas: np.ndarray
    alphas_bar: np.ndarray

    @property
    def num_timesteps(self) -> int:
        return len(self.betas)

    @classmethod
    def create(cls, num_timesteps: int, kind: str = "linear") -> "NoiseSchedule":
        """Build a schedule of the given kind ("linear" or "cosine")."""
        try:
            betas = _SCHEDULES[kind](num_timesteps)
        except KeyError as exc:
            raise ValueError(
                f"unknown schedule '{kind}'; available: {sorted(_SCHEDULES)}") from exc
        alphas = 1.0 - betas
        alphas_bar = np.cumprod(alphas)
        return cls(betas=betas, alphas=alphas, alphas_bar=alphas_bar)

    def signal_and_noise_scales(self, t: np.ndarray) -> tuple:
        """Return ``(sqrt(alpha_bar_t), sqrt(1 - alpha_bar_t))`` for timesteps ``t``."""
        alpha_bar = self.alphas_bar[np.asarray(t, dtype=np.int64)]
        return np.sqrt(alpha_bar), np.sqrt(1.0 - alpha_bar)

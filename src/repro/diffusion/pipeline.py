"""End-to-end generation pipelines (the "Stable Diffusion architecture" box).

A pipeline owns a :class:`~repro.models.DiffusionModel` bundle plus a noise
schedule and sampler, and exposes ``generate`` for unconditional models and
``generate_from_prompts`` for text-to-image models.  Generated images are
returned as ``(N, C, H, W)`` float arrays in ``[-1, 1]``.

Pipelines are the unit the quantizer operates on: quantizing a pipeline
replaces the Conv2d/Linear layers of its U-Net with quantized wrappers while
leaving the text encoder and autoencoder decoder in full precision, exactly
matching the paper's experimental setup.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..models import DiffusionModel, ModelSpec
from ..tensor import Tensor, no_grad
from .samplers import DDIMSampler, DDPMSampler
from .schedule import NoiseSchedule


class DiffusionPipeline:
    """Generation pipeline around a (possibly quantized) diffusion model."""

    def __init__(self, model: DiffusionModel, spec: Optional[ModelSpec] = None,
                 num_steps: Optional[int] = None, schedule_kind: str = "linear"):
        self.model = model
        self.spec = spec or model.spec
        self.schedule = NoiseSchedule.create(self.spec.train_timesteps, schedule_kind)
        self.num_steps = num_steps or self.spec.default_sampling_steps
        self.sampler = DDIMSampler(self.schedule, self.num_steps)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def is_latent(self) -> bool:
        return self.spec.latent

    @property
    def is_text_to_image(self) -> bool:
        return self.spec.task == "text-to-image"

    def sample_shape(self, batch_size: int) -> tuple:
        return (batch_size,) + self.spec.sample_shape

    def initial_noise(self, batch_size: int, seed: int) -> np.ndarray:
        """Deterministic starting noise for seed-matched comparisons.

        The paper fixes the seed across runs being compared so that the
        full-precision and quantized models denoise identical noise inputs
        (Section VI-C); every benchmark here does the same through this
        method.
        """
        rng = np.random.default_rng(seed)
        return rng.standard_normal(self.sample_shape(batch_size)).astype(np.float32)

    def encode_prompts(self, prompts: Sequence[str]) -> Tensor:
        if self.model.text_encoder is None:
            raise ValueError(f"model '{self.spec.name}' is not a text-to-image model")
        with no_grad():
            return self.model.text_encoder.encode_prompts(prompts)

    def decode_latents(self, latents: np.ndarray) -> np.ndarray:
        if self.model.autoencoder is None:
            return np.clip(latents, -1.0, 1.0)
        with no_grad():
            images = self.model.autoencoder.decode(Tensor(latents))
        return images.data

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate(self, num_images: int, seed: int = 0, batch_size: int = 8,
                 use_ddpm: bool = False, trace=None) -> np.ndarray:
        """Unconditional generation of ``num_images`` images."""
        if self.is_text_to_image:
            raise ValueError(
                "use generate_from_prompts for text-to-image pipelines")
        return self._run(num_images, seed, batch_size, context_batches=None,
                         use_ddpm=use_ddpm, trace=trace)

    def generate_from_prompts(self, prompts: Sequence[str], seed: int = 0,
                              batch_size: int = 8, trace=None) -> np.ndarray:
        """Text-to-image generation, one image per prompt."""
        prompts = list(prompts)
        contexts: List[Tensor] = []
        for start in range(0, len(prompts), batch_size):
            contexts.append(self.encode_prompts(prompts[start:start + batch_size]))
        return self._run(len(prompts), seed, batch_size, context_batches=contexts,
                         use_ddpm=False, trace=trace)

    def _run(self, num_images: int, seed: int, batch_size: int,
             context_batches, use_ddpm: bool, trace) -> np.ndarray:
        sampler = (DDPMSampler(self.schedule) if use_ddpm else self.sampler)
        outputs = []
        batch_index = 0
        for start in range(0, num_images, batch_size):
            count = min(batch_size, num_images - start)
            shape = self.sample_shape(count)
            noise = self.initial_noise(count, seed + start)
            rng = np.random.default_rng(seed + start + 1)
            context = context_batches[batch_index] if context_batches else None
            if use_ddpm:
                latents = sampler.sample(self.model, shape, rng, context=context,
                                         trace=trace)
            else:
                latents = sampler.sample(self.model, shape, rng, context=context,
                                         trace=trace, initial_noise=noise)
            outputs.append(self.decode_latents(latents))
            batch_index += 1
        return np.concatenate(outputs, axis=0)

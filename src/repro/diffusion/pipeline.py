"""End-to-end generation pipelines (the "Stable Diffusion architecture" box).

A pipeline owns a :class:`~repro.models.DiffusionModel` bundle plus a noise
schedule and a :class:`~repro.diffusion.plan.GenerationPlan`, and exposes
``generate`` for unconditional models and ``generate_from_prompts`` for
text-to-image models.  Generated images are returned as ``(N, C, H, W)``
float arrays in ``[-1, 1]``.

*How* to sample — which registered sampler, how many steps, what guidance
scale — is data, not code: every generation entry point accepts a
``plan=`` override and the legacy spellings (``use_ddpm=True``, bare
``num_steps``) are thin shims that resolve to plans.  The default plan is
bit-exact with the historical behaviour (deterministic DDIM at the
pipeline's step count, no guidance).

Pipelines are the unit the quantizer operates on: quantizing a pipeline
replaces the Conv2d/Linear layers of its U-Net with quantized wrappers while
leaving the text encoder and autoencoder decoder in full precision, exactly
matching the paper's experimental setup.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..models import DiffusionModel, ModelSpec
from ..tensor import Tensor, inference_mode
from .plan import DEFAULT_PLAN, GenerationPlan
from .schedule import NoiseSchedule


class DiffusionPipeline:
    """Generation pipeline around a (possibly quantized) diffusion model."""

    def __init__(self, model: DiffusionModel, spec: Optional[ModelSpec] = None,
                 num_steps: Optional[int] = None, schedule_kind: str = "linear",
                 plan: Optional[GenerationPlan] = None):
        self.model = model
        self.spec = spec or model.spec
        self.schedule = NoiseSchedule.create(self.spec.train_timesteps, schedule_kind)
        self.plan = plan or DEFAULT_PLAN
        base_steps = num_steps or self.spec.default_sampling_steps
        self.num_steps = self.plan.resolve_steps(base_steps,
                                                 self.schedule.num_timesteps)
        self.sampler = self.plan.build_sampler(self.schedule, self.num_steps)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def is_latent(self) -> bool:
        return self.spec.latent

    @property
    def is_text_to_image(self) -> bool:
        return self.spec.task == "text-to-image"

    def sample_shape(self, batch_size: int) -> tuple:
        return (batch_size,) + self.spec.sample_shape

    def initial_noise(self, batch_size: int, seed: int) -> np.ndarray:
        """Deterministic starting noise for seed-matched comparisons.

        The paper fixes the seed across runs being compared so that the
        full-precision and quantized models denoise identical noise inputs
        (Section VI-C); every benchmark here does the same through this
        method.
        """
        rng = np.random.default_rng(seed)
        return rng.standard_normal(self.sample_shape(batch_size)).astype(np.float32)

    def encode_prompts(self, prompts: Sequence[str]) -> Tensor:
        if self.model.text_encoder is None:
            raise ValueError(f"model '{self.spec.name}' is not a text-to-image model")
        with inference_mode():
            return self.model.text_encoder.encode_prompts(prompts)

    def decode_latents(self, latents: np.ndarray) -> np.ndarray:
        if self.model.autoencoder is None:
            return np.clip(latents, -1.0, 1.0)
        with inference_mode():
            images = self.model.autoencoder.decode(Tensor(latents))
        return images.data

    def resolve_plan(self, plan: Optional[GenerationPlan] = None,
                     use_ddpm: bool = False) -> GenerationPlan:
        """The plan a generation call will follow (``None`` -> the pipeline's).

        ``use_ddpm`` is the legacy boolean spelling; it rewrites the sampler
        on whatever plan is in effect so old call sites keep working.
        """
        plan = plan if plan is not None else self.plan
        if use_ddpm and plan.sampler != "ddpm":
            plan = plan.with_(sampler="ddpm")
        return plan

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate(self, num_images: int, seed: int = 0, batch_size: int = 8,
                 use_ddpm: bool = False, trace=None,
                 plan: Optional[GenerationPlan] = None) -> np.ndarray:
        """Unconditional generation of ``num_images`` images."""
        if self.is_text_to_image:
            raise ValueError(
                "use generate_from_prompts for text-to-image pipelines")
        plan = self.resolve_plan(plan, use_ddpm=use_ddpm)
        plan.validate_for_model(self.spec.task, self.spec.name)
        return self._run(num_images, seed, batch_size, context_batches=None,
                         plan=plan, trace=trace)

    def encode_prompts_deduped(self, prompts: Sequence[str],
                               batch_size: int = 8) -> np.ndarray:
        """Encode prompts, running the text encoder once per *unique* prompt.

        Serving workloads repeat popular prompts heavily; encoding the unique
        set and gathering rows back into request order makes the encoder cost
        proportional to the number of distinct prompts.  Returns the stacked
        context embeddings as a ``(len(prompts), tokens, dim)`` array.
        """
        prompts = list(prompts)
        unique = list(dict.fromkeys(prompts))
        encoded: List[np.ndarray] = []
        for start in range(0, len(unique), batch_size):
            encoded.append(self.encode_prompts(unique[start:start + batch_size]).data)
        rows = np.concatenate(encoded, axis=0)
        index = {prompt: i for i, prompt in enumerate(unique)}
        return rows[[index[prompt] for prompt in prompts]]

    def generate_from_prompts(self, prompts: Sequence[str], seed: int = 0,
                              batch_size: int = 8, trace=None,
                              plan: Optional[GenerationPlan] = None) -> np.ndarray:
        """Text-to-image generation, one image per prompt.

        Repeated prompts are deduplicated before encoding: the text encoder
        runs once per unique prompt and its outputs are gathered back into
        prompt order, so popular-prompt workloads pay encoder cost only for
        the distinct prompts.
        """
        prompts = list(prompts)
        full_context = self.encode_prompts_deduped(prompts, batch_size)
        contexts: List[Tensor] = []
        for start in range(0, len(prompts), batch_size):
            contexts.append(Tensor(full_context[start:start + batch_size]))
        return self._run(len(prompts), seed, batch_size, context_batches=contexts,
                         plan=self.resolve_plan(plan), trace=trace)

    def generate_batch(self, seeds: Sequence[int],
                       context: Optional[Tensor] = None,
                       trace=None,
                       plan: Optional[GenerationPlan] = None,
                       tracer=None, step_attrs=None) -> np.ndarray:
        """Serving path: generate one already-formed batch in a single pass.

        Unlike :meth:`generate` / :meth:`generate_from_prompts` (which chunk a
        dataset into fixed-size batches under one seed), this runs exactly one
        sampler pass over a batch assembled elsewhere — the dynamic batcher in
        :mod:`repro.serving` — with a *per-request* seed for each row and an
        optional precomputed (possibly cached) context.  ``plan`` selects the
        trajectory per call, so one pooled variant serves every routed step
        budget and sampler without rebuilding the pipeline.  Each row's output
        depends only on its own seed, context and plan, never on its
        batchmates, so a request's image is identical whatever batch it lands
        in.

        For *stochastic* plans (DDPM, DDIM with ``eta > 0``) the per-step
        transition noise cannot be shared across a batch without coupling
        rows to their batchmates, so the sampler runs once per row with a
        per-seed rng — correctness over batching efficiency; deterministic
        plans (the serving default) keep the single fused pass.
        """
        seeds = list(seeds)
        if not seeds:
            return np.zeros((0,) + self.spec.sample_shape, dtype=np.float32)
        if context is not None and context.data.shape[0] != len(seeds):
            raise ValueError(
                f"context batch dimension {context.data.shape[0]} does not "
                f"match {len(seeds)} seeds")
        plan = self.resolve_plan(plan)
        if plan.guidance_scale != 1.0 and context is None:
            # Without a context the guided blend degenerates to the plain
            # prediction — failing beats silently serving unguided images
            # labeled as guided.
            raise ValueError(
                "classifier-free guidance needs a conditioning context; "
                f"generate_batch got context=None (plan {plan.describe()})")
        if plan.is_stochastic and len(seeds) > 1:
            rows = []
            for position, seed in enumerate(seeds):
                row_context = (Tensor(context.data[position:position + 1])
                               if context is not None else None)
                rows.append(self.generate_batch([seed], context=row_context,
                                                trace=trace, plan=plan,
                                                tracer=tracer,
                                                step_attrs=step_attrs))
            return np.concatenate(rows, axis=0)
        sampler = plan.build_sampler(self.schedule, self.num_steps)
        model = plan.wrap_model(self.model)
        noise = np.concatenate([self.initial_noise(1, s) for s in seeds], axis=0)
        rng = np.random.default_rng(seeds[0] + 1)
        if tracer is None:
            # Not just an optimization: third-party samplers registered
            # before telemetry existed may not accept the tracer kwargs.
            latents = sampler.sample(model, self.sample_shape(len(seeds)),
                                     rng, context=context, trace=trace,
                                     initial_noise=noise)
        else:
            latents = sampler.sample(model, self.sample_shape(len(seeds)),
                                     rng, context=context, trace=trace,
                                     initial_noise=noise, tracer=tracer,
                                     step_attrs=step_attrs)
        return self.decode_latents(latents)

    def _run(self, num_images: int, seed: int, batch_size: int,
             context_batches, plan: GenerationPlan, trace) -> np.ndarray:
        sampler = plan.build_sampler(self.schedule, self.num_steps)
        model = plan.wrap_model(self.model)
        outputs = []
        batch_index = 0
        for start in range(0, num_images, batch_size):
            count = min(batch_size, num_images - start)
            shape = self.sample_shape(count)
            noise = self.initial_noise(count, seed + start)
            rng = np.random.default_rng(seed + start + 1)
            context = context_batches[batch_index] if context_batches else None
            latents = sampler.sample(model, shape, rng, context=context,
                                     trace=trace, initial_noise=noise)
            outputs.append(self.decode_latents(latents))
            batch_index += 1
        return np.concatenate(outputs, axis=0)

"""Forward (noising) process of the diffusion model.

Implements ``q(x_t | x_0)`` in closed form (paper Eq. 1-2): given a clean
sample ``x_0`` and timestep ``t``, the noisy sample is
``sqrt(alpha_bar_t) * x_0 + sqrt(1 - alpha_bar_t) * eps`` with
``eps ~ N(0, I)``.  This is used during training of the zoo models and when
constructing calibration data.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .schedule import NoiseSchedule


def add_noise(x0: np.ndarray, t: np.ndarray, schedule: NoiseSchedule,
              rng: Optional[np.random.Generator] = None,
              noise: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``x_t ~ q(x_t | x_0)`` and return ``(x_t, eps)``.

    Parameters
    ----------
    x0:
        Clean samples of shape ``(N, C, H, W)``.
    t:
        Integer timesteps of shape ``(N,)``.
    noise:
        Optional pre-drawn Gaussian noise (used for deterministic tests).
    """
    x0 = np.asarray(x0, dtype=np.float32)
    if noise is None:
        rng = rng or np.random.default_rng()
        noise = rng.standard_normal(x0.shape).astype(np.float32)
    signal_scale, noise_scale = schedule.signal_and_noise_scales(t)
    signal_scale = signal_scale.reshape(-1, 1, 1, 1).astype(np.float32)
    noise_scale = noise_scale.reshape(-1, 1, 1, 1).astype(np.float32)
    xt = signal_scale * x0 + noise_scale * noise
    return xt.astype(np.float32), noise.astype(np.float32)


def forward_trajectory(x0: np.ndarray, schedule: NoiseSchedule,
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Return the full forward trajectory ``x_0 ... x_T`` for one sample.

    Mirrors Figure 2 of the paper; mostly useful for visual examples and for
    property tests asserting that the terminal state approaches pure noise.
    """
    rng = rng or np.random.default_rng()
    steps = [np.asarray(x0, dtype=np.float32)]
    current = steps[0]
    for t in range(schedule.num_timesteps):
        beta = schedule.betas[t]
        noise = rng.standard_normal(current.shape).astype(np.float32)
        current = np.sqrt(1.0 - beta) * current + np.sqrt(beta) * noise
        steps.append(current.astype(np.float32))
    return np.stack(steps, axis=0)

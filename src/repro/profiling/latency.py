"""Roofline-style latency estimation over the analytic layer costs.

Each layer's latency on a device is modelled as
``max(flops / peak_flops, bytes_moved / memory_bandwidth) + launch_overhead``
— the classic roofline: compute-bound layers are limited by arithmetic
throughput, memory-bound layers by bandwidth.  Two device profiles mirror the
platforms of the paper's characterization (an NVIDIA V100-class GPU and an
Intel Xeon Gold-class CPU); their absolute numbers are datasheet-level, so
only the *relative* breakdown and GPU-vs-CPU ratios are meaningful, which is
exactly what Figure 4 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from .cost_model import (
    BYTES_FP32,
    LayerCost,
    plan_model_evals,
    scheme_bytes_per_element,
)


@dataclass(frozen=True)
class DeviceProfile:
    """Simplified hardware model for roofline latency estimation."""

    name: str
    peak_flops: float          # floating-point operations per second
    memory_bandwidth: float    # bytes per second
    layer_overhead: float      # fixed per-layer launch/dispatch cost in seconds

    def layer_latency(self, cost: LayerCost,
                      bytes_per_element: float = BYTES_FP32,
                      weight_bytes_per_element: Optional[float] = None) -> float:
        """Roofline latency of one layer.

        ``bytes_per_element`` sizes the activation traffic;
        ``weight_bytes_per_element`` (defaulting to the same value) sizes the
        weight traffic, so weight-only quantization can be modelled
        separately from activation quantization.
        """
        if weight_bytes_per_element is None:
            weight_bytes_per_element = bytes_per_element
        compute_time = cost.flops / self.peak_flops
        bytes_moved = (cost.activation_bytes(bytes_per_element)
                       + cost.weight_bytes(weight_bytes_per_element))
        memory_time = bytes_moved / self.memory_bandwidth
        return max(compute_time, memory_time) + self.layer_overhead


#: V100-class GPU: ~14 TFLOPS FP32, ~900 GB/s HBM2, microsecond-scale launches.
GPU_V100 = DeviceProfile(name="gpu-v100", peak_flops=14e12,
                         memory_bandwidth=900e9, layer_overhead=8e-6)

#: Xeon Gold 5115-class CPU: ~0.7 TFLOPS FP32, ~100 GB/s, negligible dispatch.
CPU_XEON = DeviceProfile(name="cpu-xeon", peak_flops=0.7e12,
                         memory_bandwidth=100e9, layer_overhead=1e-6)

DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    GPU_V100.name: GPU_V100,
    CPU_XEON.name: CPU_XEON,
}


def estimate_latency(costs: Iterable[LayerCost], device: DeviceProfile,
                     bytes_per_element: float = BYTES_FP32,
                     weight_bytes_per_element: Optional[float] = None) -> float:
    """Total estimated latency of one forward pass on ``device``."""
    return float(sum(device.layer_latency(cost, bytes_per_element,
                                          weight_bytes_per_element)
                     for cost in costs))


def estimate_scheme_latency(costs: Iterable[LayerCost], device: DeviceProfile,
                            weight_scheme, activation_scheme=None) -> float:
    """Forward-pass latency under a quantization scheme's byte widths.

    Resolves the scheme(s) to bytes-per-element (FP8 → 1, FP4 → 0.5, ...)
    so memory-bound layers speed up in proportion to the precision, the
    mechanism behind the paper's FP8/FP4 bandwidth savings.  When
    ``activation_scheme`` is omitted the weight scheme sizes both tensors.
    This is the cost model the serving subsystem's SLO router queries.
    """
    weight_bpe = scheme_bytes_per_element(weight_scheme)
    activation_bpe = (weight_bpe if activation_scheme is None
                      else scheme_bytes_per_element(activation_scheme))
    return estimate_latency(costs, device, bytes_per_element=activation_bpe,
                            weight_bytes_per_element=weight_bpe)


def estimate_plan_latency(costs: Iterable[LayerCost], device: DeviceProfile,
                          weight_scheme, num_steps: int,
                          guidance_scale: float = 1.0,
                          solver_evals_per_step: int = 1,
                          first_order_final_step: bool = False,
                          activation_scheme=None) -> float:
    """End-to-end generation latency of a (scheme, generation-plan) pair.

    One forward pass is priced by :func:`estimate_scheme_latency`; the plan
    multiplies it by :func:`~repro.profiling.cost_model.plan_model_evals`
    (steps x solver order, doubled under classifier-free guidance).  This is
    the two-dimensional quantity the serving router minimizes over: schemes
    change the per-forward cost, plans change how many forwards are paid.
    """
    per_forward = estimate_scheme_latency(costs, device, weight_scheme,
                                          activation_scheme)
    return per_forward * plan_model_evals(num_steps, guidance_scale,
                                          solver_evals_per_step,
                                          first_order_final_step)


def measure_latency(fn: Callable[[], object],
                    clock: Callable[[], float] = time.perf_counter,
                    repeats: int = 3, warmup: int = 1) -> Dict[str, float]:
    """Measure a callable's latency on an *injectable* clock.

    The analytic estimators above predict latency; this is their measured
    counterpart, used by the calibration harness
    (:func:`repro.obs.run_cost_model_calibration`) to quantify the model's
    error.  ``clock`` is any zero-argument callable returning seconds —
    ``time.perf_counter`` by default, or a
    :class:`~repro.serving.clock.VirtualClock` so modeled components can
    be "measured" in virtual time and tests run clock-free.  Returns
    ``best_s`` / ``mean_s`` / ``last_s`` over ``repeats`` timed calls
    (after ``warmup`` untimed ones).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        started = clock()
        fn()
        samples.append(clock() - started)
    return {"best_s": min(samples), "mean_s": sum(samples) / len(samples),
            "last_s": samples[-1], "repeats": repeats}


def latency_breakdown(costs: Iterable[LayerCost], device: DeviceProfile,
                      bytes_per_element: float = BYTES_FP32) -> Dict[str, float]:
    """Latency per layer kind, the quantity plotted in the paper's Figure 4."""
    breakdown: Dict[str, float] = {}
    for cost in costs:
        breakdown[cost.kind] = breakdown.get(cost.kind, 0.0) + device.layer_latency(
            cost, bytes_per_element)
    return breakdown


def normalized_breakdown(breakdown: Dict[str, float]) -> Dict[str, float]:
    """Normalize a latency breakdown so the values sum to 1.0 (Figure 4 style)."""
    total = sum(breakdown.values())
    if total <= 0:
        return {kind: 0.0 for kind in breakdown}
    return {kind: value / total for kind, value in breakdown.items()}


def grouped_breakdown(breakdown: Dict[str, float]) -> Dict[str, float]:
    """Group the kinds into the paper's Figure 4 categories.

    Figure 4 groups layers into Conv2d, Linear (including attention
    projections and matmuls) and "normalization + SiLU".
    """
    groups = {"conv": 0.0, "linear": 0.0, "norm+silu": 0.0}
    for kind, value in breakdown.items():
        if kind == "conv":
            groups["conv"] += value
        elif kind in ("linear", "attention"):
            groups["linear"] += value
        else:
            groups["norm+silu"] += value
    return groups

"""Analytical compute/memory characterization (paper Section III)."""

from .cost_model import (
    BYTES_FP32,
    BYTES_FP16,
    BYTES_FP8,
    BYTES_FP4,
    LayerCost,
    estimate_utilization,
    plan_model_evals,
    scheme_bytes_per_element,
    flops_by_kind,
    paper_scale_stable_diffusion_config,
    total_flops,
    total_macs,
    total_weight_elements,
    unet_layer_costs,
    weight_traffic_bytes,
)
from .latency import (
    CPU_XEON,
    DEVICE_PROFILES,
    GPU_V100,
    DeviceProfile,
    estimate_latency,
    estimate_plan_latency,
    estimate_scheme_latency,
    grouped_breakdown,
    latency_breakdown,
    measure_latency,
    normalized_breakdown,
)
from .memory import MemoryEstimate, estimate_peak_memory, memory_vs_batch_size

__all__ = [
    "LayerCost", "unet_layer_costs", "total_flops", "total_macs",
    "total_weight_elements", "weight_traffic_bytes",
    "flops_by_kind", "paper_scale_stable_diffusion_config",
    "BYTES_FP32", "BYTES_FP16", "BYTES_FP8", "BYTES_FP4",
    "scheme_bytes_per_element", "plan_model_evals", "estimate_utilization",
    "DeviceProfile", "GPU_V100", "CPU_XEON", "DEVICE_PROFILES",
    "estimate_latency", "estimate_scheme_latency", "estimate_plan_latency",
    "latency_breakdown", "normalized_breakdown",
    "grouped_breakdown", "measure_latency",
    "MemoryEstimate", "estimate_peak_memory", "memory_vs_batch_size",
]

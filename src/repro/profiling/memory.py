"""Peak inference memory estimation (paper Section III, Figure 5).

The paper measures peak VRAM of Stable Diffusion inference with Nsight and
finds it dominated by the attention score tensors (e.g. a
``(256, 4096, 4096)`` tensor at batch 16 needing ~17 GB in FP32).  The
estimator here reproduces that accounting analytically:

    peak ≈ weight bytes
         + live activation bytes of the most expensive layer
           (for attention layers this includes the score tensor)
         + skip-connection activations that must stay resident across the
           U-Net's encoder/decoder span.

Quantization reduces both the weight term and the activation terms in
proportion to the bytes per element, which is how the paper arrives at the
4x / 8x reduction potential for FP8 / FP4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..models.unet import UNetConfig
from .cost_model import BYTES_FP32, LayerCost, unet_layer_costs


@dataclass
class MemoryEstimate:
    """Breakdown of the peak-memory estimate in bytes."""

    weight_bytes: float
    peak_layer_bytes: float
    skip_bytes: float
    peak_layer_name: str

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.peak_layer_bytes + self.skip_bytes

    @property
    def total_gib(self) -> float:
        return self.total_bytes / 2 ** 30


def _skip_connection_bytes(config: UNetConfig, sample_size: int, batch_size: int,
                           activation_bytes: int) -> float:
    """Bytes held by encoder activations awaiting their decoder concat."""
    total_elements = 0.0
    size = sample_size
    channels = config.base_channels
    total_elements += batch_size * channels * size * size  # input conv output
    current = channels
    for level, multiplier in enumerate(config.channel_multipliers):
        out_ch = config.base_channels * multiplier
        for _ in range(config.num_res_blocks):
            current = out_ch
            total_elements += batch_size * current * size * size
        if level != len(config.channel_multipliers) - 1:
            size //= 2
            total_elements += batch_size * current * size * size
    return total_elements * activation_bytes


def estimate_peak_memory(config: UNetConfig, sample_size: int, batch_size: int,
                         weight_bytes_per_element: int = BYTES_FP32,
                         activation_bytes_per_element: int = BYTES_FP32,
                         context_tokens: int = 16) -> MemoryEstimate:
    """Estimate peak inference memory for one U-Net forward pass."""
    costs: List[LayerCost] = unet_layer_costs(config, sample_size, batch_size,
                                              context_tokens)
    weight_bytes = sum(c.weight_elements for c in costs) * weight_bytes_per_element

    peak_layer_bytes = 0.0
    peak_layer_name = ""
    for cost in costs:
        live = (cost.input_elements + cost.output_elements
                + cost.extra.get("score_elements", 0.0))
        live_bytes = live * activation_bytes_per_element
        if live_bytes > peak_layer_bytes:
            peak_layer_bytes = live_bytes
            peak_layer_name = cost.name

    skip_bytes = _skip_connection_bytes(config, sample_size, batch_size,
                                        activation_bytes_per_element)
    return MemoryEstimate(weight_bytes=weight_bytes,
                          peak_layer_bytes=peak_layer_bytes,
                          skip_bytes=skip_bytes,
                          peak_layer_name=peak_layer_name)


def memory_vs_batch_size(config: UNetConfig, sample_size: int,
                         batch_sizes, bytes_per_element: int = BYTES_FP32,
                         context_tokens: int = 16) -> Dict[int, MemoryEstimate]:
    """Peak-memory estimates across batch sizes (the series of Figure 5)."""
    return {batch: estimate_peak_memory(config, sample_size, batch,
                                        weight_bytes_per_element=bytes_per_element,
                                        activation_bytes_per_element=bytes_per_element,
                                        context_tokens=context_tokens)
            for batch in batch_sizes}

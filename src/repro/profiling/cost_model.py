"""Analytical compute/memory cost model of the U-Net (paper Section III).

The paper characterizes Stable Diffusion inference by measuring per-layer
latency on a V100 GPU / Xeon CPU and peak VRAM with Nsight.  Without that
hardware, the reproduction derives the same quantities analytically: the cost
model walks the U-Net architecture (the same ``UNetConfig`` the real models
are built from, or a paper-scale configuration), computes per-layer FLOPs,
weight bytes and activation bytes, and feeds them to a roofline latency model
(:mod:`repro.profiling.latency`) and a peak-memory estimator
(:mod:`repro.profiling.memory`).

Layer types mirror the breakdown of the paper's Figure 4: ``conv``,
``linear`` (which includes the attention projections), ``norm``, ``silu`` and
``attention`` (the score/value matmuls, which dominate memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..models.unet import UNetConfig

BYTES_FP32 = 4
BYTES_FP16 = 2
BYTES_FP8 = 1
BYTES_FP4 = 0.5


def scheme_bytes_per_element(scheme) -> float:
    """Bytes per element a quantization scheme moves through memory.

    Resolves any registered :class:`~repro.core.schemes.QuantScheme` (or its
    name) to ``bits / 8`` — FP8/INT8 move one byte per element, FP4/INT4 half
    a byte (hardware packs two values per byte).  This is what makes the
    roofline's memory-bound term scheme-dependent: quantized layers move
    fewer bytes, so memory-bound layers get proportionally faster even
    though FLOPs are unchanged.
    """
    from ..core.schemes import get_scheme

    return get_scheme(scheme).bits / 8.0


@dataclass
class LayerCost:
    """Cost of a single layer invocation in one U-Net forward pass."""

    name: str
    kind: str  # conv | linear | norm | silu | attention
    flops: float
    weight_elements: float
    output_elements: float
    input_elements: float
    extra: Dict[str, float] = field(default_factory=dict)

    def weight_bytes(self, bytes_per_element: float = BYTES_FP32) -> float:
        return self.weight_elements * bytes_per_element

    def activation_bytes(self, bytes_per_element: float = BYTES_FP32) -> float:
        return (self.input_elements + self.output_elements) * bytes_per_element


class _CostAccumulator:
    """Helper building the per-layer cost list while walking the architecture."""

    def __init__(self, batch_size: int, context_tokens: int):
        self.batch = batch_size
        self.context_tokens = context_tokens
        self.costs: List[LayerCost] = []

    # ------------------------------------------------------------------
    def conv(self, name: str, in_ch: int, out_ch: int, h: int, w: int,
             kernel: int = 3, stride: int = 1) -> None:
        out_h, out_w = h // stride, w // stride
        macs = self.batch * out_h * out_w * out_ch * in_ch * kernel * kernel
        self.costs.append(LayerCost(
            name=name, kind="conv", flops=2.0 * macs,
            weight_elements=out_ch * in_ch * kernel * kernel + out_ch,
            input_elements=self.batch * in_ch * h * w,
            output_elements=self.batch * out_ch * out_h * out_w,
            extra={"gemm_m": float(self.batch * out_h * out_w)}))

    def linear(self, name: str, tokens: int, in_features: int,
               out_features: int, bias: bool = True) -> None:
        macs = self.batch * tokens * in_features * out_features
        weight_elements = in_features * out_features + (out_features if bias else 0)
        self.costs.append(LayerCost(
            name=name, kind="linear", flops=2.0 * macs,
            weight_elements=weight_elements,
            input_elements=self.batch * tokens * in_features,
            output_elements=self.batch * tokens * out_features,
            extra={"gemm_m": float(self.batch * tokens)}))

    def norm(self, name: str, elements: float) -> None:
        self.costs.append(LayerCost(
            name=name, kind="norm", flops=8.0 * self.batch * elements,
            weight_elements=0.0,
            input_elements=self.batch * elements,
            output_elements=self.batch * elements))

    def silu(self, name: str, elements: float) -> None:
        self.costs.append(LayerCost(
            name=name, kind="silu", flops=4.0 * self.batch * elements,
            weight_elements=0.0,
            input_elements=self.batch * elements,
            output_elements=self.batch * elements))

    def attention_matmul(self, name: str, heads: int, q_tokens: int,
                         kv_tokens: int, head_dim: int) -> None:
        score_flops = 2.0 * self.batch * heads * q_tokens * kv_tokens * head_dim
        value_flops = 2.0 * self.batch * heads * q_tokens * kv_tokens * head_dim
        score_elements = self.batch * heads * q_tokens * kv_tokens
        self.costs.append(LayerCost(
            name=name, kind="attention",
            flops=score_flops + value_flops,
            weight_elements=0.0,
            input_elements=self.batch * heads * (q_tokens + 2 * kv_tokens) * head_dim,
            output_elements=self.batch * heads * q_tokens * head_dim,
            extra={"score_elements": score_elements}))

    # ------------------------------------------------------------------
    def res_block(self, name: str, in_ch: int, out_ch: int, h: int, w: int,
                  time_dim: int) -> None:
        self.norm(f"{name}.norm1", in_ch * h * w)
        self.silu(f"{name}.act1", in_ch * h * w)
        self.conv(f"{name}.conv1", in_ch, out_ch, h, w)
        self.linear(f"{name}.time_proj", 1, time_dim, out_ch)
        self.norm(f"{name}.norm2", out_ch * h * w)
        self.silu(f"{name}.act2", out_ch * h * w)
        self.conv(f"{name}.conv2", out_ch, out_ch, h, w)
        if in_ch != out_ch:
            self.conv(f"{name}.shortcut", in_ch, out_ch, h, w, kernel=1)

    def spatial_transformer(self, name: str, channels: int, h: int, w: int,
                            heads: int, context_dim: Optional[int]) -> None:
        tokens = h * w
        head_dim = channels // heads
        self.linear(f"{name}.proj_in", tokens, channels, channels)
        # self-attention (the q/k/v projections have no bias, matching nn.MultiHeadAttention)
        self.norm(f"{name}.norm1", tokens * channels)
        for proj in ("to_q", "to_k", "to_v"):
            self.linear(f"{name}.self.{proj}", tokens, channels, channels, bias=False)
        self.linear(f"{name}.self.to_out", tokens, channels, channels)
        self.attention_matmul(f"{name}.self.attention", heads, tokens, tokens, head_dim)
        # cross-attention
        if context_dim is not None:
            self.norm(f"{name}.norm2", tokens * channels)
            self.linear(f"{name}.cross.to_q", tokens, channels, channels, bias=False)
            self.linear(f"{name}.cross.to_k", self.context_tokens, context_dim,
                        channels, bias=False)
            self.linear(f"{name}.cross.to_v", self.context_tokens, context_dim,
                        channels, bias=False)
            self.linear(f"{name}.cross.to_out", tokens, channels, channels)
            self.attention_matmul(f"{name}.cross.attention", heads, tokens,
                                  self.context_tokens, head_dim)
        # feed-forward
        self.norm(f"{name}.norm3", tokens * channels)
        self.linear(f"{name}.mlp.fc1", tokens, channels, channels * 2)
        self.linear(f"{name}.mlp.fc2", tokens, channels * 2, channels)
        self.linear(f"{name}.proj_out", tokens, channels, channels)


def unet_layer_costs(config: UNetConfig, sample_size: int, batch_size: int = 1,
                     context_tokens: int = 16) -> List[LayerCost]:
    """Per-layer costs for one U-Net forward pass (one denoising step).

    ``sample_size`` is the spatial resolution of the tensor the U-Net
    denoises (the latent resolution for latent-diffusion models).  The walk
    mirrors :class:`repro.models.UNet` exactly; a unit test checks that the
    analytic parameter count matches the instantiated model.
    """
    acc = _CostAccumulator(batch_size, context_tokens)
    channels = config.base_channels
    time_dim = config.resolved_time_dim
    size = sample_size

    # time embedding MLP
    acc.linear("time_mlp1", 1, channels, time_dim)
    acc.silu("time_act", time_dim)
    acc.linear("time_mlp2", 1, time_dim, time_dim)

    acc.conv("input_conv", config.in_channels, channels, size, size)
    current = channels
    skip_channels = [channels]
    skip_sizes = [size]

    # encoder
    for level, multiplier in enumerate(config.channel_multipliers):
        out_ch = config.base_channels * multiplier
        for block in range(config.num_res_blocks):
            acc.res_block(f"down.{level}.{block}", current, out_ch, size, size, time_dim)
            if level in config.attention_levels:
                acc.spatial_transformer(f"down.{level}.{block}.attn", out_ch,
                                        size, size, config.num_heads,
                                        config.context_dim)
            current = out_ch
            skip_channels.append(current)
            skip_sizes.append(size)
        if level != len(config.channel_multipliers) - 1:
            acc.conv(f"down.{level}.downsample", current, current, size, size, stride=2)
            size //= 2
            skip_channels.append(current)
            skip_sizes.append(size)

    # mid
    acc.res_block("mid.block1", current, current, size, size, time_dim)
    acc.spatial_transformer("mid.attn", current, size, size, config.num_heads,
                            config.context_dim)
    acc.res_block("mid.block2", current, current, size, size, time_dim)

    # decoder
    for level in reversed(range(len(config.channel_multipliers))):
        out_ch = config.base_channels * config.channel_multipliers[level]
        for block in range(config.num_res_blocks + 1):
            skip_ch = skip_channels.pop()
            skip_sizes.pop()
            acc.res_block(f"up.{level}.{block}", current + skip_ch, out_ch,
                          size, size, time_dim)
            if level in config.attention_levels:
                acc.spatial_transformer(f"up.{level}.{block}.attn", out_ch,
                                        size, size, config.num_heads,
                                        config.context_dim)
            current = out_ch
        if level != 0:
            acc.conv(f"up.{level}.upsample", current, current, size * 2, size * 2)
            size *= 2

    acc.norm("output_norm", current * size * size)
    acc.silu("output_act", current * size * size)
    acc.conv("output_conv", current, config.out_channels, size, size)
    return acc.costs


def plan_model_evals(num_steps: int, guidance_scale: float = 1.0,
                     solver_evals_per_step: int = 1,
                     first_order_final_step: bool = False) -> int:
    """Model (U-Net) evaluations one generation plan performs end-to-end.

    The cost of a trajectory is not just its step count: a higher-order
    solver evaluates the model ``solver_evals_per_step`` times per step,
    ``first_order_final_step`` credits back the evaluations a
    predictor-corrector saves on its last step (DPM-Solver-2 has no second
    grid point to correct against — this is per-sampler metadata, see
    :class:`repro.diffusion.samplers.SamplerInfo`), and classifier-free
    guidance (``guidance_scale != 1``) doubles *every* evaluation with the
    unconditional pass.  This is the multiplier the SLO router applies on
    top of the per-forward roofline latency.
    """
    if num_steps < 1:
        raise ValueError(f"num_steps must be >= 1, got {num_steps}")
    if solver_evals_per_step < 1:
        raise ValueError(
            f"solver_evals_per_step must be >= 1, got {solver_evals_per_step}")
    evals = num_steps * solver_evals_per_step
    if first_order_final_step:
        evals -= solver_evals_per_step - 1
    if guidance_scale != 1.0:
        evals *= 2
    return evals


def estimate_utilization(arrival_rate: float, seconds_per_request: float,
                         replicas: int = 1) -> float:
    """Offered-load utilization of a replica group: ``rho = lambda * S / N``.

    ``arrival_rate`` is requests per second, ``seconds_per_request`` the
    modeled service time of one request (e.g. the roofline trajectory
    latency amortized over the expected batch size) and ``replicas`` the
    number of active servers.  Values above ~1 mean the offered load
    exceeds capacity and queues grow without bound; an autoscaler solves
    the inverse problem — the replica count that brings ``rho`` down to
    its target — via::

        desired = ceil(arrival_rate * seconds_per_request / target_rho)

    This is the cost-model-side utilization signal the cluster autoscaler
    combines with observed queue depth, so scaling decisions stay exact
    functions of the analytic model rather than of measured wall time.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate}")
    if seconds_per_request < 0:
        raise ValueError(
            f"seconds_per_request must be >= 0, got {seconds_per_request}")
    return arrival_rate * seconds_per_request / replicas


#: Layer kinds whose FLOPs are GEMM-shaped multiply-accumulates (the
#: products the compute backends dispatch; norms and activations do
#: arithmetic but no MACs).
GEMM_KINDS = frozenset({"conv", "linear", "attention"})


def total_flops(costs: List[LayerCost]) -> float:
    return float(sum(cost.flops for cost in costs))


def total_macs(costs: List[LayerCost]) -> float:
    """Multiply-accumulates of one forward pass (GEMM-shaped layers only).

    The analytic counterpart of what :func:`repro.tensor.count_macs`
    observes at runtime: every conv / linear / attention product the
    active backend dispatches, at FLOPs = 2 x MACs.
    """
    return float(sum(cost.flops for cost in costs
                     if cost.kind in GEMM_KINDS)) / 2.0


def total_weight_elements(costs: List[LayerCost]) -> float:
    return float(sum(cost.weight_elements for cost in costs))


def weight_traffic_bytes(costs: List[LayerCost],
                         bytes_per_element: float = BYTES_FP32,
                         backend: str = "reference") -> float:
    """Weight bytes one forward pass streams through memory, per backend.

    On the ``reference`` backend every layer reads float32 weights — the
    quantized path dequantizes into a float32 memo once, so steady-state
    traffic is float32 regardless of scheme.  On the ``accelerated``
    backend, layers whose GEMM passes the fused dequantize-GEMM gates
    (skinny product, weight past the cache-spill threshold — read from
    :class:`repro.tensor.backend.AcceleratedBackend` so the model can
    never drift from the implementation) stream the packed integer
    levels instead; ``bytes_per_element`` is then the packed width from
    :func:`scheme_bytes_per_element`.  The gap between the two calls is
    the analytic upper bound on the ``qforward`` bench pair's win.
    """
    if backend == "reference":
        return float(sum(cost.weight_bytes() for cost in costs))
    if backend != "accelerated":
        raise ValueError(f"unknown backend '{backend}'; expected "
                         f"'reference' or 'accelerated'")
    from ..tensor.backend import AcceleratedBackend

    max_m = AcceleratedBackend._FUSED_MAX_M
    min_weight = AcceleratedBackend._FUSED_MIN_WEIGHT
    total = 0.0
    for cost in costs:
        gemm_m = cost.extra.get("gemm_m")
        if (gemm_m is not None and gemm_m <= max_m
                and cost.weight_elements >= min_weight):
            total += cost.weight_elements * bytes_per_element
        else:
            total += cost.weight_bytes()
    return float(total)


def flops_by_kind(costs: List[LayerCost]) -> Dict[str, float]:
    """Aggregate FLOPs per layer kind (the x-axis categories of Figure 4)."""
    totals: Dict[str, float] = {}
    for cost in costs:
        totals[cost.kind] = totals.get(cost.kind, 0.0) + cost.flops
    return totals


def paper_scale_stable_diffusion_config() -> UNetConfig:
    """A UNetConfig approximating the real Stable Diffusion v1.5 U-Net.

    Used only by the analytic profiler (never instantiated as weights): base
    width 320, channel multipliers (1, 2, 4, 4), two ResBlocks per level,
    attention at the three lower-resolution levels and a 768-dim text
    context, operating on a 64x64x4 latent.  The resulting parameter count
    lands near the 860M the paper quotes.
    """
    return UNetConfig(
        in_channels=4, out_channels=4, base_channels=320,
        channel_multipliers=(1, 2, 4, 4), num_res_blocks=2,
        attention_levels=(0, 1, 2), num_heads=8, context_dim=768,
        num_groups=32)

"""U-Net noise-prediction network.

This is the architecture in Figure 1 of the paper: a stack of ResNet blocks
and attention blocks arranged as an encoder/decoder with block-to-block skip
connections, conditioned on a sinusoidal timestep embedding and, for
text-to-image models, on text-encoder context via cross-attention.

The skip connections matter for quantization: Q-diffusion (and the paper)
quantize the skip-connection activations and the previous layer's output
*separately* before the concatenation, because their value distributions
differ.  The decoder blocks here therefore expose the concatenation point
explicitly (:class:`SkipConcat`) so the quantizer can wrap it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..tensor import Tensor, concatenate


def timestep_embedding(timesteps: np.ndarray, dim: int) -> Tensor:
    """Sinusoidal timestep embedding as used by DDPM-style U-Nets."""
    timesteps = np.asarray(timesteps, dtype=np.float32).reshape(-1)
    half = dim // 2
    freqs = np.exp(-np.log(10000.0) * np.arange(half, dtype=np.float32) / max(half, 1))
    args = timesteps[:, None] * freqs[None, :]
    embedding = np.concatenate([np.cos(args), np.sin(args)], axis=1)
    if dim % 2 == 1:
        embedding = np.pad(embedding, ((0, 0), (0, 1)))
    return Tensor(embedding)


class SkipConcat(nn.Module):
    """Concatenate decoder features with an encoder skip connection.

    The module is intentionally trivial: it exists so that the quantizer can
    find every skip-connection concatenation by class and apply the paper's
    split quantization (quantize each input with its own format before the
    concat) at exactly these points.
    """

    def forward(self, x: Tensor, skip: Tensor) -> Tensor:
        return concatenate([x, skip], axis=1)


class ResBlock(nn.Module):
    """Residual block with GroupNorm, SiLU, 3x3 convs and a timestep shift."""

    def __init__(self, in_channels: int, out_channels: int, time_dim: int,
                 num_groups: int = 4, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.norm1 = nn.GroupNorm(num_groups, in_channels)
        self.act1 = nn.SiLU()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, padding=1, rng=rng)
        self.time_proj = nn.Linear(time_dim, out_channels, rng=rng)
        self.norm2 = nn.GroupNorm(num_groups, out_channels)
        self.act2 = nn.SiLU()
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, rng=rng)
        if in_channels != out_channels:
            self.shortcut = nn.Conv2d(in_channels, out_channels, 1, rng=rng)
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor, time_emb: Tensor) -> Tensor:
        hidden = self.conv1(self.act1(self.norm1(x)))
        shift = self.time_proj(time_emb.silu())
        hidden = hidden + shift.reshape(shift.shape[0], shift.shape[1], 1, 1)
        hidden = self.conv2(self.act2(self.norm2(hidden)))
        return hidden + self.shortcut(x)


@dataclass
class UNetConfig:
    """Architecture hyperparameters for :class:`UNet`.

    ``channel_multipliers`` defines one resolution level per entry;
    ``attention_levels`` lists the level indices that get a
    :class:`~repro.nn.SpatialTransformer` after their ResBlock.
    """

    in_channels: int = 3
    out_channels: int = 3
    base_channels: int = 16
    channel_multipliers: Sequence[int] = (1, 2)
    num_res_blocks: int = 1
    attention_levels: Sequence[int] = (1,)
    num_heads: int = 2
    context_dim: Optional[int] = None
    num_groups: int = 4
    time_embed_dim: Optional[int] = None
    extra: dict = field(default_factory=dict)

    @property
    def resolved_time_dim(self) -> int:
        return self.time_embed_dim or self.base_channels * 4


class UNet(nn.Module):
    """Noise prediction network epsilon_theta(x_t, t, context)."""

    def __init__(self, config: UNetConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        channels = config.base_channels
        time_dim = config.resolved_time_dim

        self.time_mlp1 = nn.Linear(channels, time_dim, rng=rng)
        self.time_act = nn.SiLU()
        self.time_mlp2 = nn.Linear(time_dim, time_dim, rng=rng)

        self.input_conv = nn.Conv2d(config.in_channels, channels, 3, padding=1, rng=rng)

        # ---------------------------------------------------------- encoder
        self.down_blocks = nn.ModuleList()
        self.down_attentions = nn.ModuleList()
        self.downsamplers = nn.ModuleList()
        level_channels: List[int] = [channels]
        current = channels
        for level, multiplier in enumerate(config.channel_multipliers):
            out_ch = config.base_channels * multiplier
            for _ in range(config.num_res_blocks):
                self.down_blocks.append(
                    ResBlock(current, out_ch, time_dim, config.num_groups, rng=rng))
                if level in config.attention_levels:
                    self.down_attentions.append(nn.SpatialTransformer(
                        out_ch, config.num_heads, context_dim=config.context_dim, rng=rng))
                else:
                    self.down_attentions.append(nn.Identity())
                current = out_ch
                level_channels.append(current)
            if level != len(config.channel_multipliers) - 1:
                self.downsamplers.append(nn.Downsample(current, rng=rng))
                level_channels.append(current)
            else:
                self.downsamplers.append(nn.Identity())

        # ------------------------------------------------------------- mid
        self.mid_block1 = ResBlock(current, current, time_dim, config.num_groups, rng=rng)
        self.mid_attention = nn.SpatialTransformer(
            current, config.num_heads, context_dim=config.context_dim, rng=rng)
        self.mid_block2 = ResBlock(current, current, time_dim, config.num_groups, rng=rng)

        # ---------------------------------------------------------- decoder
        self.up_blocks = nn.ModuleList()
        self.up_attentions = nn.ModuleList()
        self.upsamplers = nn.ModuleList()
        self.skip_concats = nn.ModuleList()
        for level in reversed(range(len(config.channel_multipliers))):
            out_ch = config.base_channels * config.channel_multipliers[level]
            for _ in range(config.num_res_blocks + 1):
                skip_ch = level_channels.pop()
                self.skip_concats.append(SkipConcat())
                self.up_blocks.append(ResBlock(
                    current + skip_ch, out_ch, time_dim, config.num_groups, rng=rng))
                if level in config.attention_levels:
                    self.up_attentions.append(nn.SpatialTransformer(
                        out_ch, config.num_heads, context_dim=config.context_dim, rng=rng))
                else:
                    self.up_attentions.append(nn.Identity())
                current = out_ch
            if level != 0:
                self.upsamplers.append(nn.Upsample(current, rng=rng))
            else:
                self.upsamplers.append(nn.Identity())

        self.output_norm = nn.GroupNorm(config.num_groups, current)
        self.output_act = nn.SiLU()
        self.output_conv = nn.Conv2d(current, config.out_channels, 3, padding=1, rng=rng)

    # ------------------------------------------------------------------
    def _embed_time(self, timesteps: np.ndarray) -> Tensor:
        emb = timestep_embedding(timesteps, self.config.base_channels)
        emb = self.time_mlp1(emb)
        emb = self.time_act(emb)
        return self.time_mlp2(emb)

    def forward(self, x: Tensor, timesteps: np.ndarray,
                context: Optional[Tensor] = None) -> Tensor:
        """Predict the noise component of ``x`` at the given timesteps."""
        time_emb = self._embed_time(timesteps)

        hidden = self.input_conv(x)
        skips: List[Tensor] = [hidden]

        block_index = 0
        for level in range(len(self.config.channel_multipliers)):
            for _ in range(self.config.num_res_blocks):
                hidden = self.down_blocks[block_index](hidden, time_emb)
                attention = self.down_attentions[block_index]
                if isinstance(attention, nn.SpatialTransformer):
                    hidden = attention(hidden, context=context)
                skips.append(hidden)
                block_index += 1
            downsampler = self.downsamplers[level]
            if not isinstance(downsampler, nn.Identity):
                hidden = downsampler(hidden)
                skips.append(hidden)

        hidden = self.mid_block1(hidden, time_emb)
        hidden = self.mid_attention(hidden, context=context)
        hidden = self.mid_block2(hidden, time_emb)

        block_index = 0
        for level_pos, level in enumerate(reversed(range(len(self.config.channel_multipliers)))):
            for _ in range(self.config.num_res_blocks + 1):
                skip = skips.pop()
                hidden = self.skip_concats[block_index](hidden, skip)
                hidden = self.up_blocks[block_index](hidden, time_emb)
                attention = self.up_attentions[block_index]
                if isinstance(attention, nn.SpatialTransformer):
                    hidden = attention(hidden, context=context)
                block_index += 1
            upsampler = self.upsamplers[level_pos]
            if not isinstance(upsampler, nn.Identity):
                hidden = upsampler(hidden)

        hidden = self.output_conv(self.output_act(self.output_norm(hidden)))
        return hidden

"""Latent autoencoder for latent-diffusion models.

Latent Diffusion Models (LDM) and Stable Diffusion run the U-Net in a
compressed latent space; an encoder maps pixel images into latents and a
decoder maps denoised latents back to pixels (the "Autoencoder/Decoder" box
of Figure 1 in the paper).  The decoder runs once per generated image and is
left in full precision, exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..tensor import Tensor


class Encoder(nn.Module):
    """Convolutional encoder mapping images to a lower-resolution latent."""

    def __init__(self, in_channels: int, latent_channels: int, base_channels: int = 16,
                 downsample_factor: int = 4, num_groups: int = 4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if downsample_factor & (downsample_factor - 1):
            raise ValueError("downsample_factor must be a power of two")
        self.input_conv = nn.Conv2d(in_channels, base_channels, 3, padding=1, rng=rng)
        stages = []
        current = base_channels
        factor = downsample_factor
        while factor > 1:
            stages.append(nn.Conv2d(current, current * 2, 3, stride=2, padding=1, rng=rng))
            stages.append(nn.GroupNorm(num_groups, current * 2))
            stages.append(nn.SiLU())
            current *= 2
            factor //= 2
        self.stages = nn.Sequential(*stages)
        self.output_conv = nn.Conv2d(current, latent_channels, 3, padding=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.input_conv(x)
        hidden = self.stages(hidden)
        return self.output_conv(hidden)


class Decoder(nn.Module):
    """Convolutional decoder mapping latents back to pixel space."""

    def __init__(self, latent_channels: int, out_channels: int, base_channels: int = 16,
                 upsample_factor: int = 4, num_groups: int = 4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if upsample_factor & (upsample_factor - 1):
            raise ValueError("upsample_factor must be a power of two")
        stage_count = int(np.log2(upsample_factor))
        current = base_channels * (2 ** stage_count)
        self.input_conv = nn.Conv2d(latent_channels, current, 3, padding=1, rng=rng)
        stages = []
        for _ in range(stage_count):
            stages.append(nn.Upsample(current, rng=rng))
            stages.append(nn.Conv2d(current, current // 2, 3, padding=1, rng=rng))
            stages.append(nn.GroupNorm(num_groups, current // 2))
            stages.append(nn.SiLU())
            current //= 2
        self.stages = nn.Sequential(*stages)
        self.output_conv = nn.Conv2d(current, out_channels, 3, padding=1, rng=rng)

    def forward(self, z: Tensor) -> Tensor:
        hidden = self.input_conv(z)
        hidden = self.stages(hidden)
        return self.output_conv(hidden).tanh()


class Autoencoder(nn.Module):
    """Encoder/decoder pair with a fixed latent scaling factor."""

    def __init__(self, in_channels: int = 3, latent_channels: int = 4,
                 base_channels: int = 16, downsample_factor: int = 4,
                 scaling_factor: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.latent_channels = latent_channels
        self.downsample_factor = downsample_factor
        self.scaling_factor = scaling_factor
        self.encoder = Encoder(in_channels, latent_channels, base_channels,
                               downsample_factor, rng=rng)
        self.decoder = Decoder(latent_channels, in_channels, base_channels,
                               downsample_factor, rng=rng)

    def encode(self, images: Tensor) -> Tensor:
        """Map pixel images to scaled latents."""
        return self.encoder(images) * self.scaling_factor

    def decode(self, latents: Tensor) -> Tensor:
        """Map latents back to pixel images in ``[-1, 1]``."""
        return self.decoder(latents * (1.0 / self.scaling_factor))

    def forward(self, images: Tensor) -> Tensor:
        return self.decode(self.encode(images))

    def latent_shape(self, image_shape: Tuple[int, int]) -> Tuple[int, int, int]:
        """Latent ``(C, H, W)`` for a given image ``(H, W)``."""
        h, w = image_shape
        f = self.downsample_factor
        return (self.latent_channels, h // f, w // f)

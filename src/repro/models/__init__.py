"""Diffusion model architectures: U-Net, autoencoder, text encoder, configs."""

from .unet import ResBlock, SkipConcat, UNet, UNetConfig, timestep_embedding
from .autoencoder import Autoencoder, Decoder, Encoder
from .text_encoder import HashTokenizer, TextEncoder
from .configs import (
    MODEL_SPECS,
    DiffusionModel,
    ModelSpec,
    build_model,
    get_model_spec,
)

__all__ = [
    "UNet", "UNetConfig", "ResBlock", "SkipConcat", "timestep_embedding",
    "Autoencoder", "Encoder", "Decoder",
    "TextEncoder", "HashTokenizer",
    "ModelSpec", "DiffusionModel", "MODEL_SPECS", "build_model", "get_model_spec",
]

"""Named model configurations mirroring the paper's four evaluation models.

The paper evaluates DDIM on CIFAR-10, LDM on LSUN-Bedrooms, Stable Diffusion
v1.5 and SDXL.  Each has a scaled-down counterpart here, preserving the
architectural features that matter for quantization: pixel-space vs latent
space, text cross-attention or not, and relative U-Net sizes (the SDXL
stand-in U-Net is roughly 3x the Stable Diffusion stand-in, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import nn
from .autoencoder import Autoencoder
from .text_encoder import TextEncoder
from .unet import UNet, UNetConfig


@dataclass
class ModelSpec:
    """Everything needed to instantiate one of the named diffusion models."""

    name: str
    task: str  # "unconditional" or "text-to-image"
    image_size: int
    image_channels: int
    latent: bool
    latent_channels: int
    latent_downsample: int
    unet: UNetConfig
    text_embed_dim: Optional[int] = None
    train_timesteps: int = 100
    default_sampling_steps: int = 20
    seed: int = 0

    @property
    def sample_shape(self) -> tuple:
        """Shape of the tensor the sampler denoises (latent or pixel space)."""
        if self.latent:
            size = self.image_size // self.latent_downsample
            return (self.latent_channels, size, size)
        return (self.image_channels, self.image_size, self.image_size)


class DiffusionModel(nn.Module):
    """Bundle of U-Net plus optional autoencoder and text encoder."""

    def __init__(self, spec: ModelSpec, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(spec.seed)
        self.spec = spec
        self.unet = UNet(spec.unet, rng=rng)
        if spec.latent:
            self.autoencoder = Autoencoder(
                in_channels=spec.image_channels,
                latent_channels=spec.latent_channels,
                downsample_factor=spec.latent_downsample,
                rng=rng)
        else:
            self.autoencoder = None
        if spec.task == "text-to-image":
            self.text_encoder = TextEncoder(embed_dim=spec.text_embed_dim, rng=rng)
        else:
            self.text_encoder = None

    def forward(self, x, timesteps, context=None):
        return self.unet(x, timesteps, context=context)


# ----------------------------------------------------------------------
# named specs
# ----------------------------------------------------------------------

def _ddim_cifar10_spec() -> ModelSpec:
    return ModelSpec(
        name="ddim-cifar10",
        task="unconditional",
        image_size=16,
        image_channels=3,
        latent=False,
        latent_channels=0,
        latent_downsample=1,
        unet=UNetConfig(
            in_channels=3, out_channels=3, base_channels=16,
            channel_multipliers=(1, 2), num_res_blocks=1,
            attention_levels=(1,), num_heads=2),
        train_timesteps=100,
        default_sampling_steps=20,
        seed=7,
    )


def _ldm_bedroom_spec() -> ModelSpec:
    return ModelSpec(
        name="ldm-bedroom",
        task="unconditional",
        image_size=32,
        image_channels=3,
        latent=True,
        latent_channels=4,
        latent_downsample=4,
        unet=UNetConfig(
            in_channels=4, out_channels=4, base_channels=16,
            channel_multipliers=(1, 2), num_res_blocks=1,
            attention_levels=(1,), num_heads=2),
        train_timesteps=100,
        default_sampling_steps=20,
        seed=11,
    )


def _stable_diffusion_spec() -> ModelSpec:
    return ModelSpec(
        name="stable-diffusion",
        task="text-to-image",
        image_size=32,
        image_channels=3,
        latent=True,
        latent_channels=4,
        latent_downsample=4,
        unet=UNetConfig(
            in_channels=4, out_channels=4, base_channels=16,
            channel_multipliers=(1, 2), num_res_blocks=1,
            attention_levels=(0, 1), num_heads=2, context_dim=32),
        text_embed_dim=32,
        train_timesteps=100,
        default_sampling_steps=10,
        seed=13,
    )


def _sdxl_spec() -> ModelSpec:
    # Roughly 3x the parameter count of the stable-diffusion stand-in U-Net,
    # mirroring the paper's note that the SDXL U-Net is ~3x larger.
    return ModelSpec(
        name="sdxl",
        task="text-to-image",
        image_size=32,
        image_channels=3,
        latent=True,
        latent_channels=4,
        latent_downsample=4,
        unet=UNetConfig(
            in_channels=4, out_channels=4, base_channels=24,
            channel_multipliers=(1, 2), num_res_blocks=2,
            attention_levels=(0, 1), num_heads=4, context_dim=32, num_groups=4),
        text_embed_dim=32,
        train_timesteps=100,
        default_sampling_steps=10,
        seed=17,
    )


MODEL_SPECS: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        _ddim_cifar10_spec(),
        _ldm_bedroom_spec(),
        _stable_diffusion_spec(),
        _sdxl_spec(),
    )
}


def get_model_spec(name: str) -> ModelSpec:
    """Look up a named model spec, raising a helpful error if unknown."""
    try:
        return MODEL_SPECS[name]
    except KeyError as exc:
        known = ", ".join(sorted(MODEL_SPECS))
        raise KeyError(f"unknown model '{name}'; available: {known}") from exc


def build_model(name: str, rng: Optional[np.random.Generator] = None) -> DiffusionModel:
    """Instantiate one of the named diffusion models with fresh weights."""
    return DiffusionModel(get_model_spec(name), rng=rng)

"""Toy text encoder and tokenizer for the text-to-image pipelines.

Stable Diffusion conditions its U-Net on CLIP text embeddings.  Offline and
from scratch we substitute a small transformer encoder over a word-level
vocabulary built from the synthetic prompt grammar in :mod:`repro.data`.
The encoder runs once per prompt (it is a negligible part of inference cost,
as the paper's characterization notes) and is kept in full precision.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..tensor import Tensor


class HashTokenizer:
    """Deterministic word-level tokenizer with a fixed-size hash vocabulary.

    Words are mapped to token ids by hashing, so any prompt can be encoded
    without building a vocabulary in advance; identical words always map to
    identical ids, which is all the toy text encoder needs.
    """

    def __init__(self, vocab_size: int = 512, max_length: int = 16):
        self.vocab_size = vocab_size
        self.max_length = max_length
        self.pad_id = 0
        self.bos_id = 1

    def _word_id(self, word: str) -> int:
        digest = hashlib.sha256(word.lower().encode("utf-8")).digest()
        return 2 + int.from_bytes(digest[:4], "little") % (self.vocab_size - 2)

    def encode(self, prompt: str) -> np.ndarray:
        """Tokenize a prompt to a fixed-length id array."""
        ids = [self.bos_id] + [self._word_id(w) for w in prompt.split()]
        ids = ids[: self.max_length]
        ids = ids + [self.pad_id] * (self.max_length - len(ids))
        return np.asarray(ids, dtype=np.int64)

    def encode_batch(self, prompts: Sequence[str]) -> np.ndarray:
        return np.stack([self.encode(p) for p in prompts], axis=0)


class TextEncoder(nn.Module):
    """Small transformer encoder producing per-token context embeddings."""

    def __init__(self, vocab_size: int = 512, max_length: int = 16,
                 embed_dim: int = 32, num_layers: int = 2, num_heads: int = 2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.tokenizer = HashTokenizer(vocab_size, max_length)
        self.embed_dim = embed_dim
        self.token_embedding = nn.Embedding(vocab_size, embed_dim, rng=rng)
        self.position_embedding = nn.Embedding(max_length, embed_dim, rng=rng)
        self.blocks = nn.ModuleList(
            [nn.TransformerBlock(embed_dim, num_heads, rng=rng)
             for _ in range(num_layers)])
        self.final_norm = nn.LayerNorm(embed_dim)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        positions = np.arange(token_ids.shape[1])
        hidden = self.token_embedding(token_ids) + self.position_embedding(positions)
        for block in self.blocks:
            hidden = block(hidden)
        return self.final_norm(hidden)

    def encode_prompts(self, prompts: Sequence[str]) -> Tensor:
        """Convenience wrapper: tokenize and encode a batch of prompt strings."""
        token_ids = self.tokenizer.encode_batch(list(prompts))
        return self.forward(token_ids)

"""Improved Precision and Recall for generative models (Kynkäänniemi et al.).

Precision is the fraction of generated samples that fall inside the
reference-feature manifold; Recall is the fraction of reference samples that
fall inside the generated-feature manifold.  Each manifold is approximated by
hyperspheres around every sample with radius equal to the distance to its
k-th nearest neighbour within the same set.

The paper reports both alongside FID/sFID (higher is better for both), and the
collapse of Precision to ~0 for FP4 without rounding learning is one of its
headline observations (Tables III and IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .features import FeatureExtractor, default_extractor


def _pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between rows of ``a`` and rows of ``b``."""
    a_sq = np.sum(a ** 2, axis=1, keepdims=True)
    b_sq = np.sum(b ** 2, axis=1, keepdims=True)
    squared = a_sq + b_sq.T - 2.0 * (a @ b.T)
    return np.sqrt(np.maximum(squared, 0.0))


def _kth_neighbour_radii(features: np.ndarray, k: int) -> np.ndarray:
    """Distance from each sample to its k-th nearest neighbour in the same set."""
    distances = _pairwise_distances(features, features)
    np.fill_diagonal(distances, np.inf)
    k = min(k, features.shape[0] - 1)
    if k < 1:
        return np.zeros(features.shape[0])
    sorted_distances = np.sort(distances, axis=1)
    return sorted_distances[:, k - 1]


def manifold_coverage(query: np.ndarray, support: np.ndarray, k: int) -> float:
    """Fraction of ``query`` points inside the k-NN manifold of ``support``."""
    if len(support) < 2 or len(query) == 0:
        return 0.0
    radii = _kth_neighbour_radii(support, k)
    distances = _pairwise_distances(query, support)
    covered = (distances <= radii[None, :]).any(axis=1)
    return float(np.mean(covered))


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision/recall pair as reported in the paper's tables."""

    precision: float
    recall: float


def compute_precision_recall(generated_images: np.ndarray,
                             reference_images: np.ndarray,
                             k: int = 3,
                             extractor: Optional[FeatureExtractor] = None
                             ) -> PrecisionRecall:
    """Compute improved precision and recall between two image sets."""
    extractor = extractor or default_extractor()
    gen = extractor.pooled_features(generated_images)
    ref = extractor.pooled_features(reference_images)
    precision = manifold_coverage(gen, ref, k)
    recall = manifold_coverage(ref, gen, k)
    return PrecisionRecall(precision=precision, recall=recall)

"""Image quality metrics: FID, sFID, Precision/Recall and CLIP score."""

from .features import FeatureExtractor, FeatureExtractorConfig, default_extractor
from .fid import compute_fid, compute_sfid, frechet_distance
from .precision_recall import (
    PrecisionRecall,
    compute_precision_recall,
    manifold_coverage,
)
from .clip_score import clip_score
from .suite import EvaluationResult, evaluate_images

__all__ = [
    "FeatureExtractor", "FeatureExtractorConfig", "default_extractor",
    "compute_fid", "compute_sfid", "frechet_distance",
    "PrecisionRecall", "compute_precision_recall", "manifold_coverage",
    "clip_score",
    "EvaluationResult", "evaluate_images",
]

"""Deterministic image feature extractor (Inception-V3 substitute).

FID, sFID, Precision and Recall compare *feature distributions* of generated
and reference image sets.  The paper uses Inception-V3 features; offline we
substitute a fixed-weight convolutional filter bank (random but deterministic
Gaussian filters, ReLU nonlinearities and average pooling).  Random
convolutional features are a standard surrogate when a pretrained network is
unavailable: they are discriminative enough to order models consistently,
which is what the reproduction needs (relative comparisons between
quantization configurations), even though absolute FID values are not
comparable with the paper's.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List

import numpy as np


def _conv2d_same(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Valid-free convolution with 'same' zero padding, NCHW layout."""
    n, c, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    pad_h, pad_w = kh // 2, kw // 2
    padded = np.pad(x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
    strides = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, c, h, w, kh, kw),
        strides=(strides[0], strides[1], strides[2], strides[3],
                 strides[2], strides[3]),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n, h * w, c * kh * kw)
    out = cols @ weight.reshape(c_out, -1).T
    return out.transpose(0, 2, 1).reshape(n, c_out, h, w)


def _avg_pool(x: np.ndarray, kernel: int = 2) -> np.ndarray:
    n, c, h, w = x.shape
    oh, ow = h // kernel, w // kernel
    view = x[:, :, :oh * kernel, :ow * kernel]
    return view.reshape(n, c, oh, kernel, ow, kernel).mean(axis=(3, 5))


@dataclass
class FeatureExtractorConfig:
    """Architecture of the fixed filter bank."""

    channels: List[int] = None
    kernel_size: int = 3
    seed: int = 1234
    pooled_dim: int = 64
    spatial_channels: int = 7

    def __post_init__(self):
        if self.channels is None:
            self.channels = [16, 32, 64]


class FeatureExtractor:
    """Fixed random convolutional feature extractor.

    Two feature views are exposed, matching how FID and sFID differ in the
    paper: :meth:`pooled_features` spatially averages the deepest feature map
    (standard FID features), while :meth:`spatial_features` keeps the spatial
    layout of an intermediate map (sFID's spatial features).
    """

    def __init__(self, config: FeatureExtractorConfig = None):
        self.config = config or FeatureExtractorConfig()
        rng = np.random.default_rng(self.config.seed)
        self._filters: List[np.ndarray] = []
        in_channels = 3
        k = self.config.kernel_size
        for out_channels in self.config.channels:
            fan_in = in_channels * k * k
            weight = rng.standard_normal((out_channels, in_channels, k, k))
            weight = (weight / np.sqrt(fan_in)).astype(np.float32)
            self._filters.append(weight)
            in_channels = out_channels
        self._projection = rng.standard_normal(
            (self.config.channels[-1], self.config.pooled_dim)).astype(np.float32)
        self._projection /= np.sqrt(self.config.channels[-1])

    # ------------------------------------------------------------------
    def _forward_maps(self, images: np.ndarray) -> List[np.ndarray]:
        """Run the filter bank, returning the feature map after every stage."""
        x = np.asarray(images, dtype=np.float32)
        if x.ndim != 4 or x.shape[1] != 3:
            raise ValueError(f"expected images of shape (N, 3, H, W), got {x.shape}")
        maps = []
        for index, weight in enumerate(self._filters):
            x = _conv2d_same(x, weight)
            x = np.maximum(x, 0.0)
            if min(x.shape[2], x.shape[3]) >= 4 and index < len(self._filters) - 1:
                x = _avg_pool(x, 2)
            maps.append(x)
        return maps

    def pooled_features(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Global-average-pooled deep features, shape ``(N, pooled_dim)``."""
        outputs = []
        for start in range(0, len(images), batch_size):
            maps = self._forward_maps(images[start:start + batch_size])
            pooled = maps[-1].mean(axis=(2, 3))
            outputs.append(pooled @ self._projection)
        return np.concatenate(outputs, axis=0)

    def spatial_features(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Spatially structured intermediate features, shape ``(N, D)``.

        The first ``spatial_channels`` channels of the mid-level feature map
        are kept with their spatial layout (downsampled to at most 8x8) and
        flattened, mirroring sFID's use of spatial feature maps instead of
        pooled features.
        """
        outputs = []
        for start in range(0, len(images), batch_size):
            maps = self._forward_maps(images[start:start + batch_size])
            mid = maps[len(maps) // 2][:, : self.config.spatial_channels]
            while min(mid.shape[2], mid.shape[3]) > 8:
                mid = _avg_pool(mid, 2)
            outputs.append(mid.reshape(mid.shape[0], -1))
        return np.concatenate(outputs, axis=0)


#: Lock-guarded extractor registry; keyed so future variants (different
#: filter seeds/widths) slot in without another module global.
_EXTRACTORS: dict = {}
_EXTRACTORS_LOCK = threading.Lock()


def default_extractor() -> FeatureExtractor:
    """Process-wide shared extractor (the filters are fixed, so sharing is safe).

    Initialization is locked: parallel experiment runners evaluate metric
    stages concurrently, and every thread must observe the same extractor
    (identical filters) for metric values to be schedule-independent.  The
    registry write is a pure memo: FeatureExtractor() is deterministic
    (fixed seed), so the cached value is a function of its key alone.
    """
    with _EXTRACTORS_LOCK:
        extractor = _EXTRACTORS.get("default")
        if extractor is None:
            extractor = FeatureExtractor()
            # repro: allow[stage-purity] -- pure memo: value derives only from the fixed filter seed
            _EXTRACTORS["default"] = extractor
    return extractor

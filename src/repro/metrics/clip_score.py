"""CLIP-score substitute: prompt/image agreement for text-to-image models.

The paper reports the CLIP score to verify that quantized Stable Diffusion
still follows its prompts (Figure 10).  A pretrained CLIP model is not
available offline, so the substitute exploits the structure of the synthetic
prompt dataset: every prompt has a deterministic procedural rendering (its
semantic target).  The score for a (prompt, image) pair is the cosine
similarity between the feature embedding of the generated image and the
embedding of the prompt's rendered target, scaled to the familiar 0-100 CLIP
range.  Like the real CLIP score it is reference-free with respect to the
model (only the prompt is needed) and rewards semantic agreement between the
prompt and the image.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.prompts import PromptSpec, render_prompt
from .features import FeatureExtractor, default_extractor


def _embed(images: np.ndarray, extractor: FeatureExtractor) -> np.ndarray:
    features = extractor.pooled_features(images)
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    return features / np.maximum(norms, 1e-8)


def clip_score(generated_images: np.ndarray, prompt_specs: Sequence[PromptSpec],
               extractor: Optional[FeatureExtractor] = None,
               image_size: Optional[int] = None) -> float:
    """Mean prompt/image agreement score over a batch, in [-100, 100].

    ``generated_images`` is ``(N, 3, H, W)`` in ``[-1, 1]`` and
    ``prompt_specs`` the matching prompt specifications (one per image).
    """
    if len(generated_images) != len(prompt_specs):
        raise ValueError(
            f"got {len(generated_images)} images for {len(prompt_specs)} prompts")
    extractor = extractor or default_extractor()
    image_size = image_size or generated_images.shape[-1]
    targets = np.stack([render_prompt(spec, image_size) for spec in prompt_specs])
    generated_embeddings = _embed(np.asarray(generated_images, dtype=np.float32),
                                  extractor)
    target_embeddings = _embed(targets, extractor)
    similarities = np.sum(generated_embeddings * target_embeddings, axis=1)
    return float(np.mean(similarities) * 100.0)

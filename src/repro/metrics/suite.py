"""Convenience wrapper computing the full metric row used in the paper's tables.

Every quantitative table in the paper reports FID, sFID, Precision and Recall
for one generated image set against one reference set (plus the CLIP score
for text-to-image).  :func:`evaluate_images` computes all of them in one call
so that the benchmark harness for each table stays small and uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..data.prompts import PromptSpec
from .clip_score import clip_score
from .features import FeatureExtractor, default_extractor
from .fid import compute_fid, compute_sfid
from .precision_recall import compute_precision_recall


@dataclass
class EvaluationResult:
    """One table row: the four distribution metrics plus optional CLIP score."""

    fid: float
    sfid: float
    precision: float
    recall: float
    clip: Optional[float] = None

    def as_row(self, label: str) -> str:
        """Format the result as a fixed-width table row for bench output."""
        clip_text = f" {self.clip:7.2f}" if self.clip is not None else ""
        return (f"{label:<22} {self.fid:8.3f} {self.sfid:8.3f} "
                f"{self.precision:9.4f} {self.recall:7.4f}{clip_text}")

    @staticmethod
    def header(with_clip: bool = False) -> str:
        clip_text = "    CLIP" if with_clip else ""
        return (f"{'Bitwidth (W/A)':<22} {'FID':>8} {'sFID':>8} "
                f"{'Precision':>9} {'Recall':>7}{clip_text}")


def evaluate_images(generated_images: np.ndarray, reference_images: np.ndarray,
                    prompt_specs: Optional[Sequence[PromptSpec]] = None,
                    extractor: Optional[FeatureExtractor] = None,
                    neighbourhood: int = 3) -> EvaluationResult:
    """Compute FID, sFID, Precision, Recall (and CLIP score when prompts given)."""
    extractor = extractor or default_extractor()
    fid = compute_fid(generated_images, reference_images, extractor)
    sfid = compute_sfid(generated_images, reference_images, extractor)
    pr = compute_precision_recall(generated_images, reference_images,
                                  k=neighbourhood, extractor=extractor)
    clip = None
    if prompt_specs is not None:
        clip = clip_score(generated_images, prompt_specs, extractor=extractor)
    return EvaluationResult(fid=fid, sfid=sfid, precision=pr.precision,
                            recall=pr.recall, clip=clip)

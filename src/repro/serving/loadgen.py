"""Load generator: deterministic mixed serving workloads + benchmark runner.

Builds request streams with the properties that make serving interesting:
a pool of prompts reused with a Zipf-like popularity skew (so the
embedding cache has something to hit), a mix of models, a mix of latency
SLO tiers (so the router serves different schemes and step budgets) and a
mix of generation plans (so the batcher sees several sampler/guidance
groups).  Everything is seeded, so a workload is reproducible across runs
and across the sequential-vs-batched comparison in the throughput
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.prompts import sample_prompt_specs
from ..diffusion.plan import GenerationPlan
from ..models import get_model_spec
from .engine import ServingEngine
from .request import Request
from .router import SLORouter

#: Symbolic SLO tiers resolved against the router's per-scheme predictions.
#: ``None`` means "no SLO" (router serves best quality).
SLO_TIERS = ("loose", "medium", "tight", None)


def zipf_weights(count: int, skew: float) -> np.ndarray:
    """Normalized Zipf popularity over ``count`` ranks (rank 1 hottest).

    ``skew=0`` is uniform; serving traffic is modeled with ``skew`` around
    1-1.4, where a handful of prompts/tenants dominate — the regime that
    makes caches and variant affinity pay.  Shared by the single-engine
    workload generator and the cluster trace generator so both draw from
    the same popularity law.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** -skew
    return weights / weights.sum()


def slo_for_tier(router: SLORouter, model: str, num_steps: int,
                 tier: Optional[str]) -> Optional[float]:
    """Turn a symbolic tier into a concrete latency target in seconds.

    ``loose`` fits every candidate scheme, ``tight`` only the cheapest,
    ``medium`` sits midway — derived from the router's own predictions so
    the tiers stay meaningful whatever the model scale or device profile.
    """
    if tier is None:
        return None
    predictions = router.predictions(model, num_steps)
    cheapest = min(predictions.values())
    dearest = max(predictions.values())
    if tier == "loose":
        return 2.0 * dearest
    if tier == "medium":
        return 0.5 * (cheapest + dearest)
    if tier == "tight":
        return 1.0001 * cheapest
    raise ValueError(f"unknown SLO tier {tier!r}; use one of {SLO_TIERS}")


@dataclass
class WorkloadConfig:
    """Shape of a synthetic serving workload."""

    num_requests: int = 32
    models: Sequence[str] = ("stable-diffusion",)
    num_steps: Optional[int] = None       # None -> each model's default
    prompt_pool_size: int = 8
    popularity_skew: float = 1.2          # Zipf exponent; 0 = uniform prompts
    slo_tiers: Sequence[Optional[str]] = (None,)
    #: Generation plans requests draw from uniformly; ``None`` entries mean
    #: "no plan asked" (the engine's default trajectory).
    plans: Sequence[Optional[GenerationPlan]] = (None,)
    seed: int = 0


def generate_workload(config: WorkloadConfig,
                      router: Optional[SLORouter] = None) -> List[Request]:
    """Draw a deterministic request stream from the workload description."""
    router = router or SLORouter()
    rng = np.random.default_rng(config.seed)
    prompt_pool = [spec.to_text() for spec in
                   sample_prompt_specs(config.prompt_pool_size,
                                       seed=config.seed)]
    popularity = zipf_weights(len(prompt_pool), config.popularity_skew)

    requests: List[Request] = []
    for index in range(config.num_requests):
        model = config.models[int(rng.integers(len(config.models)))]
        spec = get_model_spec(model)
        steps = config.num_steps or spec.default_sampling_steps
        prompt = None
        if spec.task == "text-to-image":
            prompt = prompt_pool[int(rng.choice(len(prompt_pool), p=popularity))]
        tier = config.slo_tiers[int(rng.integers(len(config.slo_tiers)))]
        plan = config.plans[int(rng.integers(len(config.plans)))]
        requests.append(Request(
            model=model, prompt=prompt, num_steps=steps,
            latency_slo=slo_for_tier(router, model, steps, tier),
            plan=plan,
            seed=int(rng.integers(2 ** 31)),
            tier=tier,
        ))
    return requests


def run_load_benchmark(engine: ServingEngine, requests: Sequence[Request],
                       report_path=None) -> Dict:
    """Drive a workload through the engine and return (and save) the report."""
    engine.serve(requests)
    if report_path is not None:
        engine.stats.to_json(report_path)
    return engine.stats.report()

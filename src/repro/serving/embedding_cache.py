"""Prompt-embedding cache: memoized text-encoder outputs per (model, prompt).

Text encoding is deterministic per (model, prompt), and serving traffic
repeats popular prompts heavily (the load generator models this with a
Zipf-like popularity skew), so the context embeddings are ideal cache
fodder.  The cache stores one ``(tokens, dim)`` row per (model, prompt)
under LRU eviction; on a batch lookup the misses are encoded **once per
unique prompt** through the pipeline's deduplicating encoder and the full
context tensor is gathered back in request order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

CacheKey = Tuple[str, str]  # (model name, prompt)


class EmbeddingCache:
    """LRU cache of per-prompt text-encoder outputs."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------
    def _store(self, key: CacheKey, row: np.ndarray) -> None:
        self._entries[key] = row
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_contexts(self, model: str, pipeline,
                     prompts: Sequence[str]) -> Tuple[np.ndarray, List[bool]]:
        """Context embeddings for ``prompts``, encoding only cache misses.

        Returns ``(contexts, hit_flags)`` where ``contexts`` is a
        ``(len(prompts), tokens, dim)`` array in prompt order and
        ``hit_flags[i]`` says whether prompt ``i`` was served from cache.
        """
        prompts = list(prompts)
        hit_flags: List[bool] = []
        missing: List[str] = []
        rows: Dict[str, np.ndarray] = {}
        for prompt in prompts:
            key = (model, prompt)
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                hit_flags.append(True)
                rows[prompt] = entry
            else:
                self.misses += 1
                hit_flags.append(False)
                if prompt not in missing:
                    missing.append(prompt)
        if missing:
            encoded = pipeline.encode_prompts_deduped(missing)
            for prompt, row in zip(missing, encoded):
                row = np.asarray(row)
                rows[prompt] = row
                self._store((model, prompt), row)
        contexts = np.stack([rows[prompt] for prompt in prompts], axis=0)
        return contexts, hit_flags

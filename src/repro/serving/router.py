"""SLO-aware scheme routing over the analytic roofline cost model.

Routing implements the paper-motivated serving policy: quantization is a
latency/quality dial, so each request should be served at the **highest
quality the latency budget allows** — FP32 when there is headroom, FP8/FP4
as the SLO tightens (conf_iiswc_ChenGM24's characterization is exactly the
cost model that makes this prediction possible without running anything).

For a request the router predicts per-scheme end-to-end latency as

    steps x roofline(U-Net forward @ scheme bytes-per-element)

using :func:`repro.profiling.estimate_scheme_latency`, then picks the
highest-quality (most bits) candidate whose prediction fits the SLO.  When
no candidate fits, it degrades to the cheapest (fastest predicted) scheme —
an overloaded system serves *something* rather than nothing.  Requests
without an SLO get the best-quality scheme outright.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.schemes import get_scheme
from ..models import get_model_spec
from ..profiling import (
    DeviceProfile,
    GPU_V100,
    LayerCost,
    estimate_scheme_latency,
    unet_layer_costs,
)
from .request import Request

#: Default candidate ladder, best quality first.
DEFAULT_SCHEMES = ("fp32", "fp8", "fp4")


class SLORouter:
    """Chooses a quantization scheme per request from latency predictions."""

    def __init__(self, schemes: Sequence[str] = DEFAULT_SCHEMES,
                 device: DeviceProfile = GPU_V100,
                 batch_size: int = 1,
                 context_tokens: int = 16,
                 costs_fn: Optional[Callable[[str], List[LayerCost]]] = None):
        """
        ``costs_fn`` maps a model name to the per-layer cost list the
        roofline runs over; the default walks the model's own (scaled-down)
        ``UNetConfig``.  Passing e.g. ``lambda _:
        unet_layer_costs(paper_scale_stable_diffusion_config(), 64)`` routes
        with paper-scale costs — useful because the reproduction's stand-in
        models are so small that launch overhead flattens the scheme spread.
        """
        if not schemes:
            raise ValueError("router needs at least one candidate scheme")
        # Sort best quality (most bits) first; ties keep caller order.
        self.schemes: List[str] = sorted(
            schemes, key=lambda s: -get_scheme(s).bits)
        self.device = device
        self.batch_size = batch_size
        self.context_tokens = context_tokens
        self._costs_fn = costs_fn or self._spec_costs
        self._cost_cache: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    def _spec_costs(self, model: str) -> List[LayerCost]:
        spec = get_model_spec(model)
        return unet_layer_costs(spec.unet, spec.sample_shape[-1],
                                batch_size=self.batch_size,
                                context_tokens=self.context_tokens)

    def predicted_step_latency(self, model: str, scheme: str) -> float:
        """Roofline latency of one denoising step of ``model`` at ``scheme``."""
        key = (model, scheme)
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        latency = estimate_scheme_latency(self._costs_fn(model), self.device,
                                          scheme)
        self._cost_cache[key] = latency
        return latency

    def predicted_latency(self, model: str, scheme: str, num_steps: int) -> float:
        """Predicted end-to-end generation latency (all denoising steps)."""
        return self.predicted_step_latency(model, scheme) * num_steps

    def predictions(self, model: str, num_steps: int) -> Dict[str, float]:
        """Predicted latency for every candidate scheme (debug/ops view)."""
        return {scheme: self.predicted_latency(model, scheme, num_steps)
                for scheme in self.schemes}

    # ------------------------------------------------------------------
    def route(self, request: Request, num_steps: Optional[int] = None) -> str:
        """Pick the scheme to serve ``request`` with.

        An explicitly requested scheme always wins.  With an SLO, the
        best-quality scheme predicted to fit is chosen (so the cheaper,
        lower-precision schemes are used exactly when the budget demands
        them); with no feasible scheme, the fastest one; with no SLO, the
        best-quality scheme.
        """
        if request.scheme is not None:
            return request.scheme
        if request.latency_slo is None:
            return self.schemes[0]
        steps = num_steps
        if steps is None:
            steps = (request.num_steps
                     or get_model_spec(request.model).default_sampling_steps)
        predictions = {scheme: self.predicted_latency(request.model, scheme, steps)
                       for scheme in self.schemes}
        for scheme in self.schemes:  # best quality first
            if predictions[scheme] <= request.latency_slo:
                return scheme
        return min(predictions, key=predictions.get)

"""SLO-aware (scheme, plan) routing over the analytic roofline cost model.

Routing implements the paper-motivated serving policy in **two dimensions**:
quantization is a latency/quality dial (fewer bits, cheaper forwards) and so
is the generation plan (fewer steps, fewer forwards; guidance doubles them;
second-order solvers multiply them).  Each request should be served at the
highest quality its latency budget allows — FP32 at the full step budget
when there is headroom, lower-precision schemes as the SLO tightens, and
only then reduced step budgets (conf_iiswc_ChenGM24's characterization is
exactly the cost model that makes this prediction possible without running
anything).

For a candidate ``(scheme, plan)`` the router predicts end-to-end latency as

    plan_model_evals(steps, guidance, solver order)
        x roofline(U-Net forward @ scheme bytes-per-element)

using :func:`repro.profiling.estimate_plan_latency` semantics, then picks
the best-quality candidate that fits the SLO.  Quality order: full step
budget across the scheme ladder first (the paper shows precision costs less
quality than trajectory truncation at matched speedups), then progressively
reduced step budgets.  When nothing fits, it degrades to the cheapest
candidate — an overloaded system serves *something* rather than nothing.
Requests without an SLO get the best-quality scheme at the full plan.

:meth:`SLORouter.route` keeps the legacy scheme-string contract as a shim
over :meth:`SLORouter.decide`, which returns the full
:class:`RoutingDecision` (scheme + concrete plan + predicted latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.schemes import get_scheme
from ..diffusion.plan import GenerationPlan
from ..diffusion.samplers import get_sampler_info
from ..models import get_model_spec
from ..profiling import (
    GPU_V100,
    DeviceProfile,
    LayerCost,
    estimate_scheme_latency,
    plan_model_evals,
    unet_layer_costs,
)
from .request import Request

#: Default candidate ladder, best quality first.
DEFAULT_SCHEMES = ("fp32", "fp8", "fp4")

#: Step budgets the router may degrade to, as fractions of the requested
#: budget, best quality (most steps) first.
DEFAULT_STEP_FRACTIONS = (1.0, 0.5, 0.25)


@dataclass(frozen=True)
class RoutingDecision:
    """The router's verdict for one request: what to serve it with."""

    scheme: str
    plan: GenerationPlan            # num_steps resolved to a concrete count
    predicted_latency: float        # roofline end-to-end estimate (seconds)


class SLORouter:
    """Chooses a (scheme, generation plan) per request from predictions."""

    def __init__(self, schemes: Sequence[str] = DEFAULT_SCHEMES,
                 device: DeviceProfile = GPU_V100,
                 batch_size: int = 1,
                 context_tokens: int = 16,
                 costs_fn: Optional[Callable[[str], List[LayerCost]]] = None,
                 step_fractions: Sequence[float] = DEFAULT_STEP_FRACTIONS):
        """
        ``costs_fn`` maps a model name to the per-layer cost list the
        roofline runs over; the default walks the model's own (scaled-down)
        ``UNetConfig``.  Passing e.g. ``lambda _:
        unet_layer_costs(paper_scale_stable_diffusion_config(), 64)`` routes
        with paper-scale costs — useful because the reproduction's stand-in
        models are so small that launch overhead flattens the scheme spread.

        ``step_fractions`` are the step budgets the router may degrade a
        request's plan to (fractions of the requested budget).  The full
        budget is always a candidate; fractions outside ``(0, 1]`` are
        rejected.
        """
        if not schemes:
            raise ValueError("router needs at least one candidate scheme")
        # Sort best quality (most bits) first; ties keep caller order.
        self.schemes: List[str] = sorted(
            schemes, key=lambda s: -get_scheme(s).bits)
        for fraction in step_fractions:
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"step fractions must be in (0, 1], got {fraction}")
        fractions = sorted(set(step_fractions) | {1.0}, reverse=True)
        self.step_fractions: Tuple[float, ...] = tuple(fractions)
        self.device = device
        self.batch_size = batch_size
        self.context_tokens = context_tokens
        self._costs_fn = costs_fn or self._spec_costs
        self._cost_cache: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    def _spec_costs(self, model: str) -> List[LayerCost]:
        spec = get_model_spec(model)
        return unet_layer_costs(spec.unet, spec.sample_shape[-1],
                                batch_size=self.batch_size,
                                context_tokens=self.context_tokens)

    def predicted_step_latency(self, model: str, scheme: str) -> float:
        """Roofline latency of one U-Net forward of ``model`` at ``scheme``."""
        key = (model, scheme)
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        latency = estimate_scheme_latency(self._costs_fn(model), self.device,
                                          scheme)
        self._cost_cache[key] = latency
        return latency

    def predicted_latency(self, model: str, scheme: str, num_steps: int) -> float:
        """Predicted end-to-end latency of a plain ``num_steps`` trajectory."""
        return self.predicted_step_latency(model, scheme) * num_steps

    def plan_steps(self, model: str, plan: GenerationPlan) -> int:
        """The concrete step count ``plan`` performs on ``model``.

        Plans for full-grid samplers (DDPM) carry no step budget; they
        resolve to the model's ``train_timesteps``.
        """
        spec = get_model_spec(model)
        return plan.resolve_steps(spec.default_sampling_steps,
                                  spec.train_timesteps)

    def predicted_plan_latency(self, model: str, scheme: str,
                               plan: GenerationPlan) -> float:
        """Predicted end-to-end latency of serving ``plan`` at ``scheme``.

        The same quantity as :func:`repro.profiling.estimate_plan_latency`,
        built from the cached per-forward roofline: accounts for the
        solver's evaluations per step and the 2x model evaluations of
        classifier-free guidance.
        """
        info = get_sampler_info(plan.sampler)
        evals = plan_model_evals(
            self.plan_steps(model, plan), plan.guidance_scale,
            info.evals_per_step, info.first_order_final_step)
        return self.predicted_step_latency(model, scheme) * evals

    def predictions(self, model: str, num_steps: int) -> Dict[str, float]:
        """Predicted latency for every candidate scheme (debug/ops view)."""
        return {scheme: self.predicted_latency(model, scheme, num_steps)
                for scheme in self.schemes}

    # ------------------------------------------------------------------
    def resolve_plan(self, request: Request,
                     num_steps: Optional[int] = None) -> GenerationPlan:
        """The request's plan with a concrete step count.

        Precedence for the step budget: the plan's own ``num_steps``, the
        request's legacy ``num_steps`` field, an explicit ``num_steps``
        argument, then the model's ``default_sampling_steps`` (samplers that
        walk the full training grid resolve to ``train_timesteps``).
        """
        plan = request.plan or GenerationPlan()
        if plan.num_steps is None and request.num_steps is not None:
            plan = plan.with_(num_steps=request.num_steps)
        spec = get_model_spec(request.model)
        default_steps = num_steps or spec.default_sampling_steps
        return plan.with_(num_steps=plan.resolve_steps(default_steps,
                                                       spec.train_timesteps))

    def _candidate_plans(self, plan: GenerationPlan) -> List[GenerationPlan]:
        """Step-degraded variants of ``plan``, best quality first."""
        if not get_sampler_info(plan.sampler).uses_step_budget:
            return [plan]
        budgets = dict.fromkeys(
            max(1, int(round(plan.num_steps * fraction)))
            for fraction in self.step_fractions)
        return [plan.with_(num_steps=steps) for steps in budgets]

    def decide(self, request: Request,
               num_steps: Optional[int] = None,
               allow_step_reduction: bool = True) -> RoutingDecision:
        """Pick the (scheme, plan) to serve ``request`` with.

        An explicitly requested scheme always wins the scheme dimension.
        With an SLO, the best-quality candidate predicted to fit is chosen —
        trying the full step budget across the scheme ladder before reducing
        steps, so cheaper schemes absorb tight budgets first and the
        trajectory is only truncated when no precision can save it.  With no
        feasible candidate, the cheapest one; with no SLO, best quality at
        the full budget.  ``allow_step_reduction=False`` restricts the
        search to the requested budget (the one-dimensional legacy policy —
        a caller that will generate at full steps regardless must not be
        handed a scheme that was only feasible at fewer).
        """
        plan = self.resolve_plan(request, num_steps=num_steps)
        schemes = ([request.scheme] if request.scheme is not None
                   else self.schemes)
        if request.latency_slo is None:
            scheme = schemes[0]
            return RoutingDecision(
                scheme=scheme, plan=plan,
                predicted_latency=self.predicted_plan_latency(
                    request.model, scheme, plan))
        plans = (self._candidate_plans(plan) if allow_step_reduction
                 else [plan])
        candidates = [(scheme, candidate)
                      for candidate in plans
                      for scheme in schemes]
        predicted = {
            (scheme, candidate): self.predicted_plan_latency(
                request.model, scheme, candidate)
            for scheme, candidate in candidates}
        for scheme, candidate in candidates:  # best quality first
            if predicted[(scheme, candidate)] <= request.latency_slo:
                return RoutingDecision(scheme=scheme, plan=candidate,
                                       predicted_latency=predicted[
                                           (scheme, candidate)])
        scheme, candidate = min(predicted, key=predicted.get)
        return RoutingDecision(scheme=scheme, plan=candidate,
                               predicted_latency=predicted[(scheme, candidate)])

    def route(self, request: Request, num_steps: Optional[int] = None) -> str:
        """Legacy shim: the best scheme *at the requested step budget*.

        Step reduction is disabled because callers of the string-returning
        API generate at the request's own step count — handing them a
        scheme that only fit the SLO at fewer steps would serve the worst
        of both dimensions.
        """
        return self.decide(request, num_steps=num_steps,
                           allow_step_reduction=False).scheme

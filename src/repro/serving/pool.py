"""Model-variant pool: quantized pipelines per (model, scheme), LRU-evicted.

The quantization registry gives every checkpoint a family of precision
variants (FP32, FP8, FP4, INT8, ...).  The pool is the serving-side owner of
those variants: :meth:`ModelVariantPool.get` lazily builds the pipeline for
a ``(model, scheme)`` pair — loading the zoo checkpoint (memoized
in-process by :func:`repro.zoo.load_pretrained`) and running post-training
quantization via :func:`repro.core.quantize_pipeline` — and caches it.

With a ``run_store`` (the experiments' content-addressed
:class:`~repro.experiments.store.RunStore`), the default builder instead
goes through :func:`repro.experiments.variants.build_variant`: a variant
quantized before — by a previous server process or by :meth:`prewarm` —
is *loaded* from the artifact store instead of re-quantized at request
time.  Stage-level sharing with experiment runs follows content keys: the
pretrain checkpoint is shared whenever the pretrain configs match, while
calibration/quantize artifacts are shared only when the serving
quantization config coincides with the experiment's (serving uses the
pool's own ``quantization`` mapping, not a spec's bench-scaled configs).
Per-variant build time and provenance (``"store"`` vs ``"cold"``) land in
:meth:`stats` so serving reports show prewarm effectiveness.

Resident variants are charged against a **memory budget** using the
analytic peak-memory estimator of :mod:`repro.profiling.memory` with
scheme-dependent bytes per element, so an FP4 variant costs the pool ~8x
less than FP32 and low-precision variants pack denser.  When a build pushes
the total over budget, least-recently-used variants are evicted (the newest
variant is always kept, even alone over budget, so serving can't wedge).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..core import QuantizationConfig, quantize_pipeline
from ..diffusion import DiffusionPipeline
from ..models import get_model_spec
from ..profiling import estimate_peak_memory, scheme_bytes_per_element
from ..zoo import PretrainConfig, load_pretrained

VariantKey = Tuple[str, str]  # (model name, scheme name)


def variant_cost_bytes(model: str, scheme: str, batch_size: int = 8) -> float:
    """Analytic memory cost of keeping one pipeline variant resident.

    Peak inference memory of the variant's U-Net at the pool's serving
    batch size, with both weights and activations priced at the scheme's
    bytes per element (:mod:`repro.profiling.memory`, paper Figure 5).
    """
    spec = get_model_spec(model)
    bytes_per_element = scheme_bytes_per_element(scheme)
    sample_size = spec.sample_shape[-1]
    estimate = estimate_peak_memory(
        spec.unet, sample_size, batch_size,
        weight_bytes_per_element=bytes_per_element,
        activation_bytes_per_element=bytes_per_element)
    return estimate.total_bytes


class ModelVariantPool:
    """Lazily-built, LRU-evicted cache of quantized pipeline variants."""

    def __init__(self, memory_budget_bytes: Optional[float] = None,
                 batch_size: int = 8,
                 pretrain: Optional[PretrainConfig] = None,
                 cache_dir=None,
                 quantization: Optional[Callable[[str], QuantizationConfig]] = None,
                 builder: Optional[Callable[[str, str], DiffusionPipeline]] = None,
                 cost_fn: Optional[Callable[[str, str], float]] = None,
                 run_store=None,
                 clock: Optional[Callable[[], float]] = None,
                 fallback_clock: Callable[[], float] = time.perf_counter):
        """
        ``builder`` overrides how a ``(model, scheme)`` pipeline is built
        (tests inject stubs; production uses the zoo + quantizer default).
        ``quantization`` maps a scheme name to the full
        :class:`QuantizationConfig` used for that variant (default: the
        scheme for both weights and activations).  ``cost_fn`` overrides the
        per-variant memory accounting; ``memory_budget_bytes=None`` disables
        eviction entirely.  ``run_store`` (a
        :class:`repro.experiments.RunStore`) makes the default builder load
        pre-quantized variants from the content-addressed artifact store,
        falling back to a cold quantize that populates the store.
        ``clock`` stamps build/prewarm durations; ``None`` means
        ``fallback_clock`` (wall time by default) until an engine adopts
        the pool, at which point the engine threads its own (possibly
        virtual) clock through so the pool's timing stats are
        deterministic whenever the engine's are.
        """
        self.memory_budget_bytes = memory_budget_bytes
        self.clock = clock
        self._fallback_clock = fallback_clock
        self.batch_size = batch_size
        self.pretrain = pretrain or PretrainConfig()
        self.cache_dir = cache_dir
        self.run_store = run_store
        self._quantization = quantization or self._default_quantization
        self._builder = builder or self._default_builder
        self._cost_fn = cost_fn or (
            lambda model, scheme: variant_cost_bytes(model, scheme,
                                                     self.batch_size))
        self._variants: "OrderedDict[VariantKey, DiffusionPipeline]" = OrderedDict()
        self._costs: Dict[VariantKey, float] = {}
        #: Per-variant build provenance: build time and "store"/"cold"/
        #: "custom" source, kept across evictions for the serving report.
        self._variant_meta: Dict[VariantKey, Dict] = {}
        self._last_build_source: Optional[str] = None
        self.hits = 0
        self.builds = 0
        self.evictions = 0
        self.store_loads = 0
        self.cold_builds = 0

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return (self.clock or self._fallback_clock)()

    @staticmethod
    def _default_quantization(scheme: str) -> QuantizationConfig:
        return QuantizationConfig(weight_dtype=scheme, activation_dtype=scheme)

    def _default_builder(self, model: str, scheme: str) -> DiffusionPipeline:
        config = self._quantization(scheme)
        if self.run_store is not None:
            from ..experiments.variants import build_variant
            built = build_variant(model, config, pretrain=self.pretrain,
                                  store=self.run_store,
                                  zoo_cache_dir=self.cache_dir)
            self._last_build_source = built.source
            return built.pipeline
        checkpoint = load_pretrained(model, self.pretrain,
                                     cache_dir=self.cache_dir)
        pipeline = DiffusionPipeline(checkpoint)
        prompts = None
        if pipeline.is_text_to_image and config.requires_calibration():
            from ..data import PromptDataset
            prompts = PromptDataset(config.calibration.num_samples).prompts
        quantized, _report = quantize_pipeline(pipeline, config, prompts=prompts)
        self._last_build_source = "cold"
        return quantized

    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> float:
        return sum(self._costs.values())

    @property
    def resident_variants(self) -> Tuple[VariantKey, ...]:
        """Resident keys in least- to most-recently-used order."""
        return tuple(self._variants)

    def stats(self) -> Dict:
        return {
            "hits": self.hits,
            "builds": self.builds,
            "evictions": self.evictions,
            "resident": len(self._variants),
            "resident_bytes": self.resident_bytes,
            "memory_budget_bytes": self.memory_budget_bytes,
            "store_loads": self.store_loads,
            "cold_builds": self.cold_builds,
            "variants": {
                f"{model}/{scheme}": dict(meta,
                                          resident=(model, scheme) in self._variants)
                for (model, scheme), meta in self._variant_meta.items()
            },
        }

    def has_variant(self, model: str, scheme: str) -> bool:
        """Whether ``(model, scheme)`` is resident right now (no build).

        Affinity routing scores replicas by residency without touching the
        LRU order — :meth:`get` would promote the key and build on a miss.
        """
        return (model, scheme) in self._variants

    # ------------------------------------------------------------------
    def get(self, model: str, scheme: str) -> DiffusionPipeline:
        """Return the pipeline for ``(model, scheme)``, building it lazily."""
        key: VariantKey = (model, scheme)
        pipeline = self._variants.get(key)
        if pipeline is not None:
            self.hits += 1
            self._variants.move_to_end(key)
            return pipeline
        self._last_build_source = None
        started = self._now()
        pipeline = self._builder(model, scheme)
        build_time = self._now() - started
        source = self._last_build_source or "custom"
        if source == "store":
            self.store_loads += 1
        elif source == "cold":
            self.cold_builds += 1
        self.builds += 1
        self._variant_meta[key] = {"build_time_s": build_time, "source": source}
        self._variants[key] = pipeline
        self._costs[key] = float(self._cost_fn(model, scheme))
        self._evict_over_budget(keep=key)
        return pipeline

    def _evict_over_budget(self, keep: VariantKey) -> None:
        if self.memory_budget_bytes is None:
            return
        while (self.resident_bytes > self.memory_budget_bytes
               and len(self._variants) > 1):
            victim = next(iter(self._variants))
            if victim == keep:
                # The newest variant alone exceeds the budget; keep serving.
                break
            self._variants.pop(victim)
            self._costs.pop(victim)
            self.evictions += 1

    def warm(self, variants) -> None:
        """Pre-build an iterable of ``(model, scheme)`` pairs (cold-start)."""
        for model, scheme in variants:
            self.get(model, scheme)

    def prewarm(self, specs: Iterable) -> Dict:
        """Build every variant a workload will need before traffic arrives.

        ``specs`` may mix ``(model, scheme)`` pairs and
        :class:`repro.experiments.ExperimentSpec` objects; a spec
        contributes one variant per distinct row weight scheme of its
        model (the *schemes* are taken from the spec — each variant is
        still quantized with the pool's own ``quantization`` config, since
        that is what :meth:`get` must later serve).  Builds go through the
        pool's builder, so with a ``run_store`` attached the prewarm is
        mostly artifact loads after the first server process has run.
        Returns a summary (per-variant source and build time) for the
        serving report.
        """
        pairs = []
        for item in specs:
            if isinstance(item, tuple):
                pairs.append(item)
            else:  # an ExperimentSpec
                for row in item.rows:
                    pairs.append((item.model, row.resolve_config().weight_dtype))
        pairs = list(dict.fromkeys(pairs))
        loads_before = self.store_loads
        cold_before = self.cold_builds
        started = self._now()
        for model, scheme in pairs:
            self.get(model, scheme)
        return {
            "prewarmed": [f"{model}/{scheme}" for model, scheme in pairs],
            "duration_s": self._now() - started,
            # deltas for *this* prewarm, not pool-lifetime totals
            "store_loads": self.store_loads - loads_before,
            "cold_builds": self.cold_builds - cold_before,
            "variants": {
                f"{model}/{scheme}": dict(self._variant_meta.get(
                    (model, scheme), {}))
                for model, scheme in pairs
            },
        }

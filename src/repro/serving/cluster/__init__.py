"""Distributed serving tier: replicated engines behind one front door.

Scales the single-node :mod:`repro.serving` engine out to a simulated
fleet, exercised by trace-driven, multi-tenant traffic — the serving-
systems half of the paper's story: quantized variants are cheap enough to
replicate and swap, so placement (which replica holds which variant) and
admission (who gets capacity under overload) become the levers.

* :mod:`~repro.serving.cluster.replica` — one engine per replica with a
  lifecycle (warming/active/draining/stopped), a serial executor
  timeline, and the deterministic roofline-driven service/variant-load
  cost model;
* :mod:`~repro.serving.cluster.frontdoor` — bounded admission with
  per-tenant token-bucket fairness and attributed rejection reasons;
* :mod:`~repro.serving.cluster.affinity` — replica-selection policies
  (round-robin, least-loaded, variant-affinity) and the memoizing router
  wrapper that makes 10^6-request routing cheap;
* :mod:`~repro.serving.cluster.autoscaler` — replica-count control from
  arrival rate and modeled cost, with warmup/cooldown/drain semantics;
* :mod:`~repro.serving.cluster.trace` — diurnal + bursty Poisson
  arrivals, Zipf tenants/prompts, per-tenant SLO-tier mixes;
* :mod:`~repro.serving.cluster.sim` — the discrete-event loop on one
  shared :class:`~repro.serving.clock.VirtualClock`;
* :mod:`~repro.serving.cluster.report` — cluster/tenant/tier percentiles,
  SLO attainment, fairness, variant churn and the autoscaler timeline,
  emitted deterministically as ``cluster_report.json``.

Typical use::

    from repro.serving.cluster import (
        ClusterConfig, TraceConfig, generate_trace, run_cluster_sim)

    trace = generate_trace(TraceConfig(num_requests=100_000, seed=0))
    report = run_cluster_sim(trace, ClusterConfig(initial_replicas=4),
                             report_path="cluster_report.json")
"""

from .affinity import (
    POLICIES,
    AffinityPolicy,
    CachedRouter,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    make_policy,
)
from .autoscaler import Autoscaler, AutoscalerConfig
from .frontdoor import FrontDoor, FrontDoorConfig, TokenBucket
from .replica import (
    ACTIVE,
    DRAINING,
    GPU_L4_SERVING,
    STOPPED,
    WARMING,
    ClusterCostModel,
    Replica,
    ReplicaConfig,
    SimPipeline,
    default_cluster_router,
    paper_costs_fn,
)
from .report import (
    SCHEMA,
    ClusterStats,
    build_cluster_report,
    save_cluster_report,
)
from .sim import ClusterConfig, ClusterSimulation, run_cluster_sim
from .trace import (
    TRACE_TIERS,
    Trace,
    TraceConfig,
    default_plan_mix,
    generate_trace,
    tier_slo_seconds,
)

__all__ = [
    "Replica", "ReplicaConfig", "ClusterCostModel", "SimPipeline",
    "paper_costs_fn", "default_cluster_router", "GPU_L4_SERVING",
    "WARMING", "ACTIVE", "DRAINING", "STOPPED",
    "FrontDoor", "FrontDoorConfig", "TokenBucket",
    "RoutingPolicy", "RoundRobinPolicy", "LeastLoadedPolicy",
    "AffinityPolicy", "CachedRouter", "POLICIES", "make_policy",
    "Autoscaler", "AutoscalerConfig",
    "Trace", "TraceConfig", "generate_trace", "default_plan_mix",
    "tier_slo_seconds", "TRACE_TIERS",
    "ClusterSimulation", "ClusterConfig", "run_cluster_sim",
    "ClusterStats", "build_cluster_report", "save_cluster_report",
    "SCHEMA",
]

"""Front door: bounded admission, per-tenant fairness, replica placement.

Every request enters the cluster here.  Admission is a short deterministic
pipeline; the first failing stage rejects the request with an attributed
reason:

1. **throttled** — the tenant's token bucket is empty.  Each tenant gets
   an identical bucket (``tenant_rate`` tokens/s, ``tenant_burst`` cap),
   so one hot tenant saturates its own bucket instead of starving the
   rest: cross-tenant fairness under Zipf-skewed tenant popularity.
2. **no_replica** — no replica is ``active`` (all still warming, or the
   autoscaler drained too deep).
3. **overload** — total in-flight work across active replicas is at the
   cluster backlog bound; shedding here keeps queueing latency bounded
   instead of letting the tail grow without limit.
4. **queue_full** — the chosen replica's own capacity check failed (the
   replica attributes this one itself, per tenant/tier).

Admitted requests are routed (scheme/plan via the shared cached SLO
router) and placed by the configured :class:`~repro.serving.cluster.
affinity.RoutingPolicy`.  The front door also keeps per-tenant
offered/admitted tallies and windowed arrival/cost counters that feed the
autoscaler's utilization estimate.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..request import Request
from ..stats import ServingStats
from .affinity import RoutingPolicy
from .replica import ClusterCostModel, Replica


class TokenBucket:
    """Deterministic token bucket refilled by elapsed virtual time."""

    __slots__ = ("rate", "capacity", "tokens", "updated_at")

    def __init__(self, rate: float, capacity: float, now: float = 0.0):
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self.updated_at = now

    def try_take(self, now: float) -> bool:
        if now > self.updated_at:
            self.tokens = min(self.capacity,
                              self.tokens + (now - self.updated_at) * self.rate)
            self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class FrontDoorConfig:
    """Admission knobs for the cluster front door."""

    def __init__(self, tenant_rate: float = 2.0, tenant_burst: float = 20.0,
                 max_cluster_pending: int = 512):
        """
        ``tenant_rate``/``tenant_burst`` parameterize every tenant's token
        bucket (requests/s sustained, burst allowance).
        ``max_cluster_pending`` bounds total admitted-but-unfinished
        requests across active replicas — the cluster-wide backlog bound.
        """
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.max_cluster_pending = max_cluster_pending


class FrontDoor:
    """Admission control + routing for a replica set."""

    def __init__(self, router, policy: RoutingPolicy,
                 cost_model: ClusterCostModel,
                 config: Optional[FrontDoorConfig] = None,
                 tracer=None):
        self.router = router
        self.policy = policy
        self.cost_model = cost_model
        self.config = config or FrontDoorConfig()
        #: Optional :class:`repro.obs.Tracer`: every admission rejection
        #: becomes an instant event on the cluster's "frontdoor" lane
        #: (timestamped explicitly with the virtual now, so the tracer's
        #: own clock never matters here).
        self.tracer = tracer if (tracer is not None
                                 and getattr(tracer, "enabled", True)) else None
        #: Rejection bookkeeping (per tenant/tier/reason) reuses the
        #: serving stats counters, so the report format matches the
        #: single-engine ``report()["rejections"]`` block.
        self.stats = ServingStats(keep_records=False)
        self.offered = 0
        self.admitted = 0
        self.offered_by_tenant: Dict[str, int] = {}
        self.admitted_by_tenant: Dict[str, int] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        # Windowed signals for the autoscaler (reset by take_window()).
        self._window_arrivals = 0
        self._window_admitted = 0
        self._window_cost_s = 0.0

    # ------------------------------------------------------------------
    def _bucket(self, tenant: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.config.tenant_rate,
                                 self.config.tenant_burst, now=now)
            self._buckets[tenant] = bucket
        return bucket

    def _reject(self, request: Request, reason: str, now: float) -> None:
        self.stats.record_rejection(tenant=request.tenant, tier=request.tier,
                                    reason=reason)
        if self.tracer is not None:
            self.tracer.instant("admission.rejected", ts=now,
                                category="admission", lane="frontdoor",
                                process="cluster",
                                attrs={"reason": reason,
                                       "tenant": request.tenant,
                                       "tier": request.tier})

    # ------------------------------------------------------------------
    def dispatch(self, request: Request, now: float,
                 replicas: Sequence[Replica]) -> Optional[Replica]:
        """Admit, route and place one request; None means rejected.

        The rejection (with its stage reason) is already recorded when
        None is returned — including replica-level ``queue_full``, which
        the chosen replica attributes in its own stats.
        """
        self.offered += 1
        self._window_arrivals += 1
        tenant = request.tenant or "anonymous"
        self.offered_by_tenant[tenant] = \
            self.offered_by_tenant.get(tenant, 0) + 1

        if not self._bucket(tenant, now).try_take(now):
            self._reject(request, "throttled", now)
            return None

        active = RoutingPolicy.active(replicas)
        if not active:
            self._reject(request, "no_replica", now)
            return None

        if (sum(r.inflight for r in active)
                >= self.config.max_cluster_pending):
            self._reject(request, "overload", now)
            return None

        decision = self.router.decide(request)
        replica = self.policy.choose(replicas, request, decision, now,
                                     self.cost_model)
        if replica is None or not replica.submit(request):
            # Replica-level shedding already recorded as queue_full with
            # tenant/tier attribution by the replica's own stats.
            return None

        self.admitted += 1
        self._window_admitted += 1
        self._window_cost_s += self.cost_model.amortized_request_seconds(
            request.model, decision.scheme, decision.plan,
            batch_size_hint=max(replica.config.max_batch_size / 2.0, 1.0))
        self.admitted_by_tenant[tenant] = \
            self.admitted_by_tenant.get(tenant, 0) + 1
        return replica

    # ------------------------------------------------------------------
    def take_window(self) -> Tuple[int, int, float]:
        """Return and reset (arrivals, admitted, modeled admitted cost s).

        Called once per autoscaler tick; arrivals/interval is the offered
        rate, cost/admitted the mean amortized service seconds.
        """
        window = (self._window_arrivals, self._window_admitted,
                  self._window_cost_s)
        self._window_arrivals = 0
        self._window_admitted = 0
        self._window_cost_s = 0.0
        return window

    def summary(self) -> Dict:
        """Front-door block of the cluster report."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "admission_rate": (self.admitted / self.offered
                               if self.offered else 1.0),
            "rejections": self.stats.rejections(),
            "tenants": len(self.offered_by_tenant),
            "policy": self.policy.name,
        }

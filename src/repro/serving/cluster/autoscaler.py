"""Autoscaler: replica-count control from arrival rate and modeled cost.

Sizing follows the cost model's utilization law
(:func:`repro.profiling.estimate_utilization`): with offered rate λ and
amortized service time S per request, N active replicas run at
ρ = λ·S / N, so holding a target utilization ρ* needs

    desired = ceil(λ · S / ρ*)

clamped to ``[min_replicas, max_replicas]``.  λ comes from the front
door's windowed arrival counter and S from the modeled cost of what was
actually admitted (smoothed with an EWMA so one quiet tick doesn't flap
the fleet).

Scaling is deliberately not free or instant:

* **warmup** — a scale-up decision creates ``warming`` replicas that take
  traffic only ``warmup_seconds`` later (the cluster event loop schedules
  the activation), so a burst always pays some queueing before capacity
  arrives;
* **cooldown** — after any scaling action the controller holds for
  ``cooldown_seconds``, damping oscillation;
* **drain, don't kill** — scale-down marks the highest-id active replica
  ``draining``: it finishes in-flight work, then stops.  One replica per
  tick, so downscaling is gradual.

Every tick appends a point to :attr:`timeline` (rate, utilization,
desired/active/warming/draining counts, action), which the cluster report
emits so autoscaler behaviour over the trace is auditable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ...profiling import estimate_utilization


class AutoscalerConfig:
    """Control knobs for the replica-count controller."""

    def __init__(self, min_replicas: int = 2, max_replicas: int = 8,
                 target_utilization: float = 0.6,
                 scale_down_utilization: float = 0.3,
                 warmup_seconds: float = 30.0,
                 cooldown_seconds: float = 60.0,
                 interval_seconds: float = 15.0,
                 service_ewma: float = 0.5,
                 default_service_seconds: float = 0.3):
        if not 0 < target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1], got "
                             f"{target_utilization}")
        if scale_down_utilization >= target_utilization:
            raise ValueError("scale_down_utilization must be below "
                             "target_utilization")
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ValueError(f"need 1 <= min_replicas <= max_replicas, got "
                             f"{min_replicas}..{max_replicas}")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.target_utilization = target_utilization
        self.scale_down_utilization = scale_down_utilization
        self.warmup_seconds = warmup_seconds
        self.cooldown_seconds = cooldown_seconds
        self.interval_seconds = interval_seconds
        self.service_ewma = service_ewma
        self.default_service_seconds = default_service_seconds


class Autoscaler:
    """Tick-driven desired-replica controller; the sim applies decisions."""

    def __init__(self, config: Optional[AutoscalerConfig] = None):
        self.config = config or AutoscalerConfig()
        self.timeline: List[Dict] = []
        self._last_action_at: Optional[float] = None
        self._service_estimate = self.config.default_service_seconds

    # ------------------------------------------------------------------
    def _cooldown_ok(self, now: float) -> bool:
        return (self._last_action_at is None
                or now - self._last_action_at
                >= self.config.cooldown_seconds)

    def evaluate(self, now: float, arrivals: int, busy_delta_s: float,
                 completed: int, active: int, warming: int,
                 draining: int) -> Dict:
        """One control tick; returns the decision (also appended to the
        timeline).

        ``arrivals`` is this window's offered count (front door);
        ``busy_delta_s``/``completed`` the executor busy-seconds booked
        and requests completed this window — *measured* signals, so the
        per-request service estimate reflects realized batching, variant
        loads and the traffic mix rather than a model guess.
        ``active``/``warming``/``draining`` are the fleet composition.
        The decision dict's ``action`` is ``hold``/``scale_up``/
        ``scale_down``, with ``count`` replicas to start or drain.
        """
        cfg = self.config
        rate = arrivals / cfg.interval_seconds
        if completed > 0:
            fresh = busy_delta_s / completed
            self._service_estimate = (cfg.service_ewma * fresh
                                      + (1 - cfg.service_ewma)
                                      * self._service_estimate)
        service = self._service_estimate
        # Demand-side utilization (offered work over capacity), the same
        # law the sizing inverts; capped-capacity windows where the
        # backlog grows still read > 1 because `rate` is offered, not
        # completed.
        utilization = estimate_utilization(rate, service, max(active, 1))
        desired = math.ceil(rate * service / cfg.target_utilization)
        desired = max(cfg.min_replicas, min(cfg.max_replicas, desired))

        provisioned = active + warming
        action, count = "hold", 0
        if self._cooldown_ok(now):
            if desired > provisioned:
                action = "scale_up"
                count = desired - provisioned
                self._last_action_at = now
            elif (desired < provisioned
                  and utilization < cfg.scale_down_utilization
                  and provisioned - draining > cfg.min_replicas):
                action = "scale_down"
                count = 1
                self._last_action_at = now

        point = {
            "t": now,
            "rate_rps": rate,
            "service_s": service,
            "utilization": utilization,
            "desired": desired,
            "active": active,
            "warming": warming,
            "draining": draining,
            "action": action,
            "count": count,
        }
        self.timeline.append(point)
        return point

    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """Autoscaler block of the cluster report."""
        ups = sum(p["count"] for p in self.timeline
                  if p["action"] == "scale_up")
        downs = sum(p["count"] for p in self.timeline
                    if p["action"] == "scale_down")
        return {
            "enabled": True,
            "ticks": len(self.timeline),
            "scale_ups": ups,
            "scale_downs": downs,
            "peak_desired": max((p["desired"] for p in self.timeline),
                                default=0),
            "peak_active": max((p["active"] for p in self.timeline),
                               default=0),
            "timeline": self.timeline,
        }

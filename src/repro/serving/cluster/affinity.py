"""Replica selection policies and the memoizing router wrapper.

The front door has to place every admitted request on one of the active
replicas.  Policies here implement that choice:

* :class:`RoundRobinPolicy` — the classic baseline: rotate through active
  replicas, oblivious to load and variant residency;
* :class:`LeastLoadedPolicy` — pick the replica with the least modeled
  backlog (join-the-shortest-queue in units of seconds, not requests);
* :class:`AffinityPolicy` — score replicas by modeled backlog *plus* a
  variant-load penalty when the request's routed (model, scheme) variant
  is not resident there.  Under a memory budget that cannot hold every
  variant everywhere, this specializes replicas onto variant subsets and
  converts most would-be variant reloads into residency hits — lower tail
  latency and less churn than round-robin, which the cluster tests assert.

All policies are deterministic: ties break on the lowest replica id.

:class:`CachedRouter` wraps the SLO router with a decision memo keyed by
the request's routing-relevant fields.  Trace traffic draws from a small
cross-product of (model, plan, steps, SLO), so at 10^6 requests the memo
turns ~10^6 cost-model evaluations into a handful — this is what makes
million-request simulation CI-feasible while every replica engine and the
front door still consult the *same* routing function.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..request import Request
from ..router import RoutingDecision, SLORouter
from .replica import ACTIVE, ClusterCostModel, Replica


class CachedRouter:
    """Memoizes :meth:`SLORouter.decide` by routing-relevant request fields.

    Sound because the router is a pure function of (model, scheme-pin,
    plan, step budget, SLO) — nothing else on the request influences the
    decision.  Everything else (``predictions``, ``resolve_plan``, ...)
    delegates to the wrapped router, so a ``CachedRouter`` drops in
    anywhere an :class:`SLORouter` is accepted.
    """

    def __init__(self, inner: SLORouter):
        self.inner = inner
        self._decisions: Dict[Tuple, RoutingDecision] = {}

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def decide(self, request: Request) -> RoutingDecision:
        key = (request.model, request.scheme, request.plan,
               request.num_steps, request.latency_slo)
        decision = self._decisions.get(key)
        if decision is None:
            decision = self.inner.decide(request)
            self._decisions[key] = decision
        return decision

    @property
    def cache_size(self) -> int:
        return len(self._decisions)


class RoutingPolicy:
    """Chooses the replica an admitted request is placed on."""

    name = "base"

    def choose(self, replicas: Sequence[Replica], request: Request,
               decision: RoutingDecision, now: float,
               cost_model: ClusterCostModel) -> Optional[Replica]:
        raise NotImplementedError

    @staticmethod
    def active(replicas: Sequence[Replica]) -> List[Replica]:
        return [r for r in replicas if r.state == ACTIVE]


class RoundRobinPolicy(RoutingPolicy):
    """Rotate through active replicas, ignoring load and residency."""

    name = "round_robin"

    def __init__(self):
        self._cursor = 0

    def choose(self, replicas, request, decision, now, cost_model):
        active = self.active(replicas)
        if not active:
            return None
        replica = active[self._cursor % len(active)]
        self._cursor += 1
        return replica


class LeastLoadedPolicy(RoutingPolicy):
    """Join the replica with the least modeled backlog (in seconds)."""

    name = "least_loaded"

    def choose(self, replicas, request, decision, now, cost_model):
        active = self.active(replicas)
        if not active:
            return None
        return min(active, key=lambda r: (r.backlog_seconds(now)
                                          + r.pending_requests * 1e-3,
                                          r.replica_id))


class AffinityPolicy(RoutingPolicy):
    """Backlog plus variant-residency-aware scoring.

    score(replica) = backlog_seconds                       (queued work)
                   + pending * amortized request seconds   (unbatched work)
                   + variant_load_seconds * load_weight    (if not resident)

    ``load_weight`` > 1 biases toward residency beyond the raw one-off
    load cost, which is what pays when a reload would also *evict* a
    variant other traffic still wants.  Deterministic; ties break on the
    lowest replica id.
    """

    name = "affinity"

    def __init__(self, load_weight: float = 2.0):
        self.load_weight = load_weight

    def choose(self, replicas, request, decision, now, cost_model):
        active = self.active(replicas)
        if not active:
            return None
        model = request.model
        scheme = decision.scheme
        plan = decision.plan
        amortized = cost_model.amortized_request_seconds(
            model, scheme, plan, batch_size_hint=max(
                active[0].config.max_batch_size / 2.0, 1.0))
        load_penalty = (cost_model.variant_load_seconds(model, scheme)
                        * self.load_weight)

        def score(replica: Replica) -> Tuple[float, int]:
            cost = (replica.backlog_seconds(now)
                    + replica.pending_requests * amortized)
            if not replica.has_variant(model, scheme):
                cost += load_penalty
            return (cost, replica.replica_id)

        return min(active, key=score)


#: Policy registry for config-by-name (CLI, benchmarks, CI smoke job).
POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    AffinityPolicy.name: AffinityPolicy,
}


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown routing policy {name!r}; "
                         f"known: {sorted(POLICIES)}") from None

"""The cluster simulator: a deterministic discrete-event loop over replicas.

Everything in the cluster shares one
:class:`~repro.serving.clock.VirtualClock`; the simulator owns the only
code that moves it.  Events live in a heap keyed by ``(time, kind, seq)``
— ``seq`` is a monotonic counter, so simultaneous events process in a
fixed order (completions before batch-age timers before arrivals before
autoscaler ticks) and a run is a pure function of (trace, config).

Event kinds:

* **arrival** — the next trace request reaches the front door: admission
  (token bucket, backlog bound), routing (cached SLO router), placement
  (affinity/round-robin policy), then any batches that *filled* on that
  replica are scheduled.  Arrivals are streamed from the trace one event
  at a time, so a million-request trace never materializes at once.
* **due** — a replica's oldest partial batch hit ``max_wait``; close and
  schedule it.  One timer per replica is kept outstanding, re-armed from
  :meth:`~repro.serving.batcher.DynamicBatcher.next_due_at` — the event
  loop never polls.
* **complete** — a scheduled batch finishes on its replica's executor
  timeline (``started = max(formed, replica.busy_until)``); responses are
  recorded into cluster stats with exact queue/dispatch/service splits.
* **tick** — the autoscaler evaluates the last window's arrival rate and
  modeled cost, possibly spawning ``warming`` replicas or draining one.
* **warmup** — a warming replica becomes active (scale-ups take
  ``warmup_seconds`` to contribute capacity).

Service time never comes from executing anything: replicas price each
batch with the roofline-driven :class:`~repro.serving.cluster.replica.
ClusterCostModel` and the engine executes it with explicit timestamps.
That is what makes ~10^6-request simulations run in seconds of wall time
while still exercising the real admission/routing/batching/pool code.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Union

from ..clock import VirtualClock
from ..router import SLORouter
from .affinity import CachedRouter, RoutingPolicy, make_policy
from .autoscaler import Autoscaler, AutoscalerConfig
from .frontdoor import FrontDoor, FrontDoorConfig
from .replica import (
    ACTIVE,
    GPU_L4_SERVING,
    WARMING,
    ClusterCostModel,
    Replica,
    ReplicaConfig,
    default_cluster_router,
    paper_costs_fn,
)
from .report import ClusterStats, build_cluster_report, save_cluster_report
from .trace import Trace

# Event kinds, in processing order at equal timestamps: free capacity
# (warmup, completions) before consuming it (due timers, arrivals), the
# autoscaler last so it sees the settled state of its tick instant.
_WARMUP, _COMPLETE, _DUE, _ARRIVAL, _TICK = range(5)

#: Age-out timers fire this much *after* the mathematical due instant.
#: ``opened_at + max_wait`` recomputed as ``now - opened_at >= max_wait``
#: can miss by one float ulp, which would close nothing and re-arm the
#: timer at the same timestamp forever; the epsilon (far above ulp at any
#: simulated timescale, far below any latency of interest) guarantees the
#: batcher sees the group as aged.
_DUE_EPSILON = 1e-6


class ClusterConfig:
    """Everything about the cluster that is not the traffic."""

    def __init__(self, initial_replicas: int = 4,
                 replica: Optional[ReplicaConfig] = None,
                 frontdoor: Optional[FrontDoorConfig] = None,
                 autoscaler: Optional[AutoscalerConfig] = None,
                 policy: Union[str, RoutingPolicy] = "affinity",
                 schemes=None,
                 device=GPU_L4_SERVING,
                 service_scale: float = 1.0):
        """
        ``autoscaler=None`` runs a fixed fleet of ``initial_replicas``;
        pass an :class:`AutoscalerConfig` to enable scaling.  ``policy``
        is a registry name (``affinity`` / ``round_robin`` /
        ``least_loaded``) or a policy instance.  ``schemes`` overrides the
        router's candidate ladder; ``service_scale`` uniformly rescales
        modeled service time (sweep utilization without a new trace).
        """
        if initial_replicas < 1:
            raise ValueError(
                f"initial_replicas must be >= 1, got {initial_replicas}")
        self.initial_replicas = initial_replicas
        self.replica = replica or ReplicaConfig()
        self.frontdoor = frontdoor or FrontDoorConfig()
        self.autoscaler = autoscaler
        self.policy = policy
        self.schemes = schemes
        self.device = device
        self.service_scale = service_scale


class ClusterSimulation:
    """Drives a replica fleet through a trace on one virtual timeline."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 router: Optional[SLORouter] = None, tracer=None):
        """``tracer`` (:class:`repro.obs.Tracer`, default off) records the
        whole fleet on the "cluster" process: one lane per replica (batch
        segments + per-request async spans, booked by each replica's
        engine with the modeled virtual timestamps), a "frontdoor" lane of
        admission-rejection instants, and an "autoscaler" lane of decision
        instants.  Tracing only ever appends to the tracer's own buffer —
        a traced run's report stays byte-identical to an untraced one."""
        self.config = config or ClusterConfig()
        self.clock = VirtualClock()
        self.tracer = tracer if (tracer is not None
                                 and getattr(tracer, "enabled", True)) else None
        costs_fn = paper_costs_fn()
        if router is None:
            router = default_cluster_router(schemes=self.config.schemes,
                                            device=self.config.device)
        self.router = CachedRouter(router)
        self.cost_model = ClusterCostModel(
            self.router, costs_fn=costs_fn, device=self.config.device,
            service_scale=self.config.service_scale)
        self.policy = (make_policy(self.config.policy)
                       if isinstance(self.config.policy, str)
                       else self.config.policy)
        self.frontdoor = FrontDoor(self.router, self.policy, self.cost_model,
                                   self.config.frontdoor, tracer=self.tracer)
        self.autoscaler = (Autoscaler(self.config.autoscaler)
                           if self.config.autoscaler else None)
        self.stats = ClusterStats()
        self.replicas: List[Replica] = []
        self._next_replica_id = 0
        for _ in range(self.config.initial_replicas):
            self._spawn(ACTIVE, 0.0)
        self._heap: list = []
        self._seq = 0
        self._due_armed: Dict[int, float] = {}
        self._arrivals_done = False
        # Autoscaler window baselines: measured busy-seconds/completions
        # at the previous tick, so each tick sees exact deltas.
        self._busy_at_tick = 0.0
        self._completed_at_tick = 0
        self.events = {"arrivals": 0, "batches": 0, "completions": 0,
                       "due_timers": 0, "ticks": 0, "warmups": 0}

    # ------------------------------------------------------------------
    def _spawn(self, state: str, now: float) -> Replica:
        replica = Replica(self._next_replica_id, self.clock, self.router,
                          self.cost_model, self.config.replica,
                          state=state, started_at=now, tracer=self.tracer)
        self._next_replica_id += 1
        self.replicas.append(replica)
        return replica

    def _push(self, when: float, kind: int, payload=None) -> None:
        heapq.heappush(self._heap, (when, kind, self._seq, payload))
        self._seq += 1

    def _fleet_counts(self) -> Dict[str, int]:
        counts = {"active": 0, "warming": 0, "draining": 0}
        for replica in self.replicas:
            if replica.state in counts:
                counts[replica.state] += 1
        return counts

    def _work_remains(self) -> bool:
        return (not self._arrivals_done
                or any(r.inflight > 0 for r in self.replicas))

    # ------------------------------------------------------------------
    def _arm_due_timer(self, replica: Replica) -> None:
        """Keep exactly one outstanding age-out timer per replica.

        Pending groups only ever open *later* than the one the armed
        timer watches, so re-arming is needed only when no timer is
        outstanding.
        """
        due_at = replica.next_due_at()
        if due_at is None:
            return
        if replica.replica_id not in self._due_armed:
            self._due_armed[replica.replica_id] = due_at
            self._push(due_at + _DUE_EPSILON, _DUE, replica)

    def _schedule_batches(self, replica: Replica, now: float,
                          due: bool = False, flush: bool = False) -> None:
        """Close ready batches and book them on the replica's executor."""
        for batch in replica.collect(due=due, flush=flush):
            started, finished = replica.schedule(batch, now)
            self.events["batches"] += 1
            self._push(finished, _COMPLETE, (replica, batch, started))
        self._arm_due_timer(replica)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, now: float, request, trace_iter) -> None:
        self.events["arrivals"] += 1
        replica = self.frontdoor.dispatch(request, now, self.replicas)
        if replica is not None:
            self._schedule_batches(replica, now, due=True)
        nxt = next(trace_iter, None)
        if nxt is None:
            self._arrivals_done = True
        else:
            self._push(nxt[0], _ARRIVAL, (nxt[1], trace_iter))

    def _on_due(self, now: float, replica: Replica) -> None:
        self.events["due_timers"] += 1
        self._due_armed.pop(replica.replica_id, None)
        self._schedule_batches(replica, now, due=True)

    def _on_complete(self, now: float, replica: Replica, batch,
                     started: float) -> None:
        self.events["completions"] += 1
        responses = replica.complete(batch, started, finished=now)
        for request, response in zip(batch.requests, responses):
            self.stats.observe(request, response)

    def _on_warmup(self, now: float, replica: Replica) -> None:
        self.events["warmups"] += 1
        replica.activate(now)
        if self.tracer is not None:
            self.tracer.instant("replica.activated", ts=now,
                                category="lifecycle",
                                lane=f"replica-{replica.replica_id}",
                                process="cluster",
                                attrs={"replica": replica.replica_id})

    def _on_tick(self, now: float) -> None:
        self.events["ticks"] += 1
        arrivals, _admitted, _cost_s = self.frontdoor.take_window()
        counts = self._fleet_counts()
        # Measured signals: executor busy-seconds and completions this
        # window (exact, not estimates — scheduled service is booked into
        # busy_seconds when a batch is priced).
        busy_total = sum(r.busy_seconds for r in self.replicas)
        completed_total = self.stats.completed
        busy_delta = busy_total - self._busy_at_tick
        completed_delta = completed_total - self._completed_at_tick
        self._busy_at_tick = busy_total
        self._completed_at_tick = completed_total
        decision = self.autoscaler.evaluate(
            now, arrivals, busy_delta, completed_delta,
            counts["active"], counts["warming"], counts["draining"])
        if self.tracer is not None:
            self.tracer.instant(f"autoscaler.{decision['action']}", ts=now,
                                category="autoscaler", lane="autoscaler",
                                process="cluster",
                                attrs={key: decision[key] for key in
                                       ("action", "count", "desired",
                                        "active", "warming", "draining",
                                        "rate_rps", "utilization")})
        if decision["action"] == "scale_up":
            for _ in range(decision["count"]):
                replica = self._spawn(WARMING, now)
                self._push(now + self.config.autoscaler.warmup_seconds,
                           _WARMUP, replica)
        elif decision["action"] == "scale_down":
            active = [r for r in self.replicas if r.state == ACTIVE]
            for victim in sorted(active,
                                 key=lambda r: -r.replica_id
                                 )[:decision["count"]]:
                victim.drain(now)
        if self._work_remains():
            self._push(now + self.config.autoscaler.interval_seconds, _TICK)

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> Dict:
        """Simulate the trace to completion; returns the cluster report.

        May be called once per simulation instance (the clock and stats
        are cumulative).
        """
        trace_iter = iter(trace)
        first = next(trace_iter, None)
        if first is not None:
            self._push(first[0], _ARRIVAL, (first[1], trace_iter))
        else:
            self._arrivals_done = True
        if self.autoscaler is not None:
            self._push(self.config.autoscaler.interval_seconds, _TICK)

        while self._heap:
            when, kind, _seq, payload = heapq.heappop(self._heap)
            self.clock.advance_to(when)
            if kind == _ARRIVAL:
                request, it = payload
                self._on_arrival(when, request, it)
            elif kind == _COMPLETE:
                replica, batch, started = payload
                self._on_complete(when, replica, batch, started)
            elif kind == _DUE:
                self._on_due(when, payload)
            elif kind == _WARMUP:
                self._on_warmup(when, payload)
            elif kind == _TICK:
                self._on_tick(when)
        for replica in self.replicas:
            replica.engine.sync_component_stats()
        return build_cluster_report(self, trace)


def run_cluster_sim(trace: Trace, config: Optional[ClusterConfig] = None,
                    report_path=None, tracer=None, trace_path=None) -> Dict:
    """One-call entry point: simulate ``trace`` and optionally save JSON.

    ``trace_path`` additionally writes a Perfetto-loadable Chrome trace of
    the simulated fleet (per-replica lanes, admission rejections,
    autoscaler decisions); pass your own ``tracer`` instead to keep the
    events in memory.  Tracing never changes the report — same trace, same
    config, byte-identical JSON either way.
    """
    if tracer is None and trace_path is not None:
        from ...obs import Tracer
        tracer = Tracer()
    report = ClusterSimulation(config, tracer=tracer).run(trace)
    if report_path is not None:
        save_cluster_report(report, report_path)
    if trace_path is not None:
        tracer.save(trace_path)
    return report

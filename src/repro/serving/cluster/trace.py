"""Trace-driven load generation for the cluster simulator.

Extends the single-engine workload generator (:mod:`repro.serving.
loadgen`) with the traffic structure that makes a *cluster* interesting:

* **non-homogeneous arrivals** — a diurnal sinusoid over the base rate
  (the daily peak/trough every serving paper plots) overlaid with
  Poisson-scheduled **bursts** that multiply the rate for a short window
  (the spikes admission control and the autoscaler must absorb);
* **multi-tenancy** — requests bill to tenants drawn from a Zipf law
  (one hot tenant, a long tail), and each tenant has a dominant SLO tier
  (its "contract") plus a minority mix, so fairness and per-tier SLO
  attainment are measurable per tenant;
* **popularity skew** — prompts reuse the Zipf law from the loadgen so
  replica-level prompt caches have realistic hit rates;
* **plan mix** — requests carry generation plans (default trajectory,
  reduced-step dpm2, guided ddim for text-to-image models), exercising
  the router's two-dimensional scheme x step-budget decisions.

Everything is drawn from ``numpy`` Generators seeded from ``(seed,
stream)`` pairs, with per-request fields vectorized up front and arrival
times from one sequential thinning-free loop — the same config and seed
produce the identical trace on every run, machine, and cluster size
(generation never consults the cluster).  Requests materialize lazily as
the simulator consumes the trace, so a million-request trace costs a few
numpy arrays, not a million live ``Request`` objects.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ...data.prompts import sample_prompt_specs
from ...diffusion.plan import GenerationPlan
from ...models import get_model_spec
from ..loadgen import zipf_weights
from ..request import Request
from ..router import SLORouter
from .replica import default_cluster_router

#: Symbolic tiers a tenant contract can name; ``None`` = best effort.
TRACE_TIERS: Tuple[Optional[str], ...] = ("loose", "medium", "tight", None)


def default_plan_mix(model: str) -> Tuple[Optional[GenerationPlan], ...]:
    """Plan pool a model's requests draw from uniformly.

    Every model mixes the default trajectory with a reduced-step ``dpm2``
    plan; text-to-image models additionally carry a guided ``ddim`` plan
    (guidance doubles the modeled evals, so under a tight tier the router
    must spend the step-budget dimension — the two-dimensional routing the
    cluster is meant to exercise).  Unconditional models never receive
    guidance plans, which their pipelines reject.
    """
    plans: List[Optional[GenerationPlan]] = [
        None,
        GenerationPlan(sampler="dpm2", num_steps=5),
    ]
    if get_model_spec(model).task == "text-to-image":
        plans.append(GenerationPlan(sampler="ddim", guidance_scale=3.0))
    return tuple(plans)


def tier_slo_seconds(router: SLORouter, model: str, num_steps: int,
                     tier: Optional[str],
                     headroom: Dict[str, float]) -> Optional[float]:
    """Concrete latency target for a tier, with cluster headroom.

    Unlike the single-engine :func:`~repro.serving.loadgen.slo_for_tier`
    (whose ``tight`` hugs the cheapest scheme's *service* latency), the
    cluster tiers multiply the router's predictions by a headroom factor:
    end-to-end latency includes batching delay, dispatch waits behind
    busy replicas and batch-size amortization, so a deliverable target
    must leave room for them.  ``tight`` is headroom x the cheapest
    scheme, ``loose`` headroom x the dearest, ``medium`` headroom x their
    midpoint.
    """
    if tier is None:
        return None
    predictions = router.predictions(model, num_steps)
    cheapest = min(predictions.values())
    dearest = max(predictions.values())
    anchor = {"tight": cheapest,
              "medium": 0.5 * (cheapest + dearest),
              "loose": dearest}
    try:
        return headroom[tier] * anchor[tier]
    except KeyError:
        raise ValueError(f"unknown SLO tier {tier!r}; "
                         f"use one of {TRACE_TIERS}") from None


@dataclass
class TraceConfig:
    """Shape of a cluster traffic trace (all draws derive from ``seed``)."""

    num_requests: int = 10_000
    models: Sequence[str] = ("stable-diffusion", "ddim-cifar10")
    #: Arrival process: base rate, diurnal modulation, Poisson bursts.
    base_rate: float = 6.0                  # requests/s at the diurnal mean
    diurnal_amplitude: float = 0.4          # peak swing as fraction of base
    diurnal_period_s: float = 3600.0        # one "day" of the sinusoid
    burst_rate_per_hour: float = 6.0        # Poisson rate of burst onsets
    burst_multiplier: float = 3.0           # rate multiplier inside a burst
    burst_duration_s: float = 20.0
    #: Tenancy: Zipf-popular tenants, each with a dominant SLO tier.
    num_tenants: int = 20
    tenant_skew: float = 1.1
    tier_affinity: float = 0.6              # P(request uses tenant's tier)
    tiers: Sequence[Optional[str]] = TRACE_TIERS
    tier_headroom: Dict[str, float] = field(default_factory=lambda: {
        "loose": 4.0, "medium": 3.0, "tight": 2.0})
    #: Prompt popularity (text-to-image models only).
    prompt_pool_size: int = 64
    prompt_skew: float = 1.2
    #: Optional per-model plan override; default :func:`default_plan_mix`.
    plans: Optional[Dict[str, Sequence[Optional[GenerationPlan]]]] = None
    seed: int = 0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1) so the "
                             f"rate stays positive, got {self.diurnal_amplitude}")
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {self.base_rate}")
        if not 0 <= self.tier_affinity <= 1:
            raise ValueError("tier_affinity must be in [0, 1], got "
                             f"{self.tier_affinity}")
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")

    def describe(self) -> Dict:
        """JSON-friendly summary (plans rendered as labels)."""
        payload = asdict(self)
        payload["models"] = list(self.models)
        payload["tiers"] = [t if t is not None else "none" for t in self.tiers]
        if self.plans is not None:
            payload["plans"] = {
                model: [repr(p) if p is not None else "default"
                        for p in pool]
                for model, pool in self.plans.items()}
        return payload


class Trace:
    """A generated trace: arrival times + vectorized request fields.

    Iterating yields ``(arrival_time, Request)`` pairs; requests are
    constructed lazily so the simulator can stream a million of them
    without holding them all live.
    """

    def __init__(self, config: TraceConfig, arrivals: np.ndarray,
                 fields: Dict[str, np.ndarray],
                 catalog: Dict):
        self.config = config
        self.arrivals = arrivals
        self._fields = fields
        #: Lookup tables the lazy request construction indexes into:
        #: models, per-model plan pools / prompt pools, SLO table, tenants.
        self.catalog = catalog

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def duration_s(self) -> float:
        return float(self.arrivals[-1]) if len(self.arrivals) else 0.0

    def request_at(self, index: int) -> Request:
        """Materialize request ``index`` of the trace."""
        f = self._fields
        cat = self.catalog
        model = cat["models"][f["model"][index]]
        prompt = None
        if cat["prompts"][model] is not None:
            prompt = cat["prompts"][model][f["prompt"][index]]
        plans = cat["plans"][model]
        plan = plans[int(f["plan_u"][index] * len(plans)) % len(plans)]
        tier = cat["tiers"][f["tier"][index]]
        return Request(
            model=model,
            prompt=prompt,
            latency_slo=cat["slo"][(model, tier)],
            plan=plan,
            seed=int(f["seed"][index]),
            tenant=cat["tenants"][f["tenant"][index]],
            tier=tier,
        )

    def __iter__(self) -> Iterator[Tuple[float, Request]]:
        for index in range(len(self.arrivals)):
            yield float(self.arrivals[index]), self.request_at(index)

    def head(self, count: int) -> List[Tuple[float, Request]]:
        """The first ``count`` (arrival, request) pairs, materialized."""
        return [(float(self.arrivals[i]), self.request_at(i))
                for i in range(min(count, len(self.arrivals)))]

    def fingerprint(self) -> str:
        """Content hash over the config and the drawn arrays.

        Two traces with equal fingerprints produce identical request
        streams; the cluster report embeds this so a report provably
        corresponds to one exact trace.
        """
        from ...core.hashing import content_hash
        return content_hash({
            "config": self.config.describe(),
            "arrivals": self.arrivals,
            "fields": {name: values for name, values in
                       sorted(self._fields.items())},
        })


def _arrival_times(config: TraceConfig, rng: np.random.Generator,
                   burst_rng: np.random.Generator) -> np.ndarray:
    """Sequential non-homogeneous Poisson arrivals.

    Inter-arrival gaps are unit exponentials scaled by the *current*
    instantaneous rate λ(t) = base x (1 + A sin(2πt/P)) x burst factor —
    a standard time-rescaling of a homogeneous process, exact in the
    limit of gaps short against the modulation period (base rates of
    tens of rps against periods of minutes+).  Burst onsets are their own
    Poisson process; each burst multiplies the rate for its duration.
    """
    n = config.num_requests
    times = np.empty(n, dtype=np.float64)
    # Unit-exponential gap draws, chunked: the chunk size is a fixed
    # constant so the stream is identical whatever n is.
    chunk = 65536
    gaps = rng.exponential(1.0, size=chunk)
    cursor = 0

    burst_gap_rate = config.burst_rate_per_hour / 3600.0
    if burst_gap_rate > 0:
        next_burst = float(burst_rng.exponential(1.0 / burst_gap_rate))
    else:
        next_burst = math.inf
    burst_until = -math.inf

    two_pi = 2.0 * math.pi
    t = 0.0
    for i in range(n):
        if cursor == chunk:
            gaps = rng.exponential(1.0, size=chunk)
            cursor = 0
        # Advance burst state to "now" (bursts may start between arrivals;
        # starting them at the next arrival keeps the loop O(n) and is
        # indistinguishable at these rates).
        if t >= next_burst:
            burst_until = t + config.burst_duration_s
            next_burst = t + float(burst_rng.exponential(1.0 / burst_gap_rate))
        rate = config.base_rate * (
            1.0 + config.diurnal_amplitude
            * math.sin(two_pi * t / config.diurnal_period_s))
        if t < burst_until:
            rate *= config.burst_multiplier
        t += gaps[cursor] / rate
        cursor += 1
        times[i] = t
    return times


def generate_trace(config: TraceConfig,
                   router: Optional[SLORouter] = None) -> Trace:
    """Draw a deterministic cluster trace from the config.

    ``router`` turns symbolic tiers into concrete latency targets; it
    defaults to :func:`~repro.serving.cluster.replica.
    default_cluster_router` — the same pricing the cluster serves with.
    An SLO priced against a different cost model than the serving one is
    meaningless (trivially met or unmeetable), so only override this
    together with :class:`~repro.serving.cluster.sim.ClusterConfig`'s
    router knobs.
    """
    router = router or default_cluster_router()
    n = config.num_requests
    # Independent seeded streams per concern: the arrival loop's chunked
    # draws can never perturb the request fields, and vice versa.
    rng_arrivals = np.random.default_rng([config.seed, 0])
    rng_bursts = np.random.default_rng([config.seed, 1])
    rng_fields = np.random.default_rng([config.seed, 2])

    arrivals = _arrival_times(config, rng_arrivals, rng_bursts)

    models = list(config.models)
    model_idx = rng_fields.integers(0, len(models), size=n)

    tenant_weights = zipf_weights(config.num_tenants, config.tenant_skew)
    tenant_idx = rng_fields.choice(config.num_tenants, size=n,
                                   p=tenant_weights)

    # Tenant-dominant tier with a minority mix of the others.
    tiers = list(config.tiers)
    num_tiers = len(tiers)
    dominant = tenant_idx % num_tiers
    mix = rng_fields.random(n)
    alt = rng_fields.integers(0, max(num_tiers - 1, 1), size=n)
    alt = alt + (alt >= dominant)  # skip the dominant tier
    tier_idx = np.where(mix < config.tier_affinity, dominant,
                        alt % num_tiers)

    prompt_idx = np.zeros(n, dtype=np.int64)
    prompt_weights = zipf_weights(config.prompt_pool_size, config.prompt_skew)
    prompt_idx = rng_fields.choice(config.prompt_pool_size, size=n,
                                   p=prompt_weights)

    plan_u = rng_fields.random(n)
    seeds = rng_fields.integers(0, 2 ** 31, size=n)

    prompt_pool = [spec.to_text() for spec in
                   sample_prompt_specs(config.prompt_pool_size,
                                       seed=config.seed)]
    plans = config.plans or {}
    catalog = {
        "models": models,
        "tenants": [f"tenant-{i:03d}" for i in range(config.num_tenants)],
        "tiers": tiers,
        "prompts": {
            model: (prompt_pool
                    if get_model_spec(model).task == "text-to-image"
                    else None)
            for model in models},
        "plans": {model: tuple(plans.get(model) or default_plan_mix(model))
                  for model in models},
        "slo": {
            (model, tier): tier_slo_seconds(
                router, model, get_model_spec(model).default_sampling_steps,
                tier, config.tier_headroom)
            for model in models for tier in tiers},
    }
    fields = {
        "model": model_idx,
        "tenant": tenant_idx,
        "tier": tier_idx,
        "prompt": prompt_idx,
        "plan_u": plan_u,
        "seed": seeds,
    }
    return Trace(config, arrivals, fields, catalog)

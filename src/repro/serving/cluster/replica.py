"""Replica: one serving engine inside the cluster, plus its cost model.

A :class:`Replica` wraps a full single-node :class:`~repro.serving.engine.
ServingEngine` — its own bounded queue, dynamic batcher, LRU
:class:`~repro.serving.pool.ModelVariantPool` and
:class:`~repro.serving.stats.ServingStats` — and adds what the cluster
event loop needs on top:

* a **lifecycle state machine** (``warming -> active -> draining ->
  stopped``) so autoscaling is not free: a freshly spawned replica takes
  traffic only after its warmup completes, and a drained one finishes its
  in-flight work before stopping;
* an **executor timeline** (``busy_until``): replicas serve batches
  serially, so a batch closed while the replica is busy starts late — the
  event loop schedules its completion at ``max(now, busy_until) + cost``
  and the wait is accounted as ``dispatch_wait``;
* a deterministic **service-time model** (:class:`ClusterCostModel`):
  batch cost is the roofline trajectory latency of the batch's
  (model, scheme, plan) key with a marginal per-image term, plus a
  variant *load* penalty when the key's pipeline is not resident in the
  replica's pool (cold variants stream from the store at a modeled
  bandwidth — this is the cost variant-affinity routing avoids), plus a
  per-unique-prompt embedding cost for prompt-cache misses.

Generation itself is simulated: the pool's builder produces a
:class:`SimPipeline` that returns placeholder images and costs nothing,
so the ~10^6-request simulator exercises the *real* admission, routing,
batching, pooling and stats code paths while all time comes from the cost
model on the shared :class:`~repro.serving.clock.VirtualClock`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ...models import get_model_spec
from ...profiling import (
    DeviceProfile,
    LayerCost,
    paper_scale_stable_diffusion_config,
    scheme_bytes_per_element,
    total_weight_elements,
    unet_layer_costs,
)
from ..batcher import Batch
from ..engine import EngineConfig, ServingEngine
from ..pool import ModelVariantPool
from ..router import SLORouter
from ..stats import ServingStats

# Lifecycle states.
WARMING = "warming"
ACTIVE = "active"
DRAINING = "draining"
STOPPED = "stopped"

#: Default cluster device: an L4-class *inference* accelerator — high
#: arithmetic throughput but a narrow memory system, so at paper scale the
#: U-Net forward is **memory-bound at FP32** (~50ms) and drops to compute
#: bound at FP8/FP4 (~19/16ms).  On the characterization platform (V100,
#: 900 GB/s HBM2) the paper-scale forward is compute-bound and the scheme
#: ladder is nearly flat; serving fleets are built from exactly this kind
#: of bandwidth-lean part, and it is the regime where the paper's
#: bandwidth-savings argument turns into end-to-end latency.
GPU_L4_SERVING = DeviceProfile(name="gpu-l4-serving", peak_flops=60e12,
                               memory_bandwidth=120e9, layer_overhead=5e-6)


class SimPipeline:
    """Stand-in pipeline for cluster simulation: shapes without work.

    Provides exactly the surface :meth:`ServingEngine.complete_batch`
    touches — ``is_text_to_image`` (False, so the engine skips real text
    encoding; the replica models prompt-embedding cost itself),
    ``num_steps``/``schedule.num_timesteps`` for plan resolution, and a
    ``generate_batch`` that returns shared placeholder images.  All cost
    is charged by the replica's service-time model instead.
    """

    is_text_to_image = False

    class _Schedule:
        __slots__ = ("num_timesteps",)

        def __init__(self, num_timesteps: int):
            self.num_timesteps = num_timesteps

    _PLACEHOLDER = np.zeros((1, 1, 1), dtype=np.float32)

    def __init__(self, model: str, scheme: str):
        spec = get_model_spec(model)
        self.model_name = model
        self.scheme = scheme
        self.num_steps = spec.default_sampling_steps
        self.schedule = SimPipeline._Schedule(spec.train_timesteps)

    def generate_batch(self, seeds, context=None, trace=None, plan=None,
                       tracer=None, step_attrs=None):
        return [SimPipeline._PLACEHOLDER] * len(seeds)


def paper_costs_fn(sample_size: int = 64) -> Callable[[str], List[LayerCost]]:
    """Per-model layer costs at paper scale (same U-Net for every model).

    The reproduction's stand-in models are tiny enough that launch
    overhead flattens the per-scheme spread; routing and service costs in
    the cluster use the paper-scale architecture so scheme and step-budget
    decisions behave like the system the paper characterizes.
    """
    costs = unet_layer_costs(paper_scale_stable_diffusion_config(), sample_size)
    return lambda model: costs


def default_cluster_router(schemes=None,
                           device: DeviceProfile = GPU_L4_SERVING) -> SLORouter:
    """The router the cluster prices everything with, in one place.

    Trace generation (turning symbolic SLO tiers into seconds), request
    routing and the replica service-time model must all share one cost
    model — an SLO priced by a different router than the one serving it
    is either trivially met or unmeetable.  Both the trace generator and
    :class:`~repro.serving.cluster.sim.ClusterSimulation` default to this.
    """
    kwargs = {"costs_fn": paper_costs_fn(), "device": device}
    if schemes:
        kwargs["schemes"] = schemes
    return SLORouter(**kwargs)


class ClusterCostModel:
    """Deterministic service/load/embedding cost model for replicas.

    Every quantity is an exact function of the analytic roofline model
    (conf_iiswc_ChenGM24's characterization) and the knobs below, so the
    simulator's latency numbers are reproducible bit-for-bit.
    """

    def __init__(self, router,
                 costs_fn: Optional[Callable[[str], List[LayerCost]]] = None,
                 device: DeviceProfile = GPU_L4_SERVING,
                 marginal_batch_fraction: float = 0.15,
                 service_scale: float = 1.0,
                 variant_bytes_per_second: float = 16e9,
                 variant_load_floor_s: float = 0.05,
                 embed_seconds_per_prompt: float = 0.004):
        """
        ``router`` supplies (and caches) per-forward roofline latencies;
        ``marginal_batch_fraction`` is the extra cost of each additional
        image in a batch relative to the shared sampler walk;
        ``variant_bytes_per_second`` models streaming a cold variant's
        packed weights from the artifact store (PCIe-class bandwidth), on
        top of a fixed ``variant_load_floor_s``; ``service_scale``
        uniformly rescales service time (useful to sweep utilization
        without regenerating traces).
        """
        self.router = router
        self.costs_fn = costs_fn or paper_costs_fn()
        self.device = device
        self.marginal_batch_fraction = marginal_batch_fraction
        self.service_scale = service_scale
        self.variant_bytes_per_second = variant_bytes_per_second
        self.variant_load_floor_s = variant_load_floor_s
        self.embed_seconds_per_prompt = embed_seconds_per_prompt
        self._plan_seconds: Dict[Tuple, float] = {}
        self._variant_bytes: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    def plan_seconds(self, model: str, scheme: str, plan) -> float:
        """Modeled seconds of one single-image trajectory of ``plan``."""
        key = (model, scheme, plan)
        cached = self._plan_seconds.get(key)
        if cached is None:
            cached = (self.router.predicted_plan_latency(model, scheme, plan)
                      * self.service_scale)
            self._plan_seconds[key] = cached
        return cached

    def batch_service_seconds(self, model: str, scheme: str, plan,
                              batch_size: int) -> float:
        """Service time of one batch: shared walk + marginal per image."""
        base = self.plan_seconds(model, scheme, plan)
        return base * (1.0 + self.marginal_batch_fraction * (batch_size - 1))

    def amortized_request_seconds(self, model: str, scheme: str, plan,
                                  batch_size_hint: float) -> float:
        """Per-request service estimate at an expected batch size."""
        hint = max(batch_size_hint, 1.0)
        return self.batch_service_seconds(model, scheme, plan, hint) / hint

    # ------------------------------------------------------------------
    def variant_bytes(self, model: str, scheme: str) -> float:
        """Weight bytes of the (model, scheme) variant at paper scale."""
        key = (model, scheme)
        cached = self._variant_bytes.get(key)
        if cached is None:
            elements = total_weight_elements(self.costs_fn(model))
            cached = elements * scheme_bytes_per_element(scheme)
            self._variant_bytes[key] = cached
        return cached

    def variant_load_seconds(self, model: str, scheme: str) -> float:
        """Modeled time to stream a cold variant into a replica's pool."""
        return (self.variant_load_floor_s
                + self.variant_bytes(model, scheme)
                / self.variant_bytes_per_second)


class ReplicaConfig:
    """Per-replica serving knobs (shared by every replica in a cluster)."""

    def __init__(self, max_batch_size: int = 8, max_wait: float = 0.1,
                 capacity: int = 96,
                 memory_budget_bytes: Optional[float] = 4.5e9,
                 prompt_cache_capacity: int = 512,
                 keep_records: bool = False):
        """
        ``capacity`` bounds in-flight requests (pending in the batcher plus
        scheduled-but-unfinished); past it the replica sheds load and the
        rejection is attributed to the request's tenant/tier.
        ``memory_budget_bytes`` sizes the variant pool — at paper scale
        ~4.5 GB holds one model's full fp32/fp8/fp4 ladder but not two
        models' (the regime where affinity routing matters).
        ``keep_records`` is forwarded to the replica's ServingStats;
        simulators at 10^5-10^6 requests leave it off and rely on the
        aggregate counters plus the cluster-level stats.
        """
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.capacity = capacity
        self.memory_budget_bytes = memory_budget_bytes
        self.prompt_cache_capacity = prompt_cache_capacity
        self.keep_records = keep_records


class Replica:
    """One engine in the cluster, with lifecycle and a serial executor."""

    def __init__(self, replica_id: int, clock, router,
                 cost_model: ClusterCostModel,
                 config: Optional[ReplicaConfig] = None,
                 state: str = ACTIVE, started_at: float = 0.0,
                 tracer=None):
        self.replica_id = replica_id
        self.clock = clock
        self.cost_model = cost_model
        self.config = config or ReplicaConfig()
        self.state = state
        self.started_at = started_at
        self.stopped_at: Optional[float] = None
        pool = ModelVariantPool(
            memory_budget_bytes=self.config.memory_budget_bytes,
            batch_size=self.config.max_batch_size,
            builder=lambda model, scheme: SimPipeline(model, scheme),
            cost_fn=cost_model.variant_bytes,
            clock=clock)
        # Each replica traces on its own "replica-<id>" lane of the shared
        # "cluster" process, so Perfetto shows the fleet as parallel tracks.
        self.engine = ServingEngine(
            pool, router=router,
            config=EngineConfig(max_batch_size=self.config.max_batch_size,
                                max_wait=self.config.max_wait,
                                queue_capacity=max(self.config.capacity, 1)),
            stats=ServingStats(keep_records=self.config.keep_records),
            clock=clock, tracer=tracer,
            trace_lane=f"replica-{replica_id}", trace_process="cluster")
        # executor timeline + accounting
        self.busy_until = float(started_at)
        self.busy_seconds = 0.0
        self.inflight = 0
        self.served = 0
        self.batches = 0
        self.variant_loads = 0
        self.variant_reloads = 0
        self.prompt_hits = 0
        self.prompt_misses = 0
        self._pending_loads: set = set()
        self._ever_loaded: set = set()
        self._prompt_cache: "OrderedDict[str, bool]" = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def pool(self) -> ModelVariantPool:
        return self.engine.pool

    @property
    def pending_requests(self) -> int:
        """Requests admitted but not yet closed into a batch."""
        return self.engine.batcher.pending_count

    def backlog_seconds(self, now: float) -> float:
        """Modeled seconds of already-scheduled work ahead of a new batch."""
        return max(self.busy_until - now, 0.0)

    def is_idle(self) -> bool:
        return self.inflight == 0

    def has_variant(self, model: str, scheme: str) -> bool:
        """Whether serving (model, scheme) here would skip the load cost."""
        return (self.pool.has_variant(model, scheme)
                or (model, scheme) in self._pending_loads)

    # ------------------------------------------------------------------
    def submit(self, request) -> bool:
        """Admit one routed request; shed (and attribute) past capacity."""
        if self.inflight >= self.config.capacity:
            self.engine.stats.record_rejection(tenant=request.tenant,
                                               tier=request.tier,
                                               reason="queue_full")
            return False
        if not self.engine.submit(request):
            return False
        self.inflight += 1
        return True

    def collect(self, due: bool = False, flush: bool = False) -> List[Batch]:
        """Close ready batches (filled, and optionally aged/flushed)."""
        return self.engine.collect_ready_batches(due=due, flush=flush)

    def next_due_at(self) -> Optional[float]:
        """When the oldest pending partial batch ages out (None if none)."""
        return self.engine.batcher.next_due_at()

    # ------------------------------------------------------------------
    def schedule(self, batch: Batch, now: float) -> Tuple[float, float]:
        """Price ``batch`` and reserve the executor; returns (start, finish).

        Service cost = roofline batch time, plus a variant-load penalty
        when the key's pipeline is not resident (counted as a *load* the
        first time this replica ever sees the key and as a *reload* when
        the key was resident once and has been evicted since — the churn
        metric affinity routing minimizes), plus the embedding cost of
        prompts missing from this replica's prompt cache.
        """
        key = batch.key
        cost = self.cost_model.batch_service_seconds(
            key.model, key.scheme, key.plan, len(batch))
        variant = (key.model, key.scheme)
        if not self.pool.has_variant(*variant) and variant not in self._pending_loads:
            cost += self.cost_model.variant_load_seconds(*variant)
            self._pending_loads.add(variant)
            if variant in self._ever_loaded:
                self.variant_reloads += 1
            else:
                self._ever_loaded.add(variant)
                self.variant_loads += 1
        misses = 0
        cache = self._prompt_cache
        for request in batch.requests:
            prompt = request.prompt
            if prompt is None:
                continue
            if prompt in cache:
                cache.move_to_end(prompt)
                self.prompt_hits += 1
            else:
                misses += 1
                self.prompt_misses += 1
                cache[prompt] = True
                while len(cache) > self.config.prompt_cache_capacity:
                    cache.popitem(last=False)
        cost += misses * self.cost_model.embed_seconds_per_prompt
        started = max(now, self.busy_until)
        finished = started + cost
        self.busy_until = finished
        self.busy_seconds += cost
        return started, finished

    def complete(self, batch: Batch, started: float, finished: float):
        """Execute a scheduled batch at its modeled (start, finish) times."""
        responses = self.engine.complete_batch(batch, started=started,
                                               finished=finished)
        self._pending_loads.discard((batch.key.model, batch.key.scheme))
        self.inflight -= len(batch)
        self.served += len(batch)
        self.batches += 1
        if self.state == DRAINING and self.is_idle():
            self.stop(finished)
        return responses

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def activate(self, now: float) -> None:
        if self.state != WARMING:
            raise ValueError(f"replica {self.replica_id} is {self.state}, "
                             "only a warming replica can activate")
        self.state = ACTIVE
        self.started_at = now
        self.busy_until = max(self.busy_until, now)

    def drain(self, now: float) -> None:
        """Stop accepting traffic; finish in-flight work, then stop."""
        if self.state in (DRAINING, STOPPED):
            return
        self.state = DRAINING
        if self.is_idle():
            self.stop(now)

    def stop(self, now: float) -> None:
        self.state = STOPPED
        self.stopped_at = now

    # ------------------------------------------------------------------
    def utilization(self, now: float) -> float:
        """Busy fraction of this replica's active lifetime."""
        end = self.stopped_at if self.stopped_at is not None else now
        lifetime = max(end - self.started_at, 0.0)
        return self.busy_seconds / lifetime if lifetime > 0 else 0.0

    def summary(self, now: float) -> Dict:
        """Per-replica block of the cluster report."""
        stats = self.engine.stats
        pool_stats = self.pool.stats()
        return {
            "state": self.state,
            "started_at": self.started_at,
            "stopped_at": self.stopped_at,
            "served": self.served,
            "batches": self.batches,
            "mean_batch_size": (self.served / self.batches
                                if self.batches else 0.0),
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization(now),
            "rejections": stats.rejections(),
            "variant_loads": self.variant_loads,
            "variant_reloads": self.variant_reloads,
            "variant_evictions": pool_stats["evictions"],
            "resident_variants": sorted(
                f"{model}/{scheme}"
                for model, scheme in self.pool.resident_variants),
            "prompt_cache": {
                "hits": self.prompt_hits,
                "misses": self.prompt_misses,
                "hit_rate": (self.prompt_hits
                             / (self.prompt_hits + self.prompt_misses)
                             if (self.prompt_hits + self.prompt_misses)
                             else 0.0),
            },
            "by_scheme": dict(stats.report()["requests"]["by_scheme"]),
        }

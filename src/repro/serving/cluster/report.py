"""Cluster-level stats and the ``cluster_report.json`` emitter.

:class:`ClusterStats` is the simulator's per-request sink.  At a million
requests, a list of record objects per request is real memory, so
completions land in compact typed arrays (``array('d')`` latencies plus
small interned tenant/tier indices); everything the report needs —
cluster and per-tenant/per-tier latency percentiles, SLO attainment,
fairness spreads — is computed once at report time with numpy over those
arrays.

:func:`build_cluster_report` assembles the full report from the
simulation's parts: this sink, the front door's admission/fairness
counters, every replica's own :class:`~repro.serving.stats.ServingStats`
(the same per-tenant rejection block single-engine reports carry), the
autoscaler timeline and the trace description.  Nothing in the report
reads a wall clock — the same trace and cluster config produce a
byte-identical JSON file on every run, which the CI smoke job relies on.
"""

from __future__ import annotations

import json
from array import array
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ... import schemas
from ..request import Request, Response
from ..stats import percentile_summary

#: Report schema version; bump on breaking layout changes.
SCHEMA = schemas.CLUSTER_REPORT


class ClusterStats:
    """Compact per-completion accounting for the cluster simulator."""

    def __init__(self):
        self.latency = array("d")
        self.queue_wait = array("d")
        self.dispatch_wait = array("d")
        self.batch_size = array("i")
        self.tenant = array("i")
        self.tier = array("i")
        #: Per-request SLO outcome: 1 met, 0 violated, -1 no SLO attached.
        self.slo = array("b")
        self._tenant_names: Dict[str, int] = {}
        self._tier_names: Dict[str, int] = {}
        self.first_arrival: Optional[float] = None
        self.last_completion = 0.0

    # ------------------------------------------------------------------
    def _intern(self, table: Dict[str, int], name: str) -> int:
        index = table.get(name)
        if index is None:
            index = len(table)
            table[name] = index
        return index

    def observe(self, request: Request, response: Response) -> None:
        """Record one completed request."""
        self.latency.append(response.total_latency)
        self.queue_wait.append(response.queue_wait)
        self.dispatch_wait.append(response.dispatch_wait)
        self.batch_size.append(response.batch_size)
        self.tenant.append(self._intern(self._tenant_names,
                                        request.tenant or "anonymous"))
        self.tier.append(self._intern(self._tier_names,
                                      request.tier or "none"))
        met = response.meets_slo(request.latency_slo)
        self.slo.append(-1 if met is None else int(met))
        if request.arrival_time is not None:
            if self.first_arrival is None:
                self.first_arrival = request.arrival_time
            else:
                self.first_arrival = min(self.first_arrival,
                                         request.arrival_time)
        self.last_completion = max(self.last_completion,
                                   response.total_latency
                                   + (request.arrival_time or 0.0))

    @property
    def completed(self) -> int:
        return len(self.latency)

    # ------------------------------------------------------------------
    @staticmethod
    def _slo_block(slo: np.ndarray) -> Dict:
        with_target = int((slo >= 0).sum())
        met = int((slo == 1).sum())
        return {
            "with_target": with_target,
            "met": met,
            "violated": with_target - met,
            "violation_rate": ((with_target - met) / with_target
                               if with_target else 0.0),
        }

    def summary(self) -> Dict:
        """Latency/SLO/fairness blocks of the cluster report."""
        if not self.completed:
            return {"completed": 0}
        latency = np.asarray(self.latency)
        queue_wait = np.asarray(self.queue_wait)
        dispatch_wait = np.asarray(self.dispatch_wait)
        batch_size = np.asarray(self.batch_size)
        tenant = np.asarray(self.tenant)
        tier = np.asarray(self.tier)
        slo = np.asarray(self.slo)

        tenants = {}
        for name, index in sorted(self._tenant_names.items()):
            mask = tenant == index
            tenants[name] = {
                "completed": int(mask.sum()),
                "latency_s": percentile_summary(latency[mask]),
                "slo": self._slo_block(slo[mask]),
            }
        tiers = {}
        for name, index in sorted(self._tier_names.items()):
            mask = tier == index
            tiers[name] = {
                "completed": int(mask.sum()),
                "latency_s": percentile_summary(latency[mask]),
                "slo": self._slo_block(slo[mask]),
            }
        tenant_p99 = {name: block["latency_s"]["p99"]
                      for name, block in tenants.items()}
        makespan = (self.last_completion - (self.first_arrival or 0.0)
                    if self.completed else 0.0)
        return {
            "completed": self.completed,
            "latency_s": percentile_summary(latency),
            "queue_wait_s": percentile_summary(queue_wait),
            "dispatch_wait_s": percentile_summary(dispatch_wait),
            "mean_batch_size": float(batch_size.mean()),
            "makespan_s": makespan,
            "throughput_rps": (self.completed / makespan
                               if makespan > 0 else 0.0),
            "slo": self._slo_block(slo),
            "tiers": tiers,
            "tenants": tenants,
            "fairness": {
                "tenant_count": len(tenants),
                "max_tenant_p99_s": max(tenant_p99.values()),
                "min_tenant_p99_s": min(tenant_p99.values()),
                "tenant_p99_spread": (max(tenant_p99.values())
                                      / max(min(tenant_p99.values()), 1e-12)),
            },
        }


def _merge_rejections(*blocks: Dict) -> Dict:
    """Sum ``ServingStats.rejections()`` blocks (front door + replicas)."""
    total = 0
    by = {"by_tenant": {}, "by_tier": {}, "by_reason": {}}
    for block in blocks:
        total += block.get("total", 0)
        for axis, counts in by.items():
            for name, count in block.get(axis, {}).items():
                counts[name] = counts.get(name, 0) + count
    return {
        "total": total,
        "by_tenant": dict(sorted(by["by_tenant"].items())),
        "by_tier": dict(sorted(by["by_tier"].items())),
        "by_reason": dict(sorted(by["by_reason"].items())),
    }


def build_cluster_report(sim, trace) -> Dict:
    """Assemble the full cluster report from a finished simulation.

    ``sim`` is a :class:`~repro.serving.cluster.sim.ClusterSimulation`
    that has run ``trace``.  See ``EXPERIMENTS.md`` for the field
    reference.
    """
    now = sim.clock()
    rejections = _merge_rejections(
        sim.frontdoor.stats.rejections(),
        *(r.engine.stats.rejections() for r in sim.replicas))
    offered = sim.frontdoor.offered
    per_tenant_rejections = rejections["by_tenant"]
    tenant_rejection_rates = {
        tenant: (per_tenant_rejections.get(tenant, 0) / count
                 if count else 0.0)
        for tenant, count in sorted(sim.frontdoor.offered_by_tenant.items())}

    replicas = {str(r.replica_id): r.summary(now) for r in sim.replicas}
    variant_totals = {
        "loads": sum(r.variant_loads for r in sim.replicas),
        "reloads": sum(r.variant_reloads for r in sim.replicas),
        "evictions": sum(r.pool.stats()["evictions"] for r in sim.replicas),
    }
    prompt_hits = sum(r.prompt_hits for r in sim.replicas)
    prompt_misses = sum(r.prompt_misses for r in sim.replicas)

    report = {
        "schema": SCHEMA,
        "trace": {
            "config": trace.config.describe(),
            "num_requests": len(trace),
            "duration_s": trace.duration_s,
            "fingerprint": trace.fingerprint(),
        },
        "cluster": {
            "policy": sim.policy.name,
            "initial_replicas": sim.config.initial_replicas,
            "final_replicas": len(sim.replicas),
            "router_cache_size": sim.router.cache_size,
        },
        "requests": {
            "offered": offered,
            "admitted": sim.frontdoor.admitted,
            "completed": sim.stats.completed,
            "rejected": rejections,
        },
        "frontdoor": sim.frontdoor.summary(),
        "tenant_rejection_rates": tenant_rejection_rates,
        "variants": dict(variant_totals, reload_rate=(
            variant_totals["reloads"] / sim.stats.completed
            if sim.stats.completed else 0.0)),
        "prompt_cache": {
            "hits": prompt_hits,
            "misses": prompt_misses,
            "hit_rate": (prompt_hits / (prompt_hits + prompt_misses)
                         if (prompt_hits + prompt_misses) else 0.0),
        },
        "replicas": replicas,
        "autoscaler": (sim.autoscaler.summary() if sim.autoscaler
                       else {"enabled": False, "timeline": []}),
        "events": dict(sim.events),
    }
    report.update(sim.stats.summary())
    return report


def save_cluster_report(report: Dict, path) -> Path:
    """Write the report as canonical JSON (sorted keys, stable layout).

    The emitted bytes are a pure function of the report dict, which is a
    pure function of (trace, cluster config) — the determinism contract
    the smoke tests assert by comparing files across runs.
    """
    schemas.validate_document(report, expect=schemas.CLUSTER_REPORT)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path

"""The serving engine: queue -> route -> batch -> variant pool -> stats.

Request lifecycle
-----------------

1. **Admission** (:meth:`ServingEngine.submit`): the request is validated,
   stamped with an id and arrival time and pushed into the bounded
   :class:`~repro.serving.request.RequestQueue`; at capacity the request is
   rejected (counted per tenant/tier in the stats report) instead of
   buffered unboundedly.
2. **Routing**: the :class:`~repro.serving.router.SLORouter` predicts
   per-(scheme, plan) latency from the roofline cost model and picks the
   highest-quality scheme *and step budget* that fit the request's SLO —
   precision degrades first, the trajectory is truncated only when no
   scheme can meet the budget.
3. **Batching**: the :class:`~repro.serving.batcher.DynamicBatcher` groups
   requests that share ``(model, scheme, routed plan)`` until a batch
   fills or the oldest member has waited ``max_wait`` seconds.
4. **Generation**: the batch's pipeline variant comes from the
   :class:`~repro.serving.pool.ModelVariantPool` (built lazily, LRU-evicted
   under a memory budget); text prompts resolve through the
   :class:`~repro.serving.embedding_cache.EmbeddingCache`; the whole batch
   runs in one :meth:`~repro.diffusion.DiffusionPipeline.generate_batch`
   sampler pass with per-request seeds, under the batch key's plan.
5. **Instrumentation**: every request/batch lands in
   :class:`~repro.serving.stats.ServingStats` (queue wait, batch size,
   latency percentiles, throughput, cache hit rates) for the JSON report.

The engine is single-threaded and synchronous: ``submit`` enqueues,
:meth:`run_until_idle` drains.  That keeps semantics deterministic and
testable; concurrency is layered on top by driving multiple engines —
:mod:`repro.serving.cluster` wraps N engines in replicas behind a front
door and drives them in one discrete-event loop.

Every timestamp the engine (or any component it owns — batcher, pool,
stats) records comes from the injectable ``clock``, never from the
``time`` module directly, so an engine handed a
:class:`~repro.serving.clock.VirtualClock` is fully deterministic: two
runs of the same workload produce bit-identical stats reports.  For
cluster simulation the batch lifecycle is split in two so an event loop
can schedule service explicitly: :meth:`collect_ready_batches` closes
batches without executing them, and :meth:`complete_batch` executes one
with caller-supplied start/finish times (a batch may start late when its
replica is busy — that wait lands in ``dispatch_wait``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..diffusion import DiffusionPipeline
from ..models import get_model_spec
from ..profiling import GPU_V100, unet_layer_costs
from ..tensor import Tensor
from .batcher import Batch, BatchKey, DynamicBatcher
from .embedding_cache import EmbeddingCache
from .pool import ModelVariantPool
from .request import QueueFullError, Request, RequestQueue, Response
from .router import SLORouter
from .stats import BatchRecord, RequestRecord, ServingStats


@dataclass
class EngineConfig:
    """Engine-level serving knobs."""

    max_batch_size: int = 8
    max_wait: float = 0.02          # seconds a partial batch may age
    queue_capacity: int = 256
    embedding_cache_capacity: int = 1024


class ServingEngine:
    """Single-node serving engine over a model-variant pool."""

    def __init__(self, pool: ModelVariantPool,
                 router: Optional[SLORouter] = None,
                 config: Optional[EngineConfig] = None,
                 embedding_cache: Optional[EmbeddingCache] = None,
                 stats: Optional[ServingStats] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 tracer=None, trace_lane: Optional[str] = None,
                 trace_process: str = "serving",
                 trace_steps: bool = False,
                 metrics=None):
        """``tracer`` (:class:`repro.obs.Tracer`, default off) books the
        request lifecycle — queue wait, batch build, embed, execute — as
        spans on the ``(trace_process, trace_lane)`` track, plus one async
        span per request; ``trace_steps`` additionally threads the tracer
        into the sampler loop for per-step spans stamped with roofline
        predictions.  ``metrics`` (:class:`repro.obs.MetricsRegistry`)
        receives labeled counters/histograms for the same lifecycle.  All
        telemetry timestamps come off the engine ``clock``, so a virtual-
        clock engine traces in virtual time."""
        self.pool = pool
        self.router = router or SLORouter()
        self.config = config or EngineConfig()
        self.clock = clock
        if pool.clock is None:
            # The pool stamps variant build times; adopting the engine's
            # clock keeps every engine-owned timestamp on one (possibly
            # virtual) timeline.
            pool.clock = clock
        self.queue = RequestQueue(self.config.queue_capacity)
        self.batcher = DynamicBatcher(self.config.max_batch_size,
                                      self.config.max_wait, clock=clock)
        self.embedding_cache = embedding_cache or EmbeddingCache(
            self.config.embedding_cache_capacity)
        self.stats = stats or ServingStats()
        self.tracer = tracer if (tracer is not None
                                 and getattr(tracer, "enabled", True)) else None
        self.trace_lane = trace_lane
        self.trace_process = trace_process
        self.trace_steps = trace_steps
        self.metrics = metrics
        self._predicted_cache: Dict = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> bool:
        """Admit a request; returns False (and counts a rejection) when shed."""
        spec = get_model_spec(request.model)
        if spec.task == "text-to-image" and request.prompt is None:
            raise ValueError(
                f"model '{request.model}' is text-to-image; request needs a prompt")
        if request.plan is not None:
            request.plan.validate_for_model(spec.task, request.model)
        if request.request_id is None:
            request.request_id = self._next_id
            self._next_id += 1
        request.arrival_time = self.clock()
        self.stats.mark_start(request.arrival_time)
        try:
            self.queue.push(request)
        except QueueFullError:
            self.stats.record_rejection(tenant=request.tenant,
                                        tier=request.tier,
                                        reason="queue_full")
            if self.tracer is not None:
                self.tracer.instant("request.rejected",
                                    ts=request.arrival_time,
                                    category="admission",
                                    lane=self.trace_lane,
                                    process=self.trace_process,
                                    attrs={"reason": "queue_full",
                                           "tenant": request.tenant,
                                           "tier": request.tier})
            if self.metrics is not None:
                self.metrics.counter("serving.rejections",
                                     {"reason": "queue_full"}).inc()
            return False
        return True

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _batch_key(self, request: Request) -> BatchKey:
        decision = self.router.decide(request)
        return BatchKey(model=request.model, scheme=decision.scheme,
                        plan=decision.plan)

    def _pipeline_for(self, key: BatchKey) -> DiffusionPipeline:
        # The batch key's plan (sampler, steps, guidance) is applied per
        # generate_batch call, so one pooled variant serves every routed
        # plan without rebuilding pipelines.
        return self.pool.get(key.model, key.scheme)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _predicted_seconds(self, pipeline: DiffusionPipeline,
                           key: BatchKey) -> Optional[float]:
        """Roofline end-to-end seconds for this batch key (cached).

        Stamped onto execute/step spans so the calibration report can
        compare the cost model's prediction against the measured span —
        priced on the reference device profile, so only relative error is
        meaningful.
        """
        cache_key = (key.model, key.scheme, key.plan.fingerprint())
        if cache_key not in self._predicted_cache:
            from ..diffusion.samplers import get_sampler_info
            from ..obs.calibration import predict_plan_seconds
            info = get_sampler_info(key.plan.sampler)
            try:
                costs = unet_layer_costs(
                    pipeline.spec.unet,
                    sample_size=pipeline.spec.sample_shape[-1])
                predicted = predict_plan_seconds(
                    costs, GPU_V100, key.scheme, pipeline.num_steps,
                    guidance_scale=key.plan.guidance_scale,
                    solver_evals_per_step=info.evals_per_step,
                    first_order_final_step=info.first_order_final_step)
            except (AttributeError, KeyError, ValueError):
                # Pipeline stand-ins (e.g. the cluster's SimPipeline) have
                # no spec to price; their cost model prices batches itself.
                predicted = None
            self._predicted_cache[cache_key] = predicted
        return self._predicted_cache[cache_key]

    def _trace_batch(self, batch: Batch, started: float, finished: float,
                     num_steps: int, embed_started: Optional[float],
                     embed_finished: Optional[float],
                     pipeline: DiffusionPipeline) -> None:
        """Book the batch lifecycle segments on the engine's trace lane."""
        if self.tracer is None:
            return
        lane, process = self.trace_lane, self.trace_process
        arrivals = [request.arrival_time for request in batch.requests
                    if request.arrival_time is not None]
        attrs = {"model": batch.key.model, "scheme": batch.key.scheme,
                 "sampler": batch.key.plan.sampler, "num_steps": num_steps,
                 "batch_size": len(batch)}
        if arrivals:
            self.tracer.add_span("batch.build", min(arrivals),
                                 batch.formed_at, category="batch",
                                 lane=lane, process=process, attrs=attrs)
        if started > batch.formed_at:
            self.tracer.add_span("batch.dispatch", batch.formed_at, started,
                                 category="batch", lane=lane, process=process,
                                 attrs={"batch_size": len(batch)})
        if embed_started is not None:
            self.tracer.add_span("batch.embed", embed_started, embed_finished,
                                 category="batch", lane=lane, process=process,
                                 attrs={"batch_size": len(batch)})
        exec_attrs = dict(attrs)
        predicted = self._predicted_seconds(pipeline, batch.key)
        if predicted is not None:
            exec_attrs["predicted_s"] = predicted
        self.tracer.add_span("batch.execute", started, finished,
                             category="batch", lane=lane, process=process,
                             attrs=exec_attrs)

    def complete_batch(self, batch: Batch,
                       started: Optional[float] = None,
                       finished: Optional[float] = None) -> List[Response]:
        """Execute one closed batch and record its stats.

        Without explicit timestamps the batch is timed off the engine
        clock around the generation pass (the live-serving path).  A
        cluster event loop instead schedules service itself and passes
        ``started``/``finished`` — the modeled executor interval — so a
        batch that queued behind a busy replica is accounted correctly
        (the lag between batch formation and ``started`` is reported as
        ``dispatch_wait``).
        """
        if started is None:
            started = self.clock()
        pipeline = self._pipeline_for(batch.key)
        context = None
        hit_flags: Optional[List[bool]] = None
        embed_started = embed_finished = None
        if pipeline.is_text_to_image:
            if self.tracer is not None:
                embed_started = self.clock()
            prompts = [request.prompt for request in batch.requests]
            contexts, hit_flags = self.embedding_cache.get_contexts(
                batch.key.model, pipeline, prompts)
            context = Tensor(contexts)
            if self.tracer is not None:
                embed_finished = self.clock()
        seeds = [request.seed for request in batch.requests]
        step_tracer = self.tracer if self.trace_steps else None
        step_attrs = None
        if step_tracer is not None:
            step_attrs = {"model": batch.key.model,
                          "scheme": batch.key.scheme,
                          "batch_size": len(batch)}
            predicted = self._predicted_seconds(pipeline, batch.key)
            if predicted is not None:
                step_attrs["predicted_step_s"] = (
                    predicted / max(pipeline.num_steps, 1))
        if step_tracer is None:
            # Keep the call identical to the pre-telemetry spelling so
            # pipeline stand-ins without the tracer kwargs keep working.
            images = pipeline.generate_batch(seeds, context=context,
                                             plan=batch.key.plan)
        else:
            images = pipeline.generate_batch(seeds, context=context,
                                             plan=batch.key.plan,
                                             tracer=step_tracer,
                                             step_attrs=step_attrs)
        if finished is None:
            finished = self.clock()
        self.stats.mark_finish(finished)
        batch_latency = finished - started
        dispatch_wait = max(started - batch.formed_at, 0.0)
        plan = batch.key.plan
        # Concrete steps actually walked: full-grid samplers (DDPM) carry no
        # step budget in the plan and resolve to the training grid.
        num_steps = plan.resolve_steps(pipeline.num_steps,
                                       pipeline.schedule.num_timesteps)
        self.stats.record_batch(BatchRecord(
            model=batch.key.model, scheme=batch.key.scheme,
            num_steps=num_steps, batch_size=len(batch),
            latency=batch_latency, sampler=plan.sampler,
            guidance_scale=plan.guidance_scale, eta=plan.eta))
        if self.tracer is not None:
            self._trace_batch(batch, started, finished, num_steps,
                              embed_started, embed_finished, pipeline)
        if self.metrics is not None:
            self.metrics.histogram("serving.batch_latency_s",
                                   {"scheme": batch.key.scheme}) \
                .observe(batch_latency)
            self.metrics.histogram("serving.batch_size").observe(len(batch))

        responses: List[Response] = []
        for position, request in enumerate(batch.requests):
            arrival = request.arrival_time
            queue_wait = (batch.formed_at - arrival) if arrival is not None else 0.0
            queue_wait = max(queue_wait, 0.0)
            response = Response(
                request_id=request.request_id,
                model=batch.key.model,
                scheme=batch.key.scheme,
                num_steps=num_steps,
                image=images[position],
                queue_wait=queue_wait,
                batch_size=len(batch),
                batch_latency=batch_latency,
                total_latency=queue_wait + dispatch_wait + batch_latency,
                dispatch_wait=dispatch_wait,
                embedding_cache_hit=(hit_flags[position]
                                     if hit_flags is not None else None),
                plan=plan)
            responses.append(response)
            slo_met = response.meets_slo(request.latency_slo)
            if self.tracer is not None and arrival is not None:
                self.tracer.async_span(
                    "request", request.request_id, arrival, finished,
                    category="request", lane=self.trace_lane,
                    process=self.trace_process,
                    attrs={"scheme": batch.key.scheme,
                           "tenant": request.tenant, "tier": request.tier,
                           "queue_wait_s": queue_wait,
                           "dispatch_wait_s": dispatch_wait,
                           "slo_met": slo_met})
            if self.metrics is not None:
                self.metrics.counter("serving.requests",
                                     {"scheme": batch.key.scheme}).inc()
                self.metrics.histogram("serving.queue_wait_s") \
                    .observe(queue_wait)
            if self.stats.keep_records:
                self.stats.record_request(RequestRecord(
                    request_id=request.request_id, model=batch.key.model,
                    scheme=batch.key.scheme, num_steps=num_steps,
                    queue_wait=queue_wait, batch_size=len(batch),
                    batch_latency=batch_latency,
                    total_latency=response.total_latency,
                    latency_slo=request.latency_slo,
                    slo_met=slo_met,
                    sampler=plan.sampler,
                    guidance_scale=plan.guidance_scale,
                    eta=plan.eta,
                    dispatch_wait=dispatch_wait,
                    tenant=request.tenant,
                    tier=request.tier))
            else:
                # At simulator scale even the per-request dataclass is
                # measurable; the aggregate counters stay exact.
                self.stats.record_completion(batch.key.scheme, slo_met)
        return responses

    # Backwards-compatible spelling used by pre-cluster callers/tests.
    def _process_batch(self, batch: Batch) -> List[Response]:
        return self.complete_batch(batch)

    def _drain_queue_batches(self) -> Iterator[Batch]:
        """Move queued requests into the batcher, yielding batches that fill."""
        while len(self.queue):
            request = self.queue.pop()
            key = self._batch_key(request)
            full = self.batcher.add(key, request)
            if full is not None:
                yield full

    def _drain_queue(self) -> List[Response]:
        """Drain arrivals, serving each batch the moment it fills."""
        responses: List[Response] = []
        for batch in self._drain_queue_batches():
            responses.extend(self.complete_batch(batch))
        return responses

    def collect_ready_batches(self, due: bool = True,
                              flush: bool = False) -> List[Batch]:
        """Close ready batches *without executing them* (cluster mode).

        Drains the queue into the batcher and returns every batch that
        filled, plus (``due=True``) batches whose oldest member aged past
        ``max_wait``, plus (``flush=True``) every remaining partial batch.
        The event loop schedules :meth:`complete_batch` for each at the
        replica's next free slot instead of running them inline.
        """
        batches = list(self._drain_queue_batches())
        if flush:
            batches.extend(self.batcher.flush())
        elif due:
            batches.extend(self.batcher.due())
        return batches

    def pump(self) -> List[Response]:
        """One live-serving turn: drain arrivals, then close aged batches.

        A server loop alternates ``submit`` (as traffic arrives) with
        ``pump``; partial batches are held back until they fill or their
        oldest member has waited ``max_wait`` seconds.
        """
        responses = self._drain_queue()
        for due in self.batcher.due():
            responses.extend(self.complete_batch(due))
        self.sync_component_stats()
        return responses

    def run_until_idle(self) -> List[Response]:
        """Drain the queue and all pending batches; return every response.

        Unlike :meth:`pump`, no more arrivals are coming, so remaining
        partial batches are flushed immediately rather than aged out.
        """
        responses = self._drain_queue()
        for batch in self.batcher.flush():
            responses.extend(self.complete_batch(batch))
        self.sync_component_stats()
        return responses

    def serve(self, requests: Sequence[Request]) -> List[Response]:
        """Submit a workload and drain it (the load-generator entry point)."""
        for request in requests:
            self.submit(request)
        return self.run_until_idle()

    def serve_sequential(self, requests: Sequence[Request]) -> List[Response]:
        """Baseline: serve each request in its own generation pass.

        This is the pre-serving behaviour (one ``generate`` call per
        request) with identical routing, pooling and instrumentation —
        the benchmark's control arm for measuring what dynamic batching
        buys.
        """
        responses: List[Response] = []
        for request in requests:
            if not self.submit(request):
                continue
            request = self.queue.pop()
            key = self._batch_key(request)
            batch = Batch(key=key, requests=[request], formed_at=self.clock())
            responses.extend(self.complete_batch(batch))
        self.sync_component_stats()
        return responses

    # ------------------------------------------------------------------
    def sync_component_stats(self) -> None:
        """Copy cache/pool counters into the stats report's component block."""
        self.stats.set_component_stats("embedding_cache",
                                       self.embedding_cache.stats())
        self.stats.set_component_stats("variant_pool", self.pool.stats())

"""Request/response model and the bounded admission queue.

A :class:`Request` is one user's ask: generate an image from ``model`` —
optionally from a ``prompt`` for text-to-image models — under an optional
latency SLO.  The engine stamps the arrival time on admission and the
request then flows queue → batcher → variant pool → generation → stats
(see :mod:`repro.serving.engine` for the lifecycle).

The :class:`RequestQueue` is deliberately bounded: a serving system under
overload must shed load at admission rather than buffer unboundedly, so
``push`` raises :class:`QueueFullError` once ``capacity`` requests are
waiting and the engine converts that into a rejected-request statistic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

import numpy as np

from ..diffusion.plan import GenerationPlan


class QueueFullError(RuntimeError):
    """Raised when a request is pushed into a queue that is at capacity."""


@dataclass
class Request:
    """One inference request.

    ``scheme`` pins an explicit quantization scheme; when ``None`` the
    SLO router chooses one from ``latency_slo`` (seconds).  ``plan``
    requests a generation trajectory (sampler, step budget, guidance); the
    router treats its step budget as a ceiling it may reduce under a tight
    SLO.  ``num_steps`` is the legacy spelling of a bare step budget and is
    folded into the plan; both default to the model's standard
    sampling-step count.  ``seed`` makes the request's image deterministic
    regardless of how it is batched.

    ``tenant`` identifies the account the request bills to (the unit of
    admission-control fairness in the cluster front door) and ``tier`` is
    the symbolic SLO tier its ``latency_slo`` was derived from; both are
    optional and purely attributional — they never change how a single
    engine serves the request, only how rejections and latency are
    accounted per tenant/tier.
    """

    model: str
    prompt: Optional[str] = None
    num_steps: Optional[int] = None
    latency_slo: Optional[float] = None
    scheme: Optional[str] = None
    plan: Optional[GenerationPlan] = None
    seed: int = 0
    tenant: Optional[str] = None
    tier: Optional[str] = None
    request_id: Optional[int] = None
    arrival_time: Optional[float] = None


@dataclass
class Response:
    """The served result plus per-request instrumentation."""

    request_id: int
    model: str
    scheme: str
    num_steps: int
    image: np.ndarray
    queue_wait: float          # seconds from admission to batch formation
    batch_size: int            # size of the batch the request was served in
    batch_latency: float       # wall-clock seconds of the batch's generation
    total_latency: float       # queue_wait + dispatch_wait + batch_latency
    #: Seconds the formed batch waited for a free executor slot (always 0
    #: in single-engine live serving; nonzero under the cluster simulator
    #: when a batch queues behind a busy replica).
    dispatch_wait: float = 0.0
    embedding_cache_hit: Optional[bool] = None
    #: The generation plan the request was actually served with (the routed
    #: plan — possibly step-reduced relative to what was asked for).
    plan: Optional[GenerationPlan] = None

    def meets_slo(self, slo: Optional[float]) -> Optional[bool]:
        """Whether the measured total latency met the given SLO (None = no SLO)."""
        if slo is None:
            return None
        return self.total_latency <= slo


class RequestQueue:
    """Bounded FIFO admission queue."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[Request] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, request: Request) -> None:
        if self.full:
            raise QueueFullError(
                f"request queue at capacity ({self.capacity}); shedding load")
        self._queue.append(request)

    def pop(self) -> Request:
        if not self._queue:
            raise IndexError("pop from an empty request queue")
        return self._queue.popleft()

    def depth_by_model(self) -> Dict[str, int]:
        """Waiting-request counts per model (for load-aware routing/ops)."""
        depths: Dict[str, int] = {}
        for request in self._queue:
            depths[request.model] = depths.get(request.model, 0) + 1
        return depths

"""Virtual time for deterministic serving tests and benchmarks.

The engine and the batcher take an injectable ``clock`` callable precisely
so that timeout semantics and throughput arithmetic can be driven without
sleeping or measuring a loaded machine.  :class:`VirtualClock` is that
drive: it only moves when told to, so a test models each generation pass
with a deterministic cost (e.g. from the roofline model) and the resulting
throughput/speedup numbers are exact functions of the batching policy —
never of CI scheduling noise.
"""

from __future__ import annotations


class VirtualClock:
    """A manually-advanced clock, drop-in for ``time.monotonic``."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (never backward); returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}; time is monotonic")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time (never backward); returns the new time.

        The discrete-event form of :meth:`advance`: an event loop pops the
        next event and moves the clock straight to its timestamp.  Jumping
        to the current time is a no-op, so colocated events are cheap.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot rewind to {timestamp}; now is {self._now}")
        self._now = float(timestamp)
        return self._now

"""Serving subsystem: a dynamic-batching inference engine over the zoo.

Turns the one-shot experiment pipelines into a traffic-serving layer, in
the spirit of the paper's workload characterization: quantization schemes
become *serving variants* with predictable latency/memory costs, and the
engine exploits that to meet per-request latency SLOs.

Components (one module each):

* :mod:`~repro.serving.request` — ``Request``/``Response`` model and the
  bounded admission queue;
* :mod:`~repro.serving.batcher` — dynamic batching of compatible requests
  (same model, scheme, routed generation plan) under size/wait bounds;
* :mod:`~repro.serving.pool` — lazily-built, LRU-evicted pool of quantized
  pipeline variants under an analytic memory budget;
* :mod:`~repro.serving.embedding_cache` — memoized text-encoder outputs
  per (model, prompt);
* :mod:`~repro.serving.router` — SLO-aware (scheme, generation-plan)
  selection from the roofline cost model: precision degrades before the
  step budget is cut;
* :mod:`~repro.serving.stats` — queue-wait/batch/latency/cache telemetry
  and the JSON stats report;
* :mod:`~repro.serving.engine` — the orchestrating engine (lifecycle:
  queue → route → batch → variant pool → generate → stats);
* :mod:`~repro.serving.loadgen` — deterministic workload generation and
  the load benchmark entry point;
* :mod:`~repro.serving.clock` — virtual time for deterministic tests and
  benchmarks of the timing-sensitive components.
"""

from .batcher import Batch, BatchKey, DynamicBatcher
from .clock import VirtualClock
from .embedding_cache import EmbeddingCache
from .engine import EngineConfig, ServingEngine
from .loadgen import (
    SLO_TIERS,
    WorkloadConfig,
    generate_workload,
    run_load_benchmark,
    slo_for_tier,
    zipf_weights,
)
from .pool import ModelVariantPool, variant_cost_bytes
from .request import QueueFullError, Request, RequestQueue, Response
from .router import (
    DEFAULT_SCHEMES,
    DEFAULT_STEP_FRACTIONS,
    RoutingDecision,
    SLORouter,
)
from .stats import (
    BatchRecord,
    RequestRecord,
    ServingStats,
    percentile_summary,
)

__all__ = [
    "Request", "Response", "RequestQueue", "QueueFullError",
    "BatchKey", "Batch", "DynamicBatcher",
    "ModelVariantPool", "variant_cost_bytes",
    "EmbeddingCache",
    "SLORouter", "RoutingDecision", "DEFAULT_SCHEMES",
    "DEFAULT_STEP_FRACTIONS",
    "ServingStats", "RequestRecord", "BatchRecord",
    "ServingEngine", "EngineConfig",
    "WorkloadConfig", "generate_workload", "run_load_benchmark",
    "slo_for_tier", "SLO_TIERS", "zipf_weights",
    "percentile_summary",
    "VirtualClock",
]

"""Dynamic batching: group compatible requests into one sampler pass.

Requests are only batchable when they can share a single U-Net forward per
denoising step, which means the same model, the same quantization scheme
(they must run on the same pooled pipeline variant) and the same *routed
generation plan* — one sampler walking one timestep grid at one guidance
scale per batch.  That triple is the :class:`BatchKey`; plans are frozen
and content-comparable, so two requests routed to ``dpm2 @ 4 steps`` land
in the same group whatever spelling they arrived with.

The batcher accumulates per-key groups and closes a batch when either

* the group reaches ``max_batch_size`` (returned immediately from
  :meth:`add`), or
* the group's *oldest* request has waited ``max_wait`` seconds
  (:meth:`due` — the engine polls this between arrivals), trading a bounded
  amount of queueing latency for larger, more efficient batches.

``clock`` is injectable so tests can drive timeout semantics with a virtual
clock instead of sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional

from ..diffusion.plan import GenerationPlan
from .request import Request


class BatchKey(NamedTuple):
    """Compatibility class of requests that may share one generation pass."""

    model: str
    scheme: str
    plan: GenerationPlan

    @property
    def num_steps(self) -> Optional[int]:
        """The routed plan's step budget (legacy accessor)."""
        return self.plan.num_steps


@dataclass
class Batch:
    """A closed group of compatible requests ready for generation."""

    key: BatchKey
    requests: List[Request]
    formed_at: float

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival(self) -> float:
        return min(r.arrival_time or self.formed_at for r in self.requests)


@dataclass
class _PendingGroup:
    requests: List[Request] = field(default_factory=list)
    opened_at: float = 0.0


class DynamicBatcher:
    """Groups requests by :class:`BatchKey` under size and wait bounds."""

    def __init__(self, max_batch_size: int = 8, max_wait: float = 0.05,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.clock = clock
        self._pending: Dict[BatchKey, _PendingGroup] = {}

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return sum(len(g.requests) for g in self._pending.values())

    def _close(self, key: BatchKey) -> Batch:
        group = self._pending.pop(key)
        return Batch(key=key, requests=group.requests, formed_at=self.clock())

    # ------------------------------------------------------------------
    def add(self, key: BatchKey, request: Request) -> Optional[Batch]:
        """Add a routed request; returns a batch the moment one fills up."""
        group = self._pending.get(key)
        if group is None:
            group = _PendingGroup(opened_at=self.clock())
            self._pending[key] = group
        group.requests.append(request)
        if len(group.requests) >= self.max_batch_size:
            return self._close(key)
        return None

    def next_due_at(self) -> Optional[float]:
        """Clock time when the oldest pending group ages out (None if empty).

        Event-driven callers (the cluster simulator) schedule one timer at
        this instant instead of polling :meth:`due`; at that time ``due()``
        is guaranteed to close at least the oldest group.
        """
        if not self._pending:
            return None
        return (min(group.opened_at for group in self._pending.values())
                + self.max_wait)

    def due(self) -> List[Batch]:
        """Close every group whose oldest request has waited ``max_wait``."""
        now = self.clock()
        expired = [key for key, group in self._pending.items()
                   if now - group.opened_at >= self.max_wait]
        return [self._close(key) for key in expired]

    def flush(self) -> List[Batch]:
        """Close all pending groups regardless of age (drain / shutdown)."""
        return [self._close(key) for key in list(self._pending)]

"""Serving instrumentation: per-request and per-batch records, JSON report.

Every served request contributes a :class:`RequestRecord` (queue wait, batch
size, measured latency, scheme *and generation plan* actually served) and
every generation pass a :class:`BatchRecord`.  :meth:`ServingStats.report`
aggregates them into the quantities a serving operator watches — p50/p95
latency and queue wait, throughput, mean/histogram batch size, rejection
count, cache hit rates, and a per-plan block (latency summary, scheme mix
and SLO attainment per routed sampler/steps/guidance combination, the
quality dimension the two-dimensional router trades) — and serializes to
JSON so load-test runs can be archived and diffed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np


@dataclass
class RequestRecord:
    """Instrumentation for one completed request."""

    request_id: int
    model: str
    scheme: str
    num_steps: int
    queue_wait: float
    batch_size: int
    batch_latency: float
    total_latency: float
    latency_slo: Optional[float]
    slo_met: Optional[bool]
    sampler: str = "ddim"
    guidance_scale: float = 1.0
    eta: float = 0.0

    @property
    def plan_label(self) -> str:
        """Routed-plan identity for grouping, e.g. ``ddim/8`` or ``dpm2/4@g2``.

        Every plan knob that changes the served execution participates —
        eta included, since stochastic plans take a different (per-row)
        serving path with a different latency profile.
        """
        label = f"{self.sampler}/{self.num_steps}"
        if self.guidance_scale != 1.0:
            label += f"@g{self.guidance_scale:g}"
        if self.eta != 0.0:
            label += f"@eta{self.eta:g}"
        return label


@dataclass
class BatchRecord:
    """Instrumentation for one generation pass."""

    model: str
    scheme: str
    num_steps: int
    batch_size: int
    latency: float
    sampler: str = "ddim"
    guidance_scale: float = 1.0
    eta: float = 0.0


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _summary(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": float(np.mean(values)),
        "p50": _percentile(values, 50),
        "p95": _percentile(values, 95),
        "max": float(max(values)),
    }


class ServingStats:
    """Accumulates serving telemetry and renders the stats report."""

    def __init__(self):
        self.requests: List[RequestRecord] = []
        self.batches: List[BatchRecord] = []
        self.rejected = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Extra counter blocks merged into the report (embedding cache,
        #: variant pool, ...), keyed by component name.
        self.components: Dict[str, Dict] = {}

    # ------------------------------------------------------------------
    def record_request(self, record: RequestRecord) -> None:
        self.requests.append(record)

    def record_batch(self, record: BatchRecord) -> None:
        self.batches.append(record)

    def record_rejection(self) -> None:
        self.rejected += 1

    def mark_start(self, now: float) -> None:
        if self.started_at is None or now < self.started_at:
            self.started_at = now

    def mark_finish(self, now: float) -> None:
        if self.finished_at is None or now > self.finished_at:
            self.finished_at = now

    def set_component_stats(self, name: str, stats: Dict) -> None:
        self.components[name] = dict(stats)

    # ------------------------------------------------------------------
    @property
    def wall_time(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return max(self.finished_at - self.started_at, 0.0)

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall-clock serving time."""
        wall = self.wall_time
        return len(self.requests) / wall if wall > 0 else 0.0

    def report(self) -> Dict:
        """Aggregate everything into a JSON-serializable stats report."""
        batch_sizes = [float(b.batch_size) for b in self.batches]
        size_histogram: Dict[str, int] = {}
        for batch in self.batches:
            key = str(batch.batch_size)
            size_histogram[key] = size_histogram.get(key, 0) + 1
        with_slo = [r for r in self.requests if r.slo_met is not None]
        scheme_counts: Dict[str, int] = {}
        for record in self.requests:
            scheme_counts[record.scheme] = scheme_counts.get(record.scheme, 0) + 1
        plan_groups: Dict[str, List[RequestRecord]] = {}
        for record in self.requests:
            plan_groups.setdefault(record.plan_label, []).append(record)
        plans: Dict[str, Dict] = {}
        for label in sorted(plan_groups):
            records = plan_groups[label]
            by_scheme: Dict[str, int] = {}
            for record in records:
                by_scheme[record.scheme] = by_scheme.get(record.scheme, 0) + 1
            targeted = [r for r in records if r.slo_met is not None]
            plans[label] = {
                "count": len(records),
                "latency_s": _summary([r.total_latency for r in records]),
                "by_scheme": by_scheme,
                "slo": {
                    "with_target": len(targeted),
                    "met": sum(1 for r in targeted if r.slo_met),
                },
            }
        return {
            "requests": {
                "completed": len(self.requests),
                "rejected": self.rejected,
                "by_scheme": scheme_counts,
            },
            "wall_time_s": self.wall_time,
            "throughput_rps": self.throughput,
            "queue_wait_s": _summary([r.queue_wait for r in self.requests]),
            "latency_s": _summary([r.total_latency for r in self.requests]),
            "batch": {
                "count": len(self.batches),
                "mean_size": float(np.mean(batch_sizes)) if batch_sizes else 0.0,
                "size_histogram": size_histogram,
            },
            "slo": {
                "with_target": len(with_slo),
                "met": sum(1 for r in with_slo if r.slo_met),
            },
            "plans": plans,
            "components": self.components,
        }

    # ------------------------------------------------------------------
    def to_json(self, path=None, indent: int = 2) -> str:
        """Render the report as JSON; optionally also write it to ``path``."""
        text = json.dumps(self.report(), indent=indent, sort_keys=True)
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")
        return text

    def request_records(self) -> List[Dict]:
        """Raw per-request records as dicts (for debugging / notebooks)."""
        return [asdict(record) for record in self.requests]

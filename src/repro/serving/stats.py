"""Serving instrumentation: per-request and per-batch records, JSON report.

Every served request contributes a :class:`RequestRecord` (queue wait, batch
size, measured latency, scheme *and generation plan* actually served) and
every generation pass a :class:`BatchRecord`.  :meth:`ServingStats.report`
aggregates them into the quantities a serving operator watches — p50/p95
latency and queue wait, throughput, mean/histogram batch size, rejection
counts (total and per tenant / SLO tier / reason), cache hit rates, and a
per-plan block (latency summary, scheme mix and SLO attainment per routed
sampler/steps/guidance combination, the quality dimension the
two-dimensional router trades) — and serializes to JSON so load-test runs
can be archived and diffed.

Scalar aggregates (request/batch/rejection counts, scheme mix, SLO
attainment, batch-size histogram) are maintained incrementally as records
arrive, so ``ServingStats(keep_records=False)`` can drop the per-record
lists entirely: the cluster simulator pushes ~10^6 requests through
replica engines and keeps its own compact latency arrays, so retaining a
dataclass per request in every replica would only burn memory.  With
``keep_records=False`` the counter blocks stay exact and only the
record-derived blocks (latency summaries, per-plan breakdown) are empty.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np


@dataclass
class RequestRecord:
    """Instrumentation for one completed request."""

    request_id: int
    model: str
    scheme: str
    num_steps: int
    queue_wait: float
    batch_size: int
    batch_latency: float
    total_latency: float
    latency_slo: Optional[float]
    slo_met: Optional[bool]
    sampler: str = "ddim"
    guidance_scale: float = 1.0
    eta: float = 0.0
    #: Seconds the formed batch waited for the executor (0 when a batch is
    #: processed the moment it closes; the cluster simulator models busy
    #: replicas, where a closed batch can queue behind in-flight work).
    dispatch_wait: float = 0.0
    tenant: Optional[str] = None
    tier: Optional[str] = None

    @property
    def plan_label(self) -> str:
        """Routed-plan identity for grouping, e.g. ``ddim/8`` or ``dpm2/4@g2``.

        Every plan knob that changes the served execution participates —
        eta included, since stochastic plans take a different (per-row)
        serving path with a different latency profile.
        """
        label = f"{self.sampler}/{self.num_steps}"
        if self.guidance_scale != 1.0:
            label += f"@g{self.guidance_scale:g}"
        if self.eta != 0.0:
            label += f"@eta{self.eta:g}"
        return label


@dataclass
class BatchRecord:
    """Instrumentation for one generation pass."""

    model: str
    scheme: str
    num_steps: int
    batch_size: int
    latency: float
    sampler: str = "ddim"
    guidance_scale: float = 1.0
    eta: float = 0.0


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _summary(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": float(np.mean(values)),
        "p50": _percentile(values, 50),
        "p95": _percentile(values, 95),
        "max": float(max(values)),
    }


def percentile_summary(values, quantiles=(50, 95, 99)) -> Dict[str, float]:
    """Mean/max plus the requested percentiles, as a JSON-ready dict.

    The cluster report's latency blocks use this (p50/p95/p99); the
    single-engine report keeps its original ``{mean, p50, p95, max}`` shape
    via :func:`_summary` for compatibility with archived reports.
    """
    if len(values) == 0:
        summary = {"mean": 0.0, "max": 0.0}
        summary.update({f"p{q:g}": 0.0 for q in quantiles})
        return summary
    array = np.asarray(values, dtype=np.float64)
    summary = {"mean": float(array.mean()), "max": float(array.max())}
    points = np.percentile(array, list(quantiles))
    summary.update({f"p{q:g}": float(p) for q, p in zip(quantiles, points)})
    return summary


class ServingStats:
    """Accumulates serving telemetry and renders the stats report."""

    def __init__(self, keep_records: bool = True):
        self.keep_records = keep_records
        self.requests: List[RequestRecord] = []
        self.batches: List[BatchRecord] = []
        self.rejected = 0
        self.rejections_by_tenant: Dict[str, int] = {}
        self.rejections_by_tier: Dict[str, int] = {}
        self.rejections_by_reason: Dict[str, int] = {}
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Extra counter blocks merged into the report (embedding cache,
        #: variant pool, ...), keyed by component name.
        self.components: Dict[str, Dict] = {}
        # incremental aggregates (exact whether or not records are kept)
        self._completed = 0
        self._scheme_counts: Dict[str, int] = {}
        self._slo_with = 0
        self._slo_met = 0
        self._batch_count = 0
        self._batch_size_sum = 0
        self._size_histogram: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def record_request(self, record: RequestRecord) -> None:
        self._completed += 1
        self._scheme_counts[record.scheme] = (
            self._scheme_counts.get(record.scheme, 0) + 1)
        if record.slo_met is not None:
            self._slo_with += 1
            if record.slo_met:
                self._slo_met += 1
        if self.keep_records:
            self.requests.append(record)

    def record_completion(self, scheme: str,
                          slo_met: Optional[bool] = None) -> None:
        """Count a completed request without materializing a record.

        The record-free twin of :meth:`record_request` for callers running
        with ``keep_records=False`` at scales where even constructing the
        dataclass per request is measurable.
        """
        self._completed += 1
        self._scheme_counts[scheme] = self._scheme_counts.get(scheme, 0) + 1
        if slo_met is not None:
            self._slo_with += 1
            if slo_met:
                self._slo_met += 1

    def record_batch(self, record: BatchRecord) -> None:
        self._batch_count += 1
        self._batch_size_sum += record.batch_size
        key = str(record.batch_size)
        self._size_histogram[key] = self._size_histogram.get(key, 0) + 1
        if self.keep_records:
            self.batches.append(record)

    def record_rejection(self, tenant: Optional[str] = None,
                         tier: Optional[str] = None,
                         reason: str = "queue_full") -> None:
        """Count a shed request, attributed to its tenant / SLO tier / cause."""
        self.rejected += 1
        if tenant is not None:
            self.rejections_by_tenant[tenant] = (
                self.rejections_by_tenant.get(tenant, 0) + 1)
        if tier is not None:
            self.rejections_by_tier[tier] = (
                self.rejections_by_tier.get(tier, 0) + 1)
        self.rejections_by_reason[reason] = (
            self.rejections_by_reason.get(reason, 0) + 1)

    def mark_start(self, now: float) -> None:
        if self.started_at is None or now < self.started_at:
            self.started_at = now

    def mark_finish(self, now: float) -> None:
        if self.finished_at is None or now > self.finished_at:
            self.finished_at = now

    def set_component_stats(self, name: str, stats: Dict) -> None:
        self.components[name] = dict(stats)

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return self._completed

    @property
    def wall_time(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return max(self.finished_at - self.started_at, 0.0)

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall-clock serving time."""
        wall = self.wall_time
        return self._completed / wall if wall > 0 else 0.0

    def rejections(self) -> Dict:
        """Rejection counters: total plus per-tenant / per-tier / per-reason."""
        return {
            "total": self.rejected,
            "by_tenant": {tenant: self.rejections_by_tenant[tenant]
                          for tenant in sorted(self.rejections_by_tenant)},
            "by_tier": {tier: self.rejections_by_tier[tier]
                        for tier in sorted(self.rejections_by_tier)},
            "by_reason": {reason: self.rejections_by_reason[reason]
                          for reason in sorted(self.rejections_by_reason)},
        }

    def report(self) -> Dict:
        """Aggregate everything into a JSON-serializable stats report."""
        plan_groups: Dict[str, List[RequestRecord]] = {}
        for record in self.requests:
            plan_groups.setdefault(record.plan_label, []).append(record)
        plans: Dict[str, Dict] = {}
        for label in sorted(plan_groups):
            records = plan_groups[label]
            by_scheme: Dict[str, int] = {}
            for record in records:
                by_scheme[record.scheme] = by_scheme.get(record.scheme, 0) + 1
            targeted = [r for r in records if r.slo_met is not None]
            plans[label] = {
                "count": len(records),
                "latency_s": _summary([r.total_latency for r in records]),
                "by_scheme": by_scheme,
                "slo": {
                    "with_target": len(targeted),
                    "met": sum(1 for r in targeted if r.slo_met),
                },
            }
        return {
            "requests": {
                "completed": self._completed,
                "rejected": self.rejected,
                "by_scheme": dict(self._scheme_counts),
            },
            "rejections": self.rejections(),
            "wall_time_s": self.wall_time,
            "throughput_rps": self.throughput,
            "queue_wait_s": _summary([r.queue_wait for r in self.requests]),
            "latency_s": _summary([r.total_latency for r in self.requests]),
            "batch": {
                "count": self._batch_count,
                "mean_size": (self._batch_size_sum / self._batch_count
                              if self._batch_count else 0.0),
                "size_histogram": dict(self._size_histogram),
            },
            "slo": {
                "with_target": self._slo_with,
                "met": self._slo_met,
            },
            "plans": plans,
            "components": self.components,
        }

    # ------------------------------------------------------------------
    def to_json(self, path=None, indent: int = 2) -> str:
        """Render the report as JSON; optionally also write it to ``path``."""
        text = json.dumps(self.report(), indent=indent, sort_keys=True)
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")
        return text

    def request_records(self) -> List[Dict]:
        """Raw per-request records as dicts (for debugging / notebooks)."""
        return [asdict(record) for record in self.requests]

"""Checker registry and the analysis driver.

A checker is a class with a ``name``, a ``description`` and a
``check(project, config) -> List[Finding]`` method, registered via
:func:`register_checker` (mirroring the scheme/sampler/workload registries
elsewhere in the repo).

Checkers come in two execution shapes:

* **project checkers** implement ``check`` and see the whole project —
  the interprocedural rules (determinism, race-discipline, stage-purity,
  shim-drift) live here;
* **cacheable checkers** set ``cacheable = True`` and implement
  ``check_module(module, config)`` instead: their findings are a pure
  function of one file's content plus the config, so the driver can serve
  them from the fact cache on warm runs and only re-run changed files.

:func:`run_analysis` is the full driver — cache-aware, per-rule timed.
:func:`run_checkers` is the original thin entry point, kept because tests
and external callers use its ``(findings, suppressed)`` shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from .config import AnalysisConfig
from .findings import Finding
from .project import Module, Project

_CHECKERS: Dict[str, Type] = {}


class Checker:
    """Base class; subclasses set ``name``/``description`` and ``check``."""

    name: str = ""
    description: str = ""
    #: True when findings are a pure function of (one file's content,
    #: config) — lets the driver cache them per file.
    cacheable: bool = False
    #: True when ``check`` reads the interprocedural context (module
    #: summaries + call graph); the driver then builds it up front so the
    #: fact cache can serve the summaries.
    needs_context: bool = False

    def check(self, project: Project,
              config: AnalysisConfig) -> List[Finding]:
        if not self.cacheable:
            raise NotImplementedError
        findings: List[Finding] = []
        for module in project.modules:
            findings.extend(self.check_module(module, config))
        return findings

    def check_module(self, module: Module,
                     config: AnalysisConfig) -> List[Finding]:
        raise NotImplementedError


def register_checker(cls: Type) -> Type:
    """Class decorator registering a checker under its ``name``."""
    if not getattr(cls, "name", ""):
        raise ValueError(f"checker {cls.__name__} needs a non-empty name")
    if cls.name in _CHECKERS:
        raise ValueError(f"duplicate checker name '{cls.name}'")
    _CHECKERS[cls.name] = cls
    return cls


def available_checkers() -> List[Tuple[str, str]]:
    """(name, description) for every registered checker, sorted by name."""
    _ensure_builtin_checkers()
    return sorted((cls.name, cls.description)
                  for cls in _CHECKERS.values())


def get_checker(name: str) -> Checker:
    _ensure_builtin_checkers()
    try:
        return _CHECKERS[name]()
    except KeyError:
        known = ", ".join(sorted(_CHECKERS))
        raise KeyError(f"unknown checker '{name}'; known: {known}") from None


def _ensure_builtin_checkers() -> None:
    # Imported lazily so `import repro.analysis.registry` never cycles with
    # the checker modules (which import Checker/register_checker from here).
    from . import checkers  # noqa: F401


@dataclass
class AnalysisRun:
    """Everything one driver pass produced, pre-baseline."""

    findings: List[Finding]
    suppressed: int
    #: rule name -> seconds (plus "total").
    timing: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict = field(default_factory=lambda: {"enabled": False})


def run_analysis(project: Project,
                 config: Optional[AnalysisConfig] = None,
                 rules: Optional[Sequence[str]] = None,
                 cache=None) -> AnalysisRun:
    """Run checkers over ``project`` with timing and optional fact cache.

    ``rules=None`` runs every registered checker.  Pragma-suppressed
    findings are dropped (counted), parse errors from project loading are
    prepended as ``syntax`` findings (never suppressible).  With a
    :class:`~repro.analysis.cache.FactCache`, cacheable rules are served
    per file from the cache and re-run only for changed files; the
    interprocedural rules run off (possibly cached) module summaries.
    """
    _ensure_builtin_checkers()
    config = config or AnalysisConfig()
    names = list(rules) if rules is not None else [name for name, _
                                                   in available_checkers()]
    started = time.perf_counter()
    timing: Dict[str, float] = {}
    checkers = [get_checker(name) for name in names]
    if any(checker.needs_context for checker in checkers):
        from .callgraph import get_context
        get_context(project, cache)  # built once, with cached summaries
        timing["callgraph"] = time.perf_counter() - started
    raw: List[Finding] = []
    for name, checker in zip(names, checkers):
        rule_started = time.perf_counter()
        if checker.cacheable and cache is not None:
            for module in project.modules:
                cached = cache.load_findings(module, name)
                if cached is not None:
                    raw.extend(cached)
                    continue
                fresh = checker.check_module(module, config)
                cache.store_findings(module, name, fresh)
                raw.extend(fresh)
        else:
            raw.extend(checker.check(project, config))
        timing[name] = time.perf_counter() - rule_started
    timing["total"] = time.perf_counter() - started

    by_path = {module.rel_path: module for module in project.modules}
    findings: List[Finding] = list(project.errors)
    suppressed = 0
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.allows(finding.rule, finding.line):
            suppressed += 1
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))

    cache_stats: Dict = {"enabled": cache is not None}
    if cache is not None:
        cache_stats.update(cache.stats())
        context = project._context
        if context is not None:
            cache_stats["summary_hits"] = context.cache_hits
            cache_stats["summary_misses"] = context.cache_misses
    return AnalysisRun(findings=findings, suppressed=suppressed,
                       timing=timing, cache_stats=cache_stats)


def run_checkers(project: Project, config: Optional[AnalysisConfig] = None,
                 rules: Optional[Sequence[str]] = None
                 ) -> Tuple[List[Finding], int]:
    """Compatibility entry point: (findings, suppressed count)."""
    run = run_analysis(project, config, rules)
    return run.findings, run.suppressed

"""Checker registry and the analysis driver.

A checker is a class with a ``name``, a ``description`` and a
``check(project, config) -> List[Finding]`` method, registered via
:func:`register_checker` (mirroring the scheme/sampler/workload registries
elsewhere in the repo).  :func:`run_checkers` runs a selection of them over
a parsed :class:`~repro.analysis.project.Project`, applies the pragma
suppressions and returns the surviving findings sorted by location.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from .config import AnalysisConfig
from .findings import Finding
from .project import Project

_CHECKERS: Dict[str, Type] = {}


class Checker:
    """Base class; subclasses set ``name``/``description`` and ``check``."""

    name: str = ""
    description: str = ""

    def check(self, project: Project,
              config: AnalysisConfig) -> List[Finding]:
        raise NotImplementedError


def register_checker(cls: Type) -> Type:
    """Class decorator registering a checker under its ``name``."""
    if not getattr(cls, "name", ""):
        raise ValueError(f"checker {cls.__name__} needs a non-empty name")
    if cls.name in _CHECKERS:
        raise ValueError(f"duplicate checker name '{cls.name}'")
    _CHECKERS[cls.name] = cls
    return cls


def available_checkers() -> List[Tuple[str, str]]:
    """(name, description) for every registered checker, sorted by name."""
    _ensure_builtin_checkers()
    return sorted((cls.name, cls.description)
                  for cls in _CHECKERS.values())


def get_checker(name: str) -> Checker:
    _ensure_builtin_checkers()
    try:
        return _CHECKERS[name]()
    except KeyError:
        known = ", ".join(sorted(_CHECKERS))
        raise KeyError(f"unknown checker '{name}'; known: {known}") from None


def _ensure_builtin_checkers() -> None:
    # Imported lazily so `import repro.analysis.registry` never cycles with
    # the checker modules (which import Checker/register_checker from here).
    from . import checkers  # noqa: F401


def run_checkers(project: Project, config: Optional[AnalysisConfig] = None,
                 rules: Optional[Sequence[str]] = None
                 ) -> Tuple[List[Finding], int]:
    """Run checkers over ``project``; returns (findings, suppressed count).

    ``rules=None`` runs every registered checker.  Pragma-suppressed
    findings are dropped (counted), parse errors from project loading are
    prepended as ``syntax`` findings (never suppressible).
    """
    _ensure_builtin_checkers()
    config = config or AnalysisConfig()
    names = list(rules) if rules is not None else [name for name, _
                                                   in available_checkers()]
    raw: List[Finding] = []
    for name in names:
        raw.extend(get_checker(name).check(project, config))

    by_path = {module.rel_path: module for module in project.modules}
    findings: List[Finding] = list(project.errors)
    suppressed = 0
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.allows(finding.rule, finding.line):
            suppressed += 1
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return findings, suppressed

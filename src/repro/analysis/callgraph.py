"""Project-wide call graph built from per-module, cacheable fact summaries.

Two layers, split on purpose:

* :class:`ModuleSummary` — everything the interprocedural rules need to
  know about one file, extracted in a single AST walk and fully
  JSON-serializable.  Because a summary depends only on its own file's
  bytes, the fact cache (:mod:`repro.analysis.cache`) can key it on the
  content sha256 and warm runs never re-parse unchanged files.
* :class:`CallGraph` — summaries stitched together: local call descriptors
  resolved to project-wide function ids (``repro.zoo.registry.load_pretrained``),
  following package ``__init__`` re-exports and ``self.method`` dispatch.

Resolution is deliberately conservative: a call through a value we cannot
type (``stage.fn(...)``, ``self.sampler.sample(...)``) produces *no* edge.
Under-approximating the graph means every interprocedural finding sits on
a witnessed chain of resolved calls — which is what lets the CI gate stay
hard with no false positives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .imports import import_map, resolve_attribute
from .project import Module, Project

#: Bump to invalidate every cached summary when extraction logic changes.
SUMMARY_VERSION = 1

#: Qualname of the pseudo-function holding module-level facts.
MODULE_SCOPE = "<module>"

#: Callables whose mere presence breaks a determinism contract.  These are
#: the canonical sets — the determinism checker re-exports them.
WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Process-global RNG entry points (shared hidden state).
GLOBAL_RNG = frozenset(
    {f"random.{name}" for name in (
        "random", "randint", "randrange", "uniform", "gauss",
        "normalvariate", "shuffle", "choice", "choices", "sample", "seed",
        "getrandbits", "betavariate", "expovariate", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate")}
    | {f"numpy.random.{name}" for name in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "standard_normal", "normal", "uniform", "choice",
        "shuffle", "permutation", "get_state", "set_state")})

#: RNG factories that are fine seeded and flagged when called with no
#: arguments.
SEEDABLE_FACTORIES = frozenset({
    "numpy.random.default_rng", "random.Random", "numpy.random.RandomState",
})

#: numpy entry points that materialize a fresh ndarray per call.
NDARRAY_ALLOCATORS = {
    "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
    "numpy.zeros_like", "numpy.ones_like", "numpy.empty_like",
    "numpy.full_like", "numpy.array", "numpy.asarray", "numpy.copy",
    "numpy.arange", "numpy.linspace", "numpy.concatenate", "numpy.stack",
    "numpy.tile", "numpy.repeat", "numpy.meshgrid",
}

#: methods that return a fresh array from any receiver.
ALLOCATING_METHODS = {"copy", "astype", "flatten", "tolist", "repeat"}

#: container methods that mutate their receiver in place.
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "move_to_end", "appendleft",
}

_SCHEMA_TAG_RE = re.compile(r"[A-Za-z_][\w.]*/v\d+\Z")


# ----------------------------------------------------------------------
# summary data model (all dataclasses JSON-round-trip via asdict)
# ----------------------------------------------------------------------
@dataclass
class CallSite:
    """One call expression, with enough context for every rule."""

    target: Optional[str]        # import-resolved dotted name, or None
    self_method: Optional[str]   # "m" when the call is ``self.m(...)``
    line: int
    col: int
    in_loop: bool = False
    under_inference: bool = False
    guarded: bool = False        # inside an ``if x is not None:`` body

    @classmethod
    def from_dict(cls, data: Dict) -> "CallSite":
        return cls(**data)


@dataclass
class FactRef:
    """A wall-clock / global-RNG / factory reference at a location."""

    dotted: str
    line: int
    col: int
    in_default: bool = False     # appears in a signature default

    @classmethod
    def from_dict(cls, data: Dict) -> "FactRef":
        return cls(**data)


@dataclass
class Mutation:
    """A write to module-global (or module-global-object) state."""

    kind: str        # "rebind" | "subscript" | "method" | "attr"
    target: str      # the module-global name being written
    detail: str      # method / attribute involved, for the message
    line: int
    col: int
    locked: bool = False   # lexically under ``with <known lock>:``

    @classmethod
    def from_dict(cls, data: Dict) -> "Mutation":
        return cls(**data)


@dataclass
class Alloc:
    """An allocation site relevant to the hot-path rule."""

    kind: str        # "ndarray" | "method" | "tensor" | "closure"
    name: str        # dotted callee, ".method" or "lambda"/"def"/"comprehension"
    line: int
    col: int
    in_loop: bool = False
    under_inference: bool = False
    guarded: bool = False

    @classmethod
    def from_dict(cls, data: Dict) -> "Alloc":
        return cls(**data)


@dataclass
class FunctionSummary:
    """Per-function facts; ``qualname`` is dotted within the module."""

    qualname: str
    line: int
    end_line: int
    hot: bool = False
    has_loop: bool = False
    calls: List[CallSite] = field(default_factory=list)
    spawns: List[CallSite] = field(default_factory=list)
    clocks: List[FactRef] = field(default_factory=list)
    rngs: List[FactRef] = field(default_factory=list)
    factories: List[FactRef] = field(default_factory=list)
    mutations: List[Mutation] = field(default_factory=list)
    allocs: List[Alloc] = field(default_factory=list)

    @classmethod
    def from_dict(cls, data: Dict) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"], line=data["line"],
            end_line=data["end_line"], hot=data["hot"],
            has_loop=data["has_loop"],
            calls=[CallSite.from_dict(d) for d in data["calls"]],
            spawns=[CallSite.from_dict(d) for d in data["spawns"]],
            clocks=[FactRef.from_dict(d) for d in data["clocks"]],
            rngs=[FactRef.from_dict(d) for d in data["rngs"]],
            factories=[FactRef.from_dict(d) for d in data["factories"]],
            mutations=[Mutation.from_dict(d) for d in data["mutations"]],
            allocs=[Alloc.from_dict(d) for d in data["allocs"]])


@dataclass
class SchemaTag:
    """A ``family/vN`` string literal occurrence."""

    value: str
    line: int
    col: int

    @classmethod
    def from_dict(cls, data: Dict) -> "SchemaTag":
        return cls(**data)


@dataclass
class ModuleSummary:
    """Everything the interprocedural rules know about one file."""

    module_name: str
    pkg_path: str
    rel_path: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: module-global name -> "lock" | "thread_local" | "mutable" | "other"
    globals: Dict[str, str] = field(default_factory=dict)
    #: local alias -> dotted name (the module's import map)
    imports: Dict[str, str] = field(default_factory=dict)
    schema_tags: List[SchemaTag] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ModuleSummary":
        return cls(
            module_name=data["module_name"], pkg_path=data["pkg_path"],
            rel_path=data["rel_path"],
            functions={name: FunctionSummary.from_dict(d)
                       for name, d in data["functions"].items()},
            globals=dict(data["globals"]), imports=dict(data["imports"]),
            schema_tags=[SchemaTag.from_dict(d)
                         for d in data["schema_tags"]])


# ----------------------------------------------------------------------
# summary extraction (one AST walk per file)
# ----------------------------------------------------------------------
def _classify_global(node: ast.AST, mapping: Dict[str, str]) -> str:
    """Classification of a module-level assignment's right-hand side."""
    if isinstance(node, ast.Call):
        dotted = resolve_attribute(node.func, mapping)
        if dotted in ("threading.Lock", "threading.RLock"):
            return "lock"
        if dotted == "threading.local":
            return "thread_local"
        if dotted in ("dict", "list", "set", "collections.OrderedDict",
                      "collections.defaultdict", "collections.deque",
                      "collections.Counter"):
            return "mutable"
        return "other"
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return "mutable"
    return "other"


def _is_none_guard(test: ast.AST) -> bool:
    """``x is not None`` / ``x.y is not None`` — a feature-off guard."""
    return (isinstance(test, ast.Compare)
            and len(test.ops) == 1 and isinstance(test.ops[0], ast.IsNot)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and isinstance(test.left, (ast.Name, ast.Attribute)))


class _FunctionWalker(ast.NodeVisitor):
    """Collect one function's facts, tracking loop/with/if context."""

    def __init__(self, summary: FunctionSummary, mapping: Dict[str, str],
                 module_globals: Dict[str, str], lock_attrs: Set[str],
                 inference_names: Set[str]):
        self.s = summary
        self.mapping = mapping
        self.module_globals = module_globals
        self.lock_attrs = lock_attrs
        self.inference_names = inference_names
        self.loop_depth = 0
        self.inference_depth = 0
        self.lock_depth = 0
        self.guard_depth = 0
        self.global_names: Set[str] = set()

    # -- context helpers -------------------------------------------------
    def _ref(self, dotted: str, node: ast.AST,
             in_default: bool = False) -> FactRef:
        return FactRef(dotted=dotted, line=node.lineno, col=node.col_offset,
                       in_default=in_default)

    def _record_name_facts(self, node: ast.AST, in_default: bool) -> None:
        dotted = resolve_attribute(node, self.mapping)
        if dotted is None:
            return
        if dotted in WALL_CLOCKS:
            self.s.clocks.append(self._ref(dotted, node, in_default))
        elif dotted in GLOBAL_RNG:
            self.s.rngs.append(self._ref(dotted, node, in_default))

    def _mutation(self, kind: str, target: str, detail: str,
                  node: ast.AST) -> None:
        self.s.mutations.append(Mutation(
            kind=kind, target=target, detail=detail,
            line=node.lineno, col=node.col_offset,
            locked=self.lock_depth > 0))

    def _alloc(self, kind: str, name: str, node: ast.AST) -> None:
        self.s.allocs.append(Alloc(
            kind=kind, name=name, line=node.lineno, col=node.col_offset,
            in_loop=self.loop_depth > 0,
            under_inference=self.inference_depth > 0,
            guarded=self.guard_depth > 0))

    def _global_name(self, node: ast.AST) -> Optional[str]:
        """Module-global name a Name node denotes (approximate)."""
        if isinstance(node, ast.Name) and node.id in self.module_globals:
            return node.id
        return None

    # -- structure -------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested def in a loop body is a per-iteration closure.
        if self.loop_depth > 0:
            self._alloc("closure", f"def {node.name}", node)
        # Do not descend: nested functions get their own summaries.

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # nested classes are out of scope

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if self.loop_depth > 0:
            self._alloc("closure", "lambda", node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        for target in [node.target]:
            self.visit(target)
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)
        self.s.has_loop = True

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)
        self.s.has_loop = True

    def visit_With(self, node: ast.With) -> None:
        entered_inference = entered_lock = False
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                dotted = resolve_attribute(expr.func, self.mapping)
                if dotted and dotted.split(".")[-1] in self.inference_names:
                    entered_inference = True
            target = expr.func if isinstance(expr, ast.Call) else expr
            if isinstance(target, ast.Name):
                if self.module_globals.get(target.id) == "lock":
                    entered_lock = True
            elif (isinstance(target, ast.Attribute)
                  and isinstance(target.value, ast.Name)
                  and target.value.id == "self"
                  and target.attr in self.lock_attrs):
                entered_lock = True
            self.visit(expr)
        self.inference_depth += int(entered_inference)
        self.lock_depth += int(entered_lock)
        for stmt in node.body:
            self.visit(stmt)
        self.inference_depth -= int(entered_inference)
        self.lock_depth -= int(entered_lock)

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        entered_guard = _is_none_guard(node.test)
        self.guard_depth += int(entered_guard)
        for stmt in node.body:
            self.visit(stmt)
        self.guard_depth -= int(entered_guard)
        for stmt in node.orelse:
            self.visit(stmt)

    # -- facts -----------------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._visit_store_target(target, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit_store_target(node.target, node)
        self.visit(node.value)

    def _visit_store_target(self, target: ast.AST, stmt: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_names:
                self._mutation("rebind", target.id, "global rebinding", stmt)
        elif isinstance(target, ast.Subscript):
            name = self._global_name(target.value)
            if name is not None:
                self._mutation("subscript", name, "item assignment", stmt)
            self.visit(target.value)
            self.visit(target.slice)
        elif isinstance(target, ast.Attribute):
            name = self._global_name(target.value)
            if name is not None:
                self._mutation("attr", name,
                               f"attribute '{target.attr}'", stmt)
            self.visit(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_store_target(element, stmt)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = resolve_attribute(node.func, self.mapping)
        self_method = None
        if (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            self_method = node.func.attr
        site = CallSite(target=dotted, self_method=self_method,
                        line=node.lineno, col=node.col_offset,
                        in_loop=self.loop_depth > 0,
                        under_inference=self.inference_depth > 0,
                        guarded=self.guard_depth > 0)
        self.s.calls.append(site)

        if dotted is not None:
            # clock/RNG *references* are recorded by the Name/Attribute
            # visit of node.func below — recording them here too would
            # double-count every direct call.
            if dotted in SEEDABLE_FACTORIES and not node.args \
                    and not node.keywords:
                self.s.factories.append(self._ref(dotted, node))
            if dotted in NDARRAY_ALLOCATORS:
                self._alloc("ndarray", dotted, node)

        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if dotted is None and method in ALLOCATING_METHODS:
                self._alloc("method", f".{method}", node)
            if method in MUTATING_METHODS:
                name = self._global_name(node.func.value)
                if name is not None:
                    self._mutation("method", name, f".{method}()", node)
            if method == "submit" and node.args:
                spawned = node.args[0]
                spawn_target = resolve_attribute(spawned, self.mapping)
                spawn_self = None
                if (isinstance(spawned, ast.Attribute)
                        and isinstance(spawned.value, ast.Name)
                        and spawned.value.id == "self"):
                    spawn_self = spawned.attr
                self.s.spawns.append(CallSite(
                    target=spawn_target, self_method=spawn_self,
                    line=node.lineno, col=node.col_offset))

        self.visit(node.func)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._record_name_facts(node, in_default=False)
        # Facts fire once per full chain, but a non-Name base (a call, a
        # subscript) still needs visiting: ``datetime.now().isoformat()``.
        base: ast.AST = node
        while isinstance(base, ast.Attribute):
            base = base.value
        if not isinstance(base, ast.Name):
            self.visit(base)

    def visit_Name(self, node: ast.Name) -> None:
        self._record_name_facts(node, in_default=False)


def _class_lock_attrs(node: ast.ClassDef, mapping: Dict[str, str]) -> Set[str]:
    """``self.<attr>`` names assigned ``threading.Lock()`` in this class."""
    attrs: Set[str] = set()
    for item in ast.walk(node):
        if not isinstance(item, ast.Assign) or not isinstance(item.value,
                                                              ast.Call):
            continue
        dotted = resolve_attribute(item.value.func, mapping)
        if dotted not in ("threading.Lock", "threading.RLock"):
            continue
        for target in item.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                attrs.add(target.attr)
    return attrs


def summarize_module(module: Module) -> ModuleSummary:
    """Extract the per-file fact summary (parses the AST if deferred)."""
    mapping = import_map(module)
    summary = ModuleSummary(module_name=module.module_name,
                            pkg_path=module.pkg_path,
                            rel_path=module.rel_path,
                            imports=dict(mapping))

    inference_names = {"inference_mode", "no_grad"}
    for name, dotted in mapping.items():
        if dotted.split(".")[-1] in ("inference_mode", "no_grad"):
            inference_names.add(name)

    # module-global classification
    for stmt in module.tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name):
                summary.globals[target.id] = _classify_global(value, mapping)

    # schema-tag literals anywhere in the file
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Constant) and isinstance(node.value, str)
                and _SCHEMA_TAG_RE.match(node.value)):
            summary.schema_tags.append(SchemaTag(
                value=node.value, line=node.lineno, col=node.col_offset))

    # function summaries (methods and nested defs get dotted qualnames);
    # nested defs are found anywhere in a function body (stage closures
    # are routinely defined inside loops), not just at the top level.
    def walk_scope(body: List[ast.stmt], prefix: str,
                   lock_attrs: Set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                attrs = _class_lock_attrs(stmt, mapping)
                walk_scope(stmt.body, f"{prefix}{stmt.name}.", attrs)
            elif not isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                for child_body in (getattr(stmt, "body", None),
                                   getattr(stmt, "orelse", None),
                                   getattr(stmt, "finalbody", None)):
                    if child_body:
                        walk_scope(child_body, prefix, lock_attrs)
                for handler in getattr(stmt, "handlers", ()) or ():
                    walk_scope(handler.body, prefix, lock_attrs)
            else:
                qualname = f"{prefix}{stmt.name}"
                fn = FunctionSummary(
                    qualname=qualname, line=stmt.lineno,
                    end_line=getattr(stmt, "end_lineno", stmt.lineno) or
                    stmt.lineno,
                    hot=module.is_hot(stmt.lineno))
                walker = _FunctionWalker(fn, mapping, summary.globals,
                                         lock_attrs, inference_names)
                # signature defaults first, marked as such
                for default in (list(stmt.args.defaults)
                                + [d for d in stmt.args.kw_defaults if d]):
                    for node in ast.walk(default):
                        if isinstance(node, (ast.Name, ast.Attribute)):
                            dotted = resolve_attribute(node, mapping)
                            if dotted in WALL_CLOCKS:
                                fn.clocks.append(FactRef(
                                    dotted, node.lineno, node.col_offset,
                                    in_default=True))
                            elif dotted in GLOBAL_RNG:
                                fn.rngs.append(FactRef(
                                    dotted, node.lineno, node.col_offset,
                                    in_default=True))
                # first pass: collect `global` declarations so rebinds
                # anywhere in the body are classified correctly
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Global):
                        walker.global_names.update(inner.names)
                for inner in stmt.body:
                    walker.visit(inner)
                summary.functions[qualname] = fn
                walk_scope(stmt.body, f"{qualname}.", lock_attrs)

    walk_scope(module.tree.body, "", set())

    # Module-level statements get a pseudo-function summary so top-level
    # clock/RNG facts are not lost.  ``end_line=0`` keeps it out of every
    # line-range ("enclosing symbol") lookup, and the rules that reason
    # about runtime behavior (races, hot paths) skip it by name: import
    # time is single-threaded by definition.
    top = FunctionSummary(qualname=MODULE_SCOPE, line=1, end_line=0)
    top_walker = _FunctionWalker(top, mapping, summary.globals, set(),
                                 inference_names)
    for stmt in module.tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            top_walker.visit(stmt)
    summary.functions[MODULE_SCOPE] = top
    return summary


# ----------------------------------------------------------------------
# graph construction
# ----------------------------------------------------------------------
class CallGraph:
    """Summaries stitched into a project-wide resolved call graph.

    Function ids are ``"<module_name>.<qualname>"`` strings.  ``edges``
    maps a caller id to ``[(callee_id, CallSite), ...]`` for every call we
    could resolve; ``spawn_edges`` does the same for executor ``submit``
    arguments (the worker seeds of the thread-context lattice).
    """

    def __init__(self, summaries: Dict[str, ModuleSummary]):
        self.summaries = summaries
        self.functions: Dict[str, Tuple[ModuleSummary, FunctionSummary]] = {}
        for summary in summaries.values():
            for qualname, fn in summary.functions.items():
                self.functions[f"{summary.module_name}.{qualname}"] = (
                    summary, fn)
        self._module_names = sorted(summaries, key=len, reverse=True)
        self.edges: Dict[str, List[Tuple[str, CallSite]]] = {}
        self.spawn_edges: Dict[str, List[Tuple[str, CallSite]]] = {}
        self._build()

    # -- resolution ------------------------------------------------------
    def resolve_dotted(self, dotted: str,
                       _depth: int = 0) -> Optional[str]:
        """Function id for an import-resolved dotted name, if in-project."""
        if _depth > 8:
            return None
        for module_name in self._module_names:
            if dotted == module_name or not dotted.startswith(
                    module_name + "."):
                continue
            summary = self.summaries[module_name]
            remainder = dotted[len(module_name) + 1:]
            if remainder in summary.functions:
                return f"{module_name}.{remainder}"
            head = remainder.split(".")[0]
            reexport = summary.imports.get(head)
            if reexport is not None:
                tail = remainder[len(head):]
                return self.resolve_dotted(reexport + tail, _depth + 1)
            # ``Class.method`` where only ``Class`` is re-exported is
            # covered by the branch above; an unresolved remainder means
            # a dynamic attribute we refuse to guess about.
            return None
        return None

    def resolve_site(self, caller_id: str,
                     site: CallSite) -> Optional[str]:
        """Resolve one call site from a given caller, or None."""
        summary, _ = self.functions[caller_id]
        if site.self_method is not None:
            qualname = self.functions[caller_id][1].qualname
            if "." in qualname:
                class_prefix = qualname.rsplit(".", 1)[0]
                candidate = (f"{summary.module_name}."
                             f"{class_prefix}.{site.self_method}")
                if candidate in self.functions:
                    return candidate
            return None
        if site.target is None:
            return None
        # A bare name defined in the same module wins over imports
        # (import_map already folded imported names to dotted paths).
        if "." not in site.target and site.target in summary.functions:
            return f"{summary.module_name}.{site.target}"
        # ``Class(...)`` constructor calls: route to ``Class.__init__``.
        resolved = self.resolve_dotted(site.target)
        if resolved is None:
            init = self.resolve_dotted(site.target + ".__init__")
            return init
        return resolved

    def _build(self) -> None:
        for func_id, (_, fn) in self.functions.items():
            resolved = []
            for site in fn.calls:
                callee = self.resolve_site(func_id, site)
                if callee is not None:
                    resolved.append((callee, site))
            if resolved:
                self.edges[func_id] = resolved
            spawned = []
            for site in fn.spawns:
                callee = self.resolve_site(func_id, site)
                if callee is not None:
                    spawned.append((callee, site))
            if spawned:
                self.spawn_edges[func_id] = spawned

    # -- convenience -----------------------------------------------------
    def callees(self, func_id: str) -> List[Tuple[str, CallSite]]:
        return self.edges.get(func_id, [])

    def function(self, func_id: str) -> Optional[FunctionSummary]:
        entry = self.functions.get(func_id)
        return entry[1] if entry else None

    def module_of(self, func_id: str) -> Optional[ModuleSummary]:
        entry = self.functions.get(func_id)
        return entry[0] if entry else None


# ----------------------------------------------------------------------
# per-run context shared by the interprocedural checkers
# ----------------------------------------------------------------------
class AnalysisContext:
    """Summaries + call graph for one run, built once and shared."""

    def __init__(self, summaries: Dict[str, ModuleSummary],
                 graph: CallGraph, cache_hits: int = 0,
                 cache_misses: int = 0):
        self.summaries = summaries
        self.graph = graph
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses

    @classmethod
    def build(cls, project: Project, cache=None) -> "AnalysisContext":
        """Summarize every module, consulting ``cache`` when provided."""
        summaries: Dict[str, ModuleSummary] = {}
        hits = misses = 0
        for module in project.modules:
            cached = cache.load_summary(module) if cache else None
            if cached is not None:
                summaries[module.module_name] = cached
                hits += 1
            else:
                summary = summarize_module(module)
                summaries[module.module_name] = summary
                if cache:
                    cache.store_summary(module, summary)
                misses += 1
        graph = CallGraph(summaries)
        return cls(summaries, graph, cache_hits=hits, cache_misses=misses)


def get_context(project: Project, cache=None) -> AnalysisContext:
    """Build (or reuse) the project's interprocedural context."""
    if project._context is None:
        project._context = AnalysisContext.build(project, cache)
    return project._context

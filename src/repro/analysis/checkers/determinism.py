"""Rule ``determinism``: no ambient time or entropy in virtual-time modules.

The serving tier, the cluster simulator, the experiment stage builders and
the sampler loops are all asserted byte-identical across same-seed runs in
CI.  That guarantee holds exactly as long as none of that code reads a wall
clock or an unseeded RNG: a single ``time.time()`` turns a reproducible
10^6-request cluster report into a flaky one, and an unseeded
``default_rng()`` silently decouples an artifact from its content key.

What is flagged, in modules the config declares virtual-time:

* any *use* of a wall-clock callable (``time.time``, ``time.monotonic``,
  ``time.perf_counter`` and friends, ``datetime.now``/``utcnow``/``today``)
  — referencing one is as bad as calling it, since storing it in a
  variable or passing it as an argument reintroduces ambient time;
* any use of the process-global RNG APIs (``random.random``,
  ``np.random.rand``, ``np.random.seed``, ...), whose state is shared
  mutable ambience by construction;
* calling an RNG *factory* with no seed (``np.random.default_rng()``,
  ``random.Random()``).

The one sanctioned position is a **function-signature default**
(``def __init__(self, clock=time.perf_counter)``): that is the
clock-injection idiom — ambient time may only enter through a parameter a
caller can override with a :class:`~repro.serving.clock.VirtualClock`.
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..config import AnalysisConfig
from ..findings import Finding
from ..imports import import_map, resolve_attribute
from ..project import Module, Project
from ..registry import Checker, register_checker

#: Callables whose mere presence in a virtual-time module breaks the
#: determinism contract.
WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Process-global RNG entry points (shared hidden state).
GLOBAL_RNG = frozenset(
    {f"random.{name}" for name in (
        "random", "randint", "randrange", "uniform", "gauss",
        "normalvariate", "shuffle", "choice", "choices", "sample", "seed",
        "getrandbits", "betavariate", "expovariate", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate")}
    | {f"numpy.random.{name}" for name in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "standard_normal", "normal", "uniform", "choice",
        "shuffle", "permutation", "get_state", "set_state")})

#: RNG factories that are fine seeded and flagged when called with no
#: arguments.
SEEDABLE_FACTORIES = frozenset({
    "numpy.random.default_rng", "random.Random", "numpy.random.RandomState",
})


@register_checker
class DeterminismChecker(Checker):
    name = "determinism"
    description = ("virtual-time modules must not read wall clocks or "
                   "unseeded/global RNG (signature defaults excepted)")

    def check(self, project: Project,
              config: AnalysisConfig) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            if not config.is_virtual_time(module.pkg_path):
                continue
            findings.extend(self._check_module(module))
        return findings

    # ------------------------------------------------------------------
    def _check_module(self, module: Module) -> List[Finding]:
        mapping = import_map(module)
        findings: List[Finding] = []
        default_nodes = _signature_default_nodes(module.tree)

        for node, symbol in _walk_with_symbols(module.tree):
            if id(node) in default_nodes:
                continue
            if isinstance(node, (ast.Attribute, ast.Name)):
                # Only report the *outermost* attribute chain; the walk
                # revisits inner nodes, which the dotted-name check skips
                # because partial chains don't resolve to forbidden names.
                dotted = resolve_attribute(node, mapping)
                if dotted is None:
                    continue
                if dotted in WALL_CLOCKS:
                    findings.append(self._finding(
                        module, node, symbol,
                        f"wall-clock '{dotted}' used in a virtual-time "
                        f"module; inject a clock parameter instead"))
                elif dotted in GLOBAL_RNG:
                    findings.append(self._finding(
                        module, node, symbol,
                        f"process-global RNG '{dotted}' used in a "
                        f"virtual-time module; pass a seeded Generator"))
            elif isinstance(node, ast.Call):
                dotted = resolve_attribute(node.func, mapping)
                if (dotted in SEEDABLE_FACTORIES and not node.args
                        and not node.keywords):
                    findings.append(self._finding(
                        module, node, symbol,
                        f"unseeded '{dotted}()' in a virtual-time module; "
                        f"derive the seed from the stage inputs/config"))
        return findings

    @staticmethod
    def _finding(module: Module, node: ast.AST, symbol: str,
                 message: str) -> Finding:
        return Finding(rule="determinism", path=module.rel_path,
                       line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0),
                       message=message, symbol=symbol or None)


# ----------------------------------------------------------------------
# AST helpers (shared shape with the other checkers, kept local for
# readability — each checker reads top to bottom on its own)
# ----------------------------------------------------------------------
def _signature_default_nodes(tree: ast.Module) -> Set[int]:
    """ids of every node inside a function-signature default expression."""
    allowed: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None]
            for default in defaults:
                for child in ast.walk(default):
                    allowed.add(id(child))
    return allowed


def _walk_with_symbols(tree: ast.Module):
    """Yield (node, enclosing qualname) over the whole module."""

    def visit(node: ast.AST, qualname: str):
        for child in ast.iter_child_nodes(node):
            child_qualname = qualname
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_qualname = (f"{qualname}.{child.name}"
                                  if qualname else child.name)
            yield child, child_qualname
            yield from visit(child, child_qualname)

    yield from visit(tree, "")

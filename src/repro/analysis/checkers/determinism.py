"""Rule ``determinism``: no ambient time or entropy in virtual-time code.

The serving tier, the cluster simulator, the experiment stage builders and
the sampler loops are all asserted byte-identical across same-seed runs in
CI.  That guarantee holds exactly as long as none of that code reads a wall
clock or an unseeded RNG: a single ``time.time()`` turns a reproducible
10^6-request cluster report into a flaky one, and an unseeded
``default_rng()`` silently decouples an artifact from its content key.

The rule has two layers, both driven by the per-module fact summaries and
the project call graph (:mod:`repro.analysis.callgraph`):

**Local facts** — in modules the config declares virtual-time:

* any *use* of a wall-clock callable (``time.time``, ``time.monotonic``,
  ``time.perf_counter`` and friends, ``datetime.now``/``utcnow``/``today``)
  — referencing one is as bad as calling it, since storing it in a
  variable or passing it as an argument reintroduces ambient time;
* any use of the process-global RNG APIs (``random.random``,
  ``np.random.rand``, ``np.random.seed``, ...), whose state is shared
  mutable ambience by construction;
* calling an RNG *factory* with no seed (``np.random.default_rng()``,
  ``random.Random()``).

**Interprocedural taint** — a call site in a virtual-time module whose
resolved callee *transitively* reaches a wall-clock or global-RNG read is
flagged at the call site, with the witnessed chain in the message
(``reaches wall-clock 'time.time' via stats.flush -> util.stamp``).  The
taint stops at the configured clock-boundary modules (their job is to own
the real clock behind injectable parameters) and at callees that are
themselves virtual-time (their reads are already local findings at the
precise line).

The one sanctioned position is a **function-signature default**
(``def __init__(self, clock=time.perf_counter)``): that is the
clock-injection idiom — ambient time may only enter through a parameter a
caller can override with a :class:`~repro.serving.clock.VirtualClock`.
"""

from __future__ import annotations

from typing import Dict, List

# Canonical fact sets live with the summary extractor; re-exported here
# because this checker is their natural documentation home.
from ..callgraph import (GLOBAL_RNG, MODULE_SCOPE, SEEDABLE_FACTORIES,
                         WALL_CLOCKS, ModuleSummary, get_context)
from ..config import AnalysisConfig
from ..dataflow import TaintStep, propagate_taint, witness_chain
from ..findings import Finding
from ..project import Project
from ..registry import Checker, register_checker

__all__ = ["DeterminismChecker", "WALL_CLOCKS", "GLOBAL_RNG",
           "SEEDABLE_FACTORIES"]


@register_checker
class DeterminismChecker(Checker):
    name = "determinism"
    description = ("virtual-time modules must not read wall clocks or "
                   "unseeded/global RNG, directly or through callees "
                   "(signature defaults excepted)")
    needs_context = True

    def check(self, project: Project,
              config: AnalysisConfig) -> List[Finding]:
        context = get_context(project)
        graph = context.graph
        findings: List[Finding] = []

        # ---- local facts in virtual-time modules ----------------------
        for module_name in sorted(context.summaries):
            summary = context.summaries[module_name]
            if not config.is_virtual_time(summary.pkg_path):
                continue
            for qualname in sorted(summary.functions):
                fn = summary.functions[qualname]
                symbol = None if qualname == MODULE_SCOPE else qualname
                for ref in fn.clocks:
                    if ref.in_default:
                        continue
                    findings.append(self._finding(
                        summary, ref, symbol,
                        f"wall-clock '{ref.dotted}' used in a virtual-time "
                        f"module; inject a clock parameter instead"))
                for ref in fn.rngs:
                    if ref.in_default:
                        continue
                    findings.append(self._finding(
                        summary, ref, symbol,
                        f"process-global RNG '{ref.dotted}' used in a "
                        f"virtual-time module; pass a seeded Generator"))
                for ref in fn.factories:
                    findings.append(self._finding(
                        summary, ref, symbol,
                        f"unseeded '{ref.dotted}()' in a virtual-time "
                        f"module; derive the seed from the stage "
                        f"inputs/config"))

        # ---- interprocedural taint ------------------------------------
        def is_boundary(func_id: str) -> bool:
            summary = graph.module_of(func_id)
            return summary is None or self._is_clock_boundary(
                summary.pkg_path, config)

        local: Dict[str, TaintStep] = {}
        for func_id in sorted(graph.functions):
            fn = graph.function(func_id)
            facts = ([(ref.line, f"wall-clock '{ref.dotted}'")
                      for ref in fn.clocks if not ref.in_default]
                     + [(ref.line, f"global RNG '{ref.dotted}'")
                        for ref in fn.rngs if not ref.in_default])
            if facts:
                line, fact = min(facts)
                local[func_id] = TaintStep(fact=fact, via="", line=line)

        tainted = propagate_taint(graph, local, stop=is_boundary)

        for func_id in sorted(graph.functions):
            summary = graph.module_of(func_id)
            if not config.is_virtual_time(summary.pkg_path):
                continue
            fn = graph.function(func_id)
            symbol = (None if fn.qualname == MODULE_SCOPE
                      else fn.qualname)
            for callee, site in graph.callees(func_id):
                callee_summary = graph.module_of(callee)
                if callee in tainted and not config.is_virtual_time(
                        callee_summary.pkg_path):
                    chain = witness_chain(tainted, callee)
                    findings.append(Finding(
                        rule=self.name, path=summary.rel_path,
                        line=site.line, col=site.col, symbol=symbol,
                        message=(f"call into "
                                 f"'{_short(callee)}' reaches "
                                 f"{' -> '.join(chain)} outside this "
                                 f"virtual-time module; inject a clock/"
                                 f"seeded Generator through the call "
                                 f"instead")))
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _is_clock_boundary(pkg_path: str, config: AnalysisConfig) -> bool:
        from ..config import _matches
        return _matches(pkg_path, config.clock_boundaries)

    @staticmethod
    def _finding(summary: ModuleSummary, ref, symbol,
                 message: str) -> Finding:
        return Finding(rule="determinism", path=summary.rel_path,
                       line=ref.line, col=ref.col,
                       message=message, symbol=symbol)


def _short(func_id: str) -> str:
    return ".".join(func_id.split(".")[-2:])

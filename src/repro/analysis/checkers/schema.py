"""Rule ``schema-discipline``: JSON report formats have one home.

Every artifact the repo emits — traces, metrics snapshots, calibration
and cluster reports, bench reports, this analyzer's own report — carries
a ``family/vN`` schema tag that EXPERIMENTS.md documents and CI smoke
jobs assert against.  The drift mode: a writer spells the tag inline, a
reader spells it slightly differently, and the docs cover a third
spelling.  This rule pins every tag literal to the central registry
(:mod:`repro.schemas` — see ``AnalysisConfig.schema_registry_module``):

* inside the registry module, literals are the definitions — allowed;
* anywhere else under ``src/``, a ``family/vN`` string literal is a
  finding: import the registered constant instead, and validate outbound
  documents with ``repro.schemas.validate_document``.

The tag grammar is deliberately tight (``name[.name]*/v<digits>``), so
URL paths and version strings like ``"1.2/3"`` never match.  A tag that
genuinely is not a schema (say, a test fixture) takes a reasoned
``# repro: allow[schema-discipline]`` pragma.
"""

from __future__ import annotations

from typing import List

from ..callgraph import get_context
from ..config import AnalysisConfig
from ..findings import Finding
from ..project import Project
from ..registry import Checker, register_checker


@register_checker
class SchemaDisciplineChecker(Checker):
    name = "schema-discipline"
    description = ("'family/vN' schema tags must come from the central "
                   "registry module, not inline string literals")
    needs_context = True

    def check(self, project: Project,
              config: AnalysisConfig) -> List[Finding]:
        context = get_context(project)
        registry = config.schema_registry_module
        findings: List[Finding] = []
        for module_name in sorted(context.summaries):
            if module_name == registry:
                continue
            summary = context.summaries[module_name]
            for tag in summary.schema_tags:
                if tag.value in config.schema_exempt_tags:
                    continue
                symbol = self._enclosing(summary, tag.line)
                findings.append(Finding(
                    rule=self.name, path=summary.rel_path,
                    line=tag.line, col=tag.col, symbol=symbol,
                    message=(f"schema tag '{tag.value}' spelled inline; "
                             f"import the registered constant from "
                             f"{registry} so the format cannot drift")))
        return findings

    @staticmethod
    def _enclosing(summary, line: int):
        best = None
        for qualname, fn in summary.functions.items():
            if fn.line <= line <= fn.end_line:
                if best is None or fn.line > summary.functions[best].line:
                    best = qualname
        return best

"""Rule ``race-discipline``: shared state touched from worker threads.

PR 5 made the experiment runner a thread pool and PR 6/7 grew serving and
telemetry code that runs under it.  The failure mode this rule exists for
is the quiet one: a module-global memo or registry written without a lock,
correct for years on the main thread, silently corrupted the day a stage
or an engine callback reaches it from a worker.

The thread-context lattice comes from the call graph: every function
handed to an executor ``submit`` (discovered from the AST) plus the
configured worker entry points (``AnalysisConfig.worker_entries``) seed a
forward reachability pass — everything in the closure is *worker-
reachable*.  Inside that set, any mutation of a module-global (rebinding
via ``global``, item assignment, mutating container method, attribute
write on a module-global object) must be

* lexically under a ``with`` on a recognizable ``threading.Lock`` (a
  module-global lock or a ``self._lock``-style attribute assigned in the
  class), or
* state that is ``threading.local`` by construction, or
* carry a reasoned ``# repro: allow[race-discipline]`` pragma.

Unresolvable dynamic calls produce no graph edges, so the worker set is an
under-approximation: every finding sits on a witnessed chain from a real
spawn point, which is what keeps the gate free of false positives.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import List

from ..callgraph import MODULE_SCOPE, get_context
from ..config import AnalysisConfig
from ..dataflow import reachable_from
from ..findings import Finding
from ..project import Project
from ..registry import Checker, register_checker


@register_checker
class RaceDisciplineChecker(Checker):
    name = "race-discipline"
    description = ("module-global mutations reachable from worker threads "
                   "must hold a lock or be threading.local")
    needs_context = True

    def check(self, project: Project,
              config: AnalysisConfig) -> List[Finding]:
        context = get_context(project)
        graph = context.graph

        seeds = set()
        for func_id, spawned in graph.spawn_edges.items():
            del func_id
            for callee, _ in spawned:
                seeds.add(callee)
        for func_id in graph.functions:
            # Module scope runs at import time, on one thread — never a seed.
            if func_id.endswith(f".{MODULE_SCOPE}"):
                continue
            if any(fnmatch(func_id, pattern)
                   for pattern in config.worker_entries):
                seeds.add(func_id)

        worker_reachable = reachable_from(graph, seeds)

        findings: List[Finding] = []
        for func_id in sorted(worker_reachable):
            summary = graph.module_of(func_id)
            fn = graph.function(func_id)
            if summary is None or fn is None:
                continue
            for mutation in fn.mutations:
                if mutation.locked:
                    continue
                kind = summary.globals.get(mutation.target, "other")
                if kind == "thread_local":
                    continue
                what = {
                    "rebind": "rebinds module global",
                    "subscript": "writes an item of module global",
                    "method": "mutates module global",
                    "attr": "writes an attribute of module global",
                }.get(mutation.kind, "mutates module global")
                findings.append(Finding(
                    rule=self.name, path=summary.rel_path,
                    line=mutation.line, col=mutation.col,
                    symbol=fn.qualname,
                    message=(f"worker-reachable code {what} "
                             f"'{mutation.target}' ({mutation.detail}) "
                             f"without holding a lock; guard it with a "
                             f"threading.Lock, make it threading.local, "
                             f"or annotate why it is safe")))
        return findings

"""Rule ``shim-drift``: legacy entry points must keep up with their
replacements.

The repo keeps backwards-compatible shims alive (the ``use_ddpm``
spellings over :class:`~repro.diffusion.plan.GenerationPlan`, the
pre-cluster serving batch path).  The failure mode is
well-known: the replacement grows a keyword (``tracer=``, ``use_cache=``),
the shim never learns it, and every legacy caller silently loses the
feature — or worse, passes it and gets a ``TypeError`` two layers deep.

For each configured :class:`~repro.analysis.config.ShimPair` the checker
resolves both callables in the parsed project and reports:

* a replacement parameter (minus the pair's ``exempt`` list) the shim
  neither declares nor can forward via ``**kwargs``;
* a shim parameter that is never referenced in the shim body — accepted
  and dropped on the floor, which is drift wearing a trench coat;
* a pair whose shim or replacement no longer resolves — the shim was
  removed but the config entry lingers (or a rename broke the pair).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from ..config import AnalysisConfig, ShimPair
from ..findings import Finding
from ..project import Module, Project
from ..registry import Checker, register_checker


def _resolve(project: Project,
             dotted: str) -> Optional[Tuple[Module, ast.FunctionDef, str]]:
    """Resolve ``pkg.module.func`` / ``pkg.module.Class.method``."""
    parts = dotted.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        module = project.module("repro." + ".".join(parts[:cut]))
        if module is None:
            continue
        remainder = parts[cut:]
        scope = module.tree.body
        qualname_parts: List[str] = []
        node: Optional[ast.AST] = None
        for i, name in enumerate(remainder):
            node = next((item for item in scope
                         if isinstance(item, (ast.FunctionDef,
                                              ast.AsyncFunctionDef,
                                              ast.ClassDef))
                         and item.name == name), None)
            if node is None:
                return None
            qualname_parts.append(name)
            if isinstance(node, ast.ClassDef) and i < len(remainder) - 1:
                scope = node.body
            elif i < len(remainder) - 1:
                return None
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return module, node, ".".join(qualname_parts)
        return None
    return None


def _parameters(func: ast.FunctionDef) -> Tuple[Set[str], bool]:
    """(named parameters minus self/cls, has **kwargs)."""
    args = func.args
    names = [arg.arg for arg in args.posonlyargs + args.args
             + args.kwonlyargs]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return set(names), args.kwarg is not None


@register_checker
class ShimDriftChecker(Checker):
    name = "shim-drift"
    description = ("legacy shims must accept (or **kwargs-forward) every "
                   "keyword of their replacement and use every parameter "
                   "they declare")

    def check(self, project: Project,
              config: AnalysisConfig) -> List[Finding]:
        findings: List[Finding] = []
        for pair in config.shim_pairs:
            findings.extend(self._check_pair(project, pair))
        return findings

    # ------------------------------------------------------------------
    def _check_pair(self, project: Project,
                    pair: ShimPair) -> List[Finding]:
        shim = _resolve(project, pair.shim)
        replacement = _resolve(project, pair.replacement)
        if shim is None and replacement is None:
            # Neither half is in the analyzed tree (partial run over a
            # subdirectory, or a fixture tree) — nothing to compare.
            return []
        if shim is None or replacement is None:
            # Exactly one half resolves: a rename/removal broke the pair.
            missing = pair.shim if shim is None else pair.replacement
            anchor = shim or replacement
            module, node, qualname = anchor
            return [Finding(
                rule="shim-drift", path=module.rel_path,
                line=node.lineno, col=node.col_offset,
                message=(f"shim pair {pair.shim} -> {pair.replacement}: "
                         f"'{missing}' does not resolve; fix or drop the "
                         f"config entry"),
                symbol=qualname)]

        shim_module, shim_node, shim_qualname = shim
        _, replacement_node, _ = replacement
        shim_params, has_kwargs = _parameters(shim_node)
        replacement_params, _ = _parameters(replacement_node)

        findings: List[Finding] = []
        if not has_kwargs:
            missing_params = sorted(
                replacement_params - set(pair.exempt) - shim_params)
            # *args/**kwargs of the replacement are not forwardable
            # keywords; ignore them.
            replacement_varargs = {
                arg.arg for arg in
                (replacement_node.args.vararg, replacement_node.args.kwarg)
                if arg is not None}
            missing_params = [name for name in missing_params
                              if name not in replacement_varargs]
            for name in missing_params:
                findings.append(Finding(
                    rule="shim-drift", path=shim_module.rel_path,
                    line=shim_node.lineno, col=shim_node.col_offset,
                    message=(f"shim '{shim_qualname}' does not accept "
                             f"keyword '{name}' of its replacement "
                             f"'{pair.replacement}'"),
                    symbol=shim_qualname))

        referenced = {node.id for node in ast.walk(shim_node)
                      if isinstance(node, ast.Name)}
        for name in sorted(shim_params - referenced):
            findings.append(Finding(
                rule="shim-drift", path=shim_module.rel_path,
                line=shim_node.lineno, col=shim_node.col_offset,
                message=(f"shim '{shim_qualname}' accepts '{name}' but "
                         f"never forwards it"),
                symbol=shim_qualname))
        return findings

"""Rule ``stage-purity``: stage-reachable code must not smuggle in hidden inputs.

Every experiment stage is cached under a content hash of its declared
inputs.  A function reachable from a stage's ``compute`` that reads a file,
an environment variable or mutable module-level state has an input the hash
does not cover — two runs with identical keys can produce different
artifacts, which silently poisons every downstream cache hit.

The checker walks a static call graph rooted at every function defined in
the configured stage-builder modules (``experiments/stages.py`` and
``experiments/variants.py`` — the ``compute``/``encode``/``decode``
closures live there), following:

* direct calls to names imported from project modules (through package
  ``__init__`` re-exports),
* constructor calls (into ``__init__``), ``self.method()`` calls, and
  method calls on locals whose class is known from a same-function
  constructor assignment (``pipeline = DiffusionPipeline(...);
  pipeline.generate(...)``).

Dynamic dispatch it cannot resolve is skipped — the walk under-approximates
so that every finding is real.  Inside reachable functions it flags:

* ``open()`` and filesystem helpers (``Path.write_text``, ``np.save``,
  ``pickle.dump``-style calls),
* ``os.environ`` / ``os.getenv`` reads,
* ``subprocess``/``socket`` use,
* ``global`` declarations and mutation of module-level mutable containers
  (the classic hidden-input shape: a module dict that remembers the last
  run).

Modules listed as *purity boundaries* (the RunStore API, atomic checkpoint
I/O, the content-keyed zoo cache) terminate the walk: their side effects
are keyed by the same content hashes as the stages themselves.  Pure
memoization caches keyed by all inputs can be annotated
``# repro: allow[stage-purity]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..config import AnalysisConfig
from ..findings import Finding
from ..imports import import_map, resolve_attribute
from ..project import Module, Project
from ..registry import Checker, register_checker

#: Attribute method names that mutate or read the filesystem on Path-likes.
FS_METHODS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes", "mkdir",
    "rmdir", "unlink", "touch", "symlink_to", "hardlink_to",
})

#: Dotted callables that do file or process I/O.
IO_CALLS = frozenset({
    "numpy.save", "numpy.load", "numpy.savez", "numpy.savez_compressed",
    "numpy.savetxt", "numpy.loadtxt", "pickle.dump", "pickle.load",
    "pickle.dumps",  # dumps is pure, but loads/dumps of live objects in a
                     # stage usually signals an escape hatch; kept visible.
    "json.dump", "json.load", "shutil.copy", "shutil.copyfile",
    "shutil.copytree", "shutil.move", "shutil.rmtree", "tempfile.mkdtemp",
    "tempfile.mkstemp",
})

#: Dotted prefixes that are never pure.
IMPURE_PREFIXES = ("subprocess.", "socket.", "urllib.", "http.")

#: Environment access (reads are as impure as writes: the value is an
#: undeclared stage input).
ENV_ACCESS = ("os.environ", "os.getenv", "os.putenv", "os.unsetenv")

#: Container methods that mutate their receiver.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear",
})


@dataclass
class _FuncInfo:
    """One function/method definition in the project."""

    module: Module
    qualname: str
    node: ast.AST                      # FunctionDef / AsyncFunctionDef
    class_name: Optional[str] = None   # owning class, for self.* resolution


@dataclass
class _ModuleIndex:
    """Per-module symbol table the resolver works against."""

    module: Module
    imports: Dict[str, str]
    functions: Dict[str, _FuncInfo] = field(default_factory=dict)
    classes: Dict[str, Dict[str, _FuncInfo]] = field(default_factory=dict)
    mutable_globals: Set[str] = field(default_factory=set)


def _index_module(module: Module) -> _ModuleIndex:
    index = _ModuleIndex(module=module, imports=import_map(module))
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions[node.name] = _FuncInfo(module, node.name, node)
        elif isinstance(node, ast.ClassDef):
            methods = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = _FuncInfo(
                        module, f"{node.name}.{item.name}", item,
                        class_name=node.name)
            index.classes[node.name] = methods
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            if _is_mutable_container(getattr(node, "value", None)):
                for target in targets:
                    if isinstance(target, ast.Name):
                        index.mutable_globals.add(target.id)
    return index


def _is_mutable_container(value: Optional[ast.AST]) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in {"dict", "list", "set", "OrderedDict",
                                 "defaultdict", "deque", "Counter"}
    return False


@register_checker
class StagePurityChecker(Checker):
    name = "stage-purity"
    description = ("functions reachable from experiment stages must not do "
                   "I/O, read the environment or mutate module globals "
                   "outside the RunStore/zoo boundaries")

    def check(self, project: Project,
              config: AnalysisConfig) -> List[Finding]:
        indexes = {module.module_name: _index_module(module)
                   for module in project.modules}
        roots: List[_FuncInfo] = []
        for module in project.modules:
            if not config.is_stage_pure_root(module.pkg_path):
                continue
            index = indexes[module.module_name]
            roots.extend(index.functions.values())
            for methods in index.classes.values():
                roots.extend(methods.values())
            # Nested closures (the compute/encode/decode lambdas and defs)
            # are visited as part of their enclosing function's body.

        findings: List[Finding] = []
        seen: Set[Tuple[str, str]] = set()
        worklist = list(roots)
        while worklist:
            info = worklist.pop()
            key = (info.module.module_name, info.qualname)
            if key in seen:
                continue
            seen.add(key)
            if config.is_purity_boundary(info.module.pkg_path):
                continue
            findings.extend(self._scan_body(info, indexes[info.module.module_name]))
            worklist.extend(self._callees(info, indexes))
        return findings

    # ------------------------------------------------------------------
    # impurity scan of one function body
    # ------------------------------------------------------------------
    def _scan_body(self, info: _FuncInfo,
                   index: _ModuleIndex) -> List[Finding]:
        module, mapping = info.module, index.imports
        findings: List[Finding] = []

        def report(node: ast.AST, message: str) -> None:
            findings.append(Finding(
                rule="stage-purity", path=module.rel_path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message, symbol=info.qualname))

        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                report(node, "'global' rebinding inside stage-reachable "
                             "code is a hidden input/output")
            elif isinstance(node, ast.Call):
                dotted = resolve_attribute(node.func, mapping)
                if isinstance(node.func, ast.Name) and node.func.id == "open" \
                        and "open" not in mapping:
                    report(node, "open() in stage-reachable code; route "
                                 "artifacts through the RunStore API")
                elif dotted in IO_CALLS or (
                        dotted is not None
                        and dotted.startswith(IMPURE_PREFIXES)):
                    report(node, f"impure call '{dotted}' in "
                                 f"stage-reachable code")
                elif (isinstance(node.func, ast.Attribute)
                      and node.func.attr in FS_METHODS
                      and dotted is None):
                    # Unresolvable receiver + filesystem-ish method name:
                    # Path.write_text and friends.
                    report(node, f"filesystem method '.{node.func.attr}()' "
                                 f"in stage-reachable code")
                elif (isinstance(node.func, ast.Attribute)
                      and node.func.attr in MUTATING_METHODS
                      and isinstance(node.func.value, ast.Name)
                      and node.func.value.id in index.mutable_globals):
                    report(node, f"mutates module-level container "
                                 f"'{node.func.value.id}' from "
                                 f"stage-reachable code")
            elif isinstance(node, (ast.Attribute, ast.Name)):
                # Exact matches only: 'os.environ.get' need not be checked
                # because its inner 'os.environ' node is walked separately.
                dotted = resolve_attribute(node, mapping)
                if dotted in ENV_ACCESS:
                    report(node, f"environment access '{dotted}' is an "
                                 f"undeclared stage input")
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [getattr(node, "target", None)]
                           if not isinstance(node, ast.Delete)
                           else node.targets)
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in index.mutable_globals):
                        report(target, f"writes module-level container "
                                       f"'{target.value.id}' from "
                                       f"stage-reachable code")
        return findings

    # ------------------------------------------------------------------
    # static call-graph edges out of one function
    # ------------------------------------------------------------------
    def _callees(self, info: _FuncInfo,
                 indexes: Dict[str, _ModuleIndex]) -> List[_FuncInfo]:
        index = indexes[info.module.module_name]
        mapping = index.imports
        callees: List[_FuncInfo] = []
        local_types: Dict[str, Tuple[str, str]] = {}  # var -> (module, class)

        for node in ast.walk(info.node):
            if not isinstance(node, (ast.Call, ast.Assign)):
                continue
            if isinstance(node, ast.Assign):
                # pipeline = DiffusionPipeline(...): remember local types so
                # pipeline.generate(...) resolves below.
                if (isinstance(node.value, ast.Call)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    resolved = self._resolve(
                        resolve_attribute(node.value.func, mapping),
                        index, indexes)
                    if isinstance(resolved, tuple):
                        local_types[node.targets[0].id] = resolved
                continue

            func = node.func
            # self.method() within a class
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self" and info.class_name):
                methods = index.classes.get(info.class_name, {})
                target = methods.get(func.attr)
                if target is not None:
                    callees.append(target)
                continue
            # local_var.method() where local_var's class is known
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in local_types):
                module_name, class_name = local_types[func.value.id]
                methods = indexes[module_name].classes.get(class_name, {})
                target = methods.get(func.attr)
                if target is not None:
                    callees.append(target)
                continue
            resolved = self._resolve(resolve_attribute(func, mapping),
                                     index, indexes)
            if isinstance(resolved, _FuncInfo):
                callees.append(resolved)
            elif isinstance(resolved, tuple):
                # Constructor call: walk into __init__ (and nothing else —
                # which other methods run is call-site dependent).
                module_name, class_name = resolved
                init = indexes[module_name].classes.get(class_name, {}) \
                    .get("__init__")
                if init is not None:
                    callees.append(init)
        return callees

    def _resolve(self, dotted: Optional[str], index: _ModuleIndex,
                 indexes: Dict[str, _ModuleIndex], depth: int = 0):
        """Resolve a dotted name to a _FuncInfo, a (module, class) pair, or None."""
        if dotted is None or depth > 8:
            return None
        # Same-module call by bare name.
        if "." not in dotted:
            if dotted in index.functions:
                return index.functions[dotted]
            if dotted in index.classes:
                return (index.module.module_name, dotted)
            return None
        # Longest-prefix match against known modules.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:cut])
            target_index = indexes.get(module_name)
            if target_index is None:
                continue
            remainder = parts[cut:]
            head = remainder[0]
            if head in target_index.functions and len(remainder) == 1:
                return target_index.functions[head]
            if head in target_index.classes:
                if len(remainder) == 1:
                    return (module_name, head)
                method = target_index.classes[head].get(remainder[1])
                return method
            # Package __init__ re-export: follow its own import map.
            reexport = target_index.imports.get(head)
            if reexport is not None:
                suffix = "." + ".".join(remainder[1:]) if remainder[1:] else ""
                return self._resolve(reexport + suffix, target_index,
                                     indexes, depth + 1)
            return None
        return None

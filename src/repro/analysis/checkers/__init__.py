"""Built-in checkers; importing this package registers all of them."""

from . import determinism, fingerprints, purity, shims, tracing

__all__ = ["determinism", "fingerprints", "purity", "shims", "tracing"]

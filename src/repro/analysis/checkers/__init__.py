"""Built-in checkers; importing this package registers all of them."""

from . import (determinism, fingerprints, hotpath, purity, races, rawgemm,
               schema, shims, tracing)

__all__ = ["determinism", "fingerprints", "hotpath", "purity", "races",
           "rawgemm", "schema", "shims", "tracing"]

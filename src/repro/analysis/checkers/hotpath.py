"""Rule ``hot-path-alloc``: no per-iteration allocation in marked hot code.

The bench suite's fast arms exist because PR 5 removed exactly these
regressions from the sampler loops and conv paths: a fresh ndarray per
denoising step, a Tensor graph built where ``inference_mode`` should have
kept the forward graph-free, a closure object constructed inside the loop
body.  This rule freezes those wins.  It is strictly opt-in: only
functions carrying a ``# repro: hot`` marker on (or directly above) their
``def`` line are checked, and hotness propagates to helpers a hot
function calls *from the same module* — ``sample`` marks itself, and
``_ddim_step_into`` inherits.

Inside a hot function, the rule flags

* calls to numpy array constructors inside a loop body;
* ``.copy()`` / ``.astype()``-style allocating method calls inside a loop;
* ``Tensor(...)`` graph construction anywhere in the function that is not
  lexically under ``with inference_mode():`` (or ``no_grad``);
* ``lambda`` / nested ``def`` closure allocation inside a loop body.

Allocations under an ``if x is not None:`` guard are exempt — the idiom
for optional tracing/debug features that cost nothing when off.  For
allocations that are semantically required per iteration (fresh noise in
a stochastic sampler), annotate the line with a reasoned
``# repro: allow[hot-path-alloc]`` pragma.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..callgraph import FunctionSummary, ModuleSummary, get_context
from ..config import AnalysisConfig, _matches
from ..findings import Finding
from ..project import Project
from ..registry import Checker, register_checker


def _hot_closure(summary: ModuleSummary) -> Set[str]:
    """Marked-hot qualnames plus same-module callees, to a fixpoint."""
    hot = {name for name, fn in summary.functions.items() if fn.hot}
    changed = True
    while changed:
        changed = False
        for name in sorted(hot):
            fn = summary.functions[name]
            for site in fn.calls:
                callee = _local_callee(summary, name, site)
                if callee is not None and callee not in hot:
                    hot.add(callee)
                    changed = True
    return hot


def _local_callee(summary: ModuleSummary, caller: str,
                  site) -> Optional[str]:
    """Same-module resolution of a call site (bare name or self-method)."""
    if site.self_method is not None and "." in caller:
        candidate = f"{caller.rsplit('.', 1)[0]}.{site.self_method}"
        if candidate in summary.functions:
            return candidate
    if site.target is not None and "." not in site.target:
        if site.target in summary.functions:
            return site.target
        init = f"{site.target}.__init__"
        if init in summary.functions:
            return init
    return None


@register_checker
class HotPathAllocChecker(Checker):
    name = "hot-path-alloc"
    description = ("functions marked '# repro: hot' must not allocate "
                   "per loop iteration or build Tensor graphs outside "
                   "inference_mode")
    needs_context = True

    def check(self, project: Project,
              config: AnalysisConfig) -> List[Finding]:
        context = get_context(project)
        findings: List[Finding] = []
        for module_name in sorted(context.summaries):
            summary = context.summaries[module_name]
            if not _matches(summary.pkg_path, config.hot_modules):
                continue
            hot = _hot_closure(summary)
            for qualname in sorted(hot):
                fn = summary.functions[qualname]
                findings.extend(self._check_function(summary, fn))
        return findings

    def _check_function(self, summary: ModuleSummary,
                        fn: FunctionSummary) -> List[Finding]:
        findings: List[Finding] = []

        def finding(alloc, message: str) -> Finding:
            return Finding(rule=self.name, path=summary.rel_path,
                           line=alloc.line, col=alloc.col,
                           symbol=fn.qualname, message=message)

        for alloc in fn.allocs:
            if alloc.guarded:
                continue
            if alloc.kind == "ndarray" and alloc.in_loop:
                findings.append(finding(alloc, (
                    f"hot loop allocates a fresh ndarray via "
                    f"'{alloc.name}' every iteration; preallocate the "
                    f"buffer outside the loop and fill in place")))
            elif alloc.kind == "method" and alloc.in_loop:
                findings.append(finding(alloc, (
                    f"hot loop calls allocating method '{alloc.name}' "
                    f"every iteration; hoist or reuse a preallocated "
                    f"buffer")))
            elif alloc.kind == "closure" and alloc.in_loop:
                findings.append(finding(alloc, (
                    f"hot loop constructs a closure ({alloc.name}) every "
                    f"iteration; define it once outside the loop")))

        # Tensor-graph construction: flagged anywhere in a hot function
        # when not lexically under inference_mode/no_grad.
        for site in fn.calls:
            if site.under_inference or site.guarded:
                continue
            target = site.target or ""
            if target.split(".")[-1] == "Tensor" or target.endswith(
                    ".tensor.Tensor"):
                findings.append(Finding(
                    rule=self.name, path=summary.rel_path,
                    line=site.line, col=site.col, symbol=fn.qualname,
                    message=("hot code constructs a Tensor outside "
                             "'with inference_mode():'; graph bookkeeping "
                             "on the hot path defeats the fast path")))
        return findings

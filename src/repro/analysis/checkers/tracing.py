"""Rule ``tracer-discipline``: tracing must be zero-cost when disabled.

The observability layer promises that a run with ``tracer=None`` pays
nothing — no span objects, no attr dicts, no f-string formatting.  That
promise is enforced socially at every call site, which is exactly the kind
of invariant that erodes one innocent-looking diff at a time.  This checker
makes it mechanical:

* **Defaults** — a ``tracer`` parameter may default only to ``None`` or
  ``NULL_TRACER``.  A default of ``Tracer()`` would silently make every
  caller pay for event booking (and share one mutable buffer between
  unrelated runs, the classic mutable-default bug).
* **Span balance** — ``tracer.span(...)`` returns a context manager that
  books the span on ``__exit__``; calling it outside a ``with`` leaks an
  unbalanced span that never lands in the trace.  Counted APIs
  (``begin_span``/``end_span`` spellings) must balance within a function.
* **Call-site cost** — passing a dict literal, dict comprehension or
  f-string to an emit method (``add_span``/``async_span``/``instant``/
  ``span``) builds the payload even when the receiver is a no-op.  Such
  call sites must sit under a narrowing guard: ``if tracer is not None:``,
  ``if tracer.enabled:``, a truthiness test, or an early
  ``if tracer is None: return`` at the top of the function.

Receivers are recognized syntactically: any name or attribute whose last
segment contains ``tracer`` (``tracer``, ``self.tracer``, ``step_tracer``).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import List, Optional, Set

from ..config import AnalysisConfig
from ..findings import Finding
from ..imports import import_map
from ..project import Module, Project
from ..registry import Checker, register_checker

#: Methods that book an event (and therefore cost something to call).
EMIT_METHODS = frozenset({"add_span", "async_span", "instant", "span"})

#: Paired span APIs that must balance inside one function body.
SPAN_OPENERS = frozenset({"begin_span", "start_span", "enter_span"})
SPAN_CLOSERS = frozenset({"end_span", "finish_span", "exit_span"})


def _receiver_key(node: ast.AST) -> Optional[str]:
    """Dotted source text of a name/attribute receiver, or None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _receiver_key(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_tracer_key(key: Optional[str]) -> bool:
    return key is not None and "tracer" in key.rsplit(".", 1)[-1].lower()


def _expensive_arg(call: ast.Call) -> Optional[str]:
    """Name the first eagerly-built payload argument, if any."""
    values = list(call.args) + [kw.value for kw in call.keywords]
    for value in values:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "a dict literal"
        if isinstance(value, ast.JoinedStr):
            return "an f-string"
    return None


def _guard_keys(test: ast.AST) -> Set[str]:
    """Tracer receivers narrowed by an ``if`` test.

    Matches ``x is not None``, ``x.enabled``, plain truthiness and ``and``
    conjunctions thereof; ``x`` itself and every dotted prefix count as
    guarded (``if self.tracer is not None`` guards ``self.tracer``).
    """
    keys: Set[str] = set()
    for node in ast.walk(test):
        key = _receiver_key(node)
        if _is_tracer_key(key):
            keys.add(key)
        elif isinstance(node, ast.Attribute) and node.attr == "enabled":
            inner = _receiver_key(node.value)
            if _is_tracer_key(inner):
                keys.add(inner)
    return keys


@register_checker
class TracerDisciplineChecker(Checker):
    name = "tracer-discipline"
    description = ("tracer params default to None/NULL_TRACER, spans "
                   "balance, and attr payloads are built only under a "
                   "tracer guard")

    cacheable = True  # findings are a pure function of one file + config

    def check_module(self, module: Module,
                     config: AnalysisConfig) -> List[Finding]:
        if not self._in_scope(module, config):
            return []
        return self._check_module(module)

    @staticmethod
    def _in_scope(module: Module, config: AnalysisConfig) -> bool:
        return any(fnmatch(module.pkg_path, pattern)
                   for pattern in config.tracer_modules)

    # ------------------------------------------------------------------
    def _check_module(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        mapping = import_map(module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_defaults(module, node, mapping))
                findings.extend(self._check_balance(module, node))
                findings.extend(self._check_call_sites(module, node))
        return findings

    # -- defaults ------------------------------------------------------
    def _check_defaults(self, module: Module, func: ast.AST,
                        mapping) -> List[Finding]:
        findings: List[Finding] = []
        args = func.args
        positional = args.posonlyargs + args.args
        pairs = list(zip(positional[len(positional) - len(args.defaults):],
                         args.defaults))
        pairs += [(arg, default) for arg, default
                  in zip(args.kwonlyargs, args.kw_defaults)
                  if default is not None]
        for arg, default in pairs:
            if "tracer" not in arg.arg.lower():
                continue
            if isinstance(default, ast.Constant) and default.value is None:
                continue
            name = _receiver_key(default)
            if name is not None and name.rsplit(".", 1)[-1] == "NULL_TRACER":
                continue
            findings.append(Finding(
                rule="tracer-discipline", path=module.rel_path,
                line=default.lineno, col=default.col_offset,
                message=(f"tracer parameter '{arg.arg}' defaults to "
                         f"something other than None/NULL_TRACER; shared "
                         f"live tracers leak events across runs"),
                symbol=func.name))
        return findings

    # -- span balance --------------------------------------------------
    def _check_balance(self, module: Module, func: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        opens = closes = 0
        first_open: Optional[ast.Call] = None
        with_items: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if not _is_tracer_key(_receiver_key(node.func.value)):
                continue
            if node.func.attr in SPAN_OPENERS:
                opens += 1
                first_open = first_open or node
            elif node.func.attr in SPAN_CLOSERS:
                closes += 1
            elif node.func.attr == "span" and id(node) not in with_items:
                findings.append(Finding(
                    rule="tracer-discipline", path=module.rel_path,
                    line=node.lineno, col=node.col_offset,
                    message=("tracer.span(...) outside a 'with' block "
                             "leaks an unbalanced span"),
                    symbol=func.name))
        if opens != closes:
            anchor = first_open or func
            findings.append(Finding(
                rule="tracer-discipline", path=module.rel_path,
                line=anchor.lineno, col=anchor.col_offset,
                message=(f"unbalanced span calls in '{func.name}': "
                         f"{opens} opened, {closes} closed"),
                symbol=func.name))
        return findings

    # -- call-site cost ------------------------------------------------
    def _check_call_sites(self, module: Module,
                          func: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        narrowed = self._early_return_narrowing(func)

        def visit(node: ast.AST, guarded: Set[str]) -> None:
            if isinstance(node, ast.If):
                body_guards = guarded | _guard_keys(node.test)
                for child in node.body:
                    visit(child, body_guards)
                for child in node.orelse:
                    visit(child, guarded)
                return
            if isinstance(node, ast.IfExp):
                visit(node.test, guarded)
                visit(node.body, guarded | _guard_keys(node.test))
                visit(node.orelse, guarded)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                # Nested functions are visited on their own by _check_module.
                return
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in EMIT_METHODS):
                key = _receiver_key(node.func.value)
                if _is_tracer_key(key) and key not in guarded:
                    expensive = _expensive_arg(node)
                    if expensive is not None:
                        findings.append(Finding(
                            rule="tracer-discipline", path=module.rel_path,
                            line=node.lineno, col=node.col_offset,
                            message=(f"builds {expensive} at an unguarded "
                                     f"'{key}.{node.func.attr}(...)' call "
                                     f"site; guard with 'if {key} is not "
                                     f"None:'/'.enabled' so disabled runs "
                                     f"pay nothing"),
                            symbol=func.name))
            for child in ast.iter_child_nodes(node):
                visit(child, guarded)

        for statement in func.body:
            visit(statement, set(narrowed))
        return findings

    @staticmethod
    def _early_return_narrowing(func: ast.AST) -> Set[str]:
        """Receivers proven non-None by leading ``if x is None: return``."""
        narrowed: Set[str] = set()
        for statement in func.body:
            if (isinstance(statement, ast.Expr)
                    and isinstance(statement.value, ast.Constant)):
                continue  # docstring
            if not (isinstance(statement, ast.If)
                    and len(statement.body) == 1
                    and isinstance(statement.body[0],
                                   (ast.Return, ast.Raise, ast.Continue))
                    and not statement.orelse):
                break
            test = statement.test
            is_none = (isinstance(test, ast.Compare)
                       and len(test.ops) == 1
                       and isinstance(test.ops[0], ast.Is)
                       and isinstance(test.comparators[0], ast.Constant)
                       and test.comparators[0].value is None)
            not_truthy = (isinstance(test, ast.UnaryOp)
                          and isinstance(test.op, ast.Not))
            if is_none:
                key = _receiver_key(test.left)
            elif not_truthy:
                key = _receiver_key(test.operand)
            else:
                key = None
            if _is_tracer_key(key):
                narrowed.add(key)
        return narrowed

"""Rule ``fingerprint-coverage``: every field a fingerprint forgets is a
cache-poisoning bug waiting to happen.

The RunStore keys artifacts by ``fingerprint()`` content hashes.  When a
dataclass grows a new behavior-affecting field but its ``fingerprint()``
payload is a hand-maintained dict, the new field silently drops out of the
key — two configs that differ only in that field collide on one cache
entry, and every downstream table is built from the wrong artifact.

For each dataclass that defines a zero-argument ``fingerprint()`` method,
the checker computes the set of *covered* fields:

* ``dataclasses.asdict(self)`` / ``asdict(self)`` anywhere in the closure
  covers everything;
* otherwise, every ``self.X`` read inside ``fingerprint()`` and inside any
  ``self.helper()`` it calls (``to_dict`` is the usual shape) counts.

Fields never read are reported at their declaration line.  Fields that are
*deliberately* presentation-only (a display label, a keep-images toggle)
are annotated in source with ``# repro: allow[fingerprint-coverage]`` —
the annotation sits on the field, so the exemption is visible exactly
where the next reader will wonder about it.  Underscore-prefixed and
``ClassVar`` fields are ignored.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Dict, List, Optional, Set

from ..config import AnalysisConfig
from ..findings import Finding
from ..project import Module, Project
from ..registry import Checker, register_checker


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else ""
        if name == "dataclass":
            return True
    return False


def _field_nodes(cls: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    """Dataclass fields (AnnAssign at class body level), minus ClassVars."""
    fields: Dict[str, ast.AnnAssign] = {}
    for node in cls.body:
        if not (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)):
            continue
        name = node.target.id
        if name.startswith("_"):
            continue
        annotation = ast.dump(node.annotation)
        if "ClassVar" in annotation:
            continue
        fields[name] = node
    return fields


def _methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {node.name: node for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _zero_arg_method(func: Optional[ast.FunctionDef]) -> bool:
    if func is None:
        return False
    args = func.args
    return (len(args.posonlyargs) + len(args.args) == 1
            and not args.kwonlyargs and args.vararg is None
            and args.kwarg is None)


def _covers_all(func: ast.AST) -> bool:
    """True if the body calls asdict(self)/dataclasses.asdict(self)."""
    for node in ast.walk(func):
        if not (isinstance(node, ast.Call) and node.args):
            continue
        target = node.func
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else ""
        first = node.args[0]
        if (name == "asdict" and isinstance(first, ast.Name)
                and first.id == "self"):
            return True
    return False


@register_checker
class FingerprintCoverageChecker(Checker):
    name = "fingerprint-coverage"
    description = ("dataclasses with fingerprint() must feed every field "
                   "into the hash payload (or mark it presentation-only)")
    cacheable = True  # findings are a pure function of one file + config

    def check_module(self, module: Module,
                     config: AnalysisConfig) -> List[Finding]:
        if not any(fnmatch(module.pkg_path, pattern)
                   for pattern in config.fingerprint_modules):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                findings.extend(self._check_class(module, node))
        return findings

    # ------------------------------------------------------------------
    def _check_class(self, module: Module,
                     cls: ast.ClassDef) -> List[Finding]:
        methods = _methods(cls)
        fingerprint = methods.get("fingerprint")
        if not _zero_arg_method(fingerprint):
            return []
        fields = _field_nodes(cls)
        if not fields:
            return []

        covered: Set[str] = set()
        visited: Set[str] = set()
        worklist = ["fingerprint"]
        while worklist:
            name = worklist.pop()
            if name in visited:
                continue
            visited.add(name)
            func = methods.get(name)
            if func is None:
                continue
            if _covers_all(func):
                return []
            for node in ast.walk(func):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"):
                    if node.attr in fields:
                        covered.add(node.attr)
                    elif node.attr in methods:
                        worklist.append(node.attr)

        findings = []
        for name, node in sorted(fields.items()):
            if name in covered:
                continue
            findings.append(Finding(
                rule="fingerprint-coverage", path=module.rel_path,
                line=node.lineno, col=node.col_offset,
                message=(f"field '{name}' never reaches "
                         f"{cls.name}.fingerprint(); hash it or mark it "
                         f"presentation-only with a pragma"),
                symbol=f"{cls.name}.{name}"))
        return findings

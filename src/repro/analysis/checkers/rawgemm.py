"""Rule ``gemm-dispatch``: matrix products go through the compute backend.

PR 10 introduced the pluggable compute-backend layer
(:mod:`repro.tensor.backend`): every GEMM, batched GEMM and im2col
convolution in the tensor engine dispatches through
``active_backend()`` so that MAC accounting (``count_macs``), the
accelerated fused kernels and the bench environment fingerprint all see
the same set of matrix products.  The guarantee decays one convenience
call at a time: someone spells ``np.matmul(a, b)`` in a layer because it
is shorter than fetching the backend, and that product silently vanishes
from the MAC counts and can never be accelerated.

This rule freezes the routing.  In the configured dispatch modules
(``AnalysisConfig.gemm_dispatch_modules`` — the tensor engine, the nn
layers and the quantized modules), it flags

* calls to a GEMM-shaped numpy function through a numpy module alias
  (``np.matmul``, ``np.einsum``, ``np.dot``, ``np.tensordot``,
  ``np.inner``, ``np.vdot``) — including aliased submodule imports;
* the same names called bare after ``from numpy import matmul``;
* the ``@`` matrix-multiply operator, which on ndarrays is a raw BLAS
  call the dispatch layer never sees (Tensor code spells the dispatched
  form ``x.matmul(y)``).

The backend layer itself (``gemm_backend_modules``) is exempt: there the
raw numpy product *is* the implementation.  A deliberate bypass — say a
shape-only einsum on index arrays — takes a reasoned
``# repro: allow[gemm-dispatch]`` pragma.

The rule is cacheable: findings are a pure function of one file plus the
config, so warm runs serve them from the fact cache.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..config import AnalysisConfig, _matches
from ..findings import Finding
from ..project import Module
from ..registry import Checker, register_checker

#: numpy callables that compute (or reduce to) a matrix product.
GEMM_FUNCTIONS = frozenset(
    {"matmul", "einsum", "dot", "tensordot", "inner", "vdot"})


def _numpy_bindings(tree: ast.Module) -> tuple:
    """(module aliases bound to numpy, GEMM names imported from numpy)."""
    aliases: Set[str] = set()
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy" or item.name.startswith("numpy."):
                    aliases.add(item.asname or item.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module and (node.module == "numpy"
                                or node.module.startswith("numpy.")):
                for item in node.names:
                    if item.name in GEMM_FUNCTIONS:
                        names.add(item.asname or item.name)
    return aliases, names


class _GemmVisitor(ast.NodeVisitor):
    """Collect raw-GEMM sites with their enclosing function qualname."""

    def __init__(self, aliases: Set[str], from_names: Set[str]):
        self.aliases = aliases
        self.from_names = from_names
        self.stack: List[str] = []
        #: (line, col, symbol, spelling) per finding site.
        self.sites: List[tuple] = []

    # -- scope tracking -------------------------------------------------
    def _visit_scope(self, node, name: str) -> None:
        self.stack.append(name)
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scope(node, node.name)

    def _symbol(self) -> Optional[str]:
        return ".".join(self.stack) if self.stack else None

    # -- GEMM sites -----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in GEMM_FUNCTIONS
                and isinstance(func.value, ast.Name)
                and func.value.id in self.aliases):
            self.sites.append((node.lineno, node.col_offset, self._symbol(),
                               f"{func.value.id}.{func.attr}"))
        elif isinstance(func, ast.Name) and func.id in self.from_names:
            self.sites.append((node.lineno, node.col_offset, self._symbol(),
                               func.id))
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.MatMult):
            self.sites.append((node.lineno, node.col_offset, self._symbol(),
                               "@"))
        self.generic_visit(node)


@register_checker
class GemmDispatchChecker(Checker):
    name = "gemm-dispatch"
    description = ("tensor/nn/qmodule code must route matrix products "
                   "through the compute backend, not raw numpy "
                   "matmul/einsum or the '@' operator")
    cacheable = True

    def check_module(self, module: Module,
                     config: AnalysisConfig) -> List[Finding]:
        if not _matches(module.pkg_path, config.gemm_dispatch_modules):
            return []
        if _matches(module.pkg_path, config.gemm_backend_modules):
            return []
        aliases, from_names = _numpy_bindings(module.tree)
        visitor = _GemmVisitor(aliases, from_names)
        visitor.visit(module.tree)
        findings: List[Finding] = []
        for line, col, symbol, spelling in visitor.sites:
            if spelling == "@":
                message = ("raw '@' matrix multiply bypasses the compute "
                           "backend; use Tensor.matmul or "
                           "active_backend().gemm/batched_gemm so MAC "
                           "accounting and accelerated kernels see it")
            else:
                message = (f"raw numpy GEMM '{spelling}' bypasses the "
                           f"compute backend; dispatch through "
                           f"active_backend() so MAC accounting and "
                           f"accelerated kernels see it")
            findings.append(Finding(
                rule=self.name, path=module.rel_path, line=line, col=col,
                symbol=symbol, message=message))
        return findings

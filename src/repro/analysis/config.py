"""Repo-specific configuration of the analysis pass.

The checkers are generic AST machinery; everything this repository *means*
by determinism, purity and shim compatibility lives here: which modules are
declared virtual-time, which modules are sanctioned storage boundaries,
which dataclass fields are presentation-only, which legacy entry points
shadow which replacements.

All module lists are fnmatch globs over the path relative to the ``repro``
package (``serving/pool.py``, ``serving/cluster/*.py``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Sequence, Tuple


def _matches(pkg_path: str, globs: Sequence[str]) -> bool:
    return any(fnmatch(pkg_path, pattern) for pattern in globs)


@dataclass
class ShimPair:
    """A legacy entry point and the replacement whose keywords it must carry."""

    shim: str         # dotted path inside repro, e.g. "...DiffusionPipeline.generate"
    replacement: str  # dotted path of the replacement callable
    #: Replacement parameters the shim legitimately does not expose
    #: (derived internally, or meaningless for the legacy call shape).
    exempt: Tuple[str, ...] = ()

    def to_dict(self) -> Dict:
        return {"shim": self.shim, "replacement": self.replacement,
                "exempt": list(self.exempt)}

    @classmethod
    def from_dict(cls, data: Dict) -> "ShimPair":
        return cls(shim=data["shim"], replacement=data["replacement"],
                   exempt=tuple(data.get("exempt", ())))


@dataclass
class AnalysisConfig:
    """Everything the checkers need to know about this repository."""

    # -- determinism ---------------------------------------------------
    #: Modules that must never read wall clocks or unseeded RNG in code:
    #: they are driven by VirtualClock / explicit seeds and their outputs
    #: are asserted byte-identical in CI.
    virtual_time_modules: Tuple[str, ...] = (
        "serving/*.py",
        "serving/cluster/*.py",
        "experiments/stages.py",
        "diffusion/samplers.py",
    )
    #: Clock-injection boundaries: modules whose *job* is to read wall
    #: clocks and hand them to the rest of the system behind injectable
    #: parameters.  Exempt from the determinism rule entirely.
    clock_boundaries: Tuple[str, ...] = (
        "profiling/latency.py",
        "bench/timer.py",
        "obs/tracer.py",
    )

    # -- stage purity --------------------------------------------------
    #: Modules whose functions are the roots of the stage-purity walk:
    #: every function statically reachable from here runs inside a
    #: content-addressed stage, so hidden inputs corrupt cache keys.
    stage_pure_roots: Tuple[str, ...] = (
        "experiments/stages.py",
        "experiments/variants.py",
    )
    #: Sanctioned storage boundaries: reachable code may enter these
    #: modules (RunStore API, atomic checkpoint I/O, the content-keyed
    #: zoo cache) without findings — their side effects are keyed by the
    #: same content hashes as the stages themselves.
    purity_boundaries: Tuple[str, ...] = (
        "experiments/store.py",
        "core/atomic.py",
        "zoo/*.py",
        # The compute-backend layer owns process-wide kernel state (the
        # registry, the compiled-kernel cache on disk); stage code reaches
        # it through every Tensor op, and its outputs are a pure function
        # of the dispatched operands.
        "tensor/backend.py",
        "tensor/_ckernels.py",
    )

    # -- thread-context lattice / race discipline ----------------------
    #: Function-id globs (``repro.pkg.module.Class.method``) seeded as
    #: worker-executed entry points, on top of everything handed to an
    #: executor ``submit`` (discovered automatically from the call graph).
    worker_entries: Tuple[str, ...] = (
        "repro.serving.engine.ServingEngine.pump",
        "repro.serving.cluster.sim.ClusterSimulation._on_*",
        "repro.experiments.stages.*",
        "repro.experiments.variants.*",
    )

    # -- hot-path allocation -------------------------------------------
    #: Module globs the ``# repro: hot`` marker is honored in; everything
    #: by default — the marker itself is the opt-in.
    hot_modules: Tuple[str, ...] = ("*.py",)

    # -- gemm dispatch -------------------------------------------------
    #: Modules whose matrix products must go through the compute-backend
    #: dispatch (``active_backend().gemm`` and friends) rather than raw
    #: numpy so MAC accounting and accelerated kernels see every GEMM.
    gemm_dispatch_modules: Tuple[str, ...] = (
        "tensor/*.py",
        "nn/*.py",
        "core/qmodules.py",
    )
    #: The backend layer itself: the one place raw numpy GEMMs are the
    #: implementation rather than a bypass.
    gemm_backend_modules: Tuple[str, ...] = (
        "tensor/backend.py",
        "tensor/_ckernels.py",
    )

    # -- schema discipline ---------------------------------------------
    #: The one module allowed to spell out ``family/vN`` schema tags.
    schema_registry_module: str = "repro.schemas"
    #: Tag literals exempt from the rule (none by default; prefer pragmas
    #: at the use site so exemptions carry a reason).
    schema_exempt_tags: Tuple[str, ...] = ()

    # -- fingerprint coverage ------------------------------------------
    #: Modules scanned for dataclasses exposing ``fingerprint()``.
    fingerprint_modules: Tuple[str, ...] = ("*.py",)

    # -- tracer discipline ---------------------------------------------
    #: Modules scanned for tracing call sites.
    tracer_modules: Tuple[str, ...] = ("*.py",)

    # -- shim drift ----------------------------------------------------
    shim_pairs: Tuple[ShimPair, ...] = (
        # The legacy use_ddpm spellings must keep accepting everything the
        # plan-based core path takes.  (The experiments.harness table shims
        # were retired in PR 10 — callers build ExperimentSpec directly.)
        ShimPair("diffusion.pipeline.DiffusionPipeline.generate",
                 "diffusion.pipeline.DiffusionPipeline._run",
                 exempt=("context_batches",)),
        ShimPair("diffusion.pipeline.DiffusionPipeline.generate_from_prompts",
                 "diffusion.pipeline.DiffusionPipeline._run",
                 exempt=("context_batches", "num_images")),
        # Pre-cluster spelling of the batch-execution path.
        ShimPair("serving.engine.ServingEngine._process_batch",
                 "serving.engine.ServingEngine.complete_batch",
                 exempt=("started", "finished")),
    )

    # ------------------------------------------------------------------
    def is_virtual_time(self, pkg_path: str) -> bool:
        return (_matches(pkg_path, self.virtual_time_modules)
                and not _matches(pkg_path, self.clock_boundaries))

    def is_purity_boundary(self, pkg_path: str) -> bool:
        return _matches(pkg_path, self.purity_boundaries)

    def is_stage_pure_root(self, pkg_path: str) -> bool:
        return _matches(pkg_path, self.stage_pure_roots)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "virtual_time_modules": list(self.virtual_time_modules),
            "clock_boundaries": list(self.clock_boundaries),
            "stage_pure_roots": list(self.stage_pure_roots),
            "purity_boundaries": list(self.purity_boundaries),
            "worker_entries": list(self.worker_entries),
            "hot_modules": list(self.hot_modules),
            "gemm_dispatch_modules": list(self.gemm_dispatch_modules),
            "gemm_backend_modules": list(self.gemm_backend_modules),
            "schema_registry_module": self.schema_registry_module,
            "schema_exempt_tags": list(self.schema_exempt_tags),
            "fingerprint_modules": list(self.fingerprint_modules),
            "tracer_modules": list(self.tracer_modules),
            "shim_pairs": [pair.to_dict() for pair in self.shim_pairs],
        }

    def fingerprint(self) -> str:
        """Stable hash of the config; part of every fact-cache key."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Dict) -> "AnalysisConfig":
        kwargs = {}
        for key in ("virtual_time_modules", "clock_boundaries",
                    "stage_pure_roots", "purity_boundaries",
                    "worker_entries", "hot_modules",
                    "gemm_dispatch_modules", "gemm_backend_modules",
                    "schema_exempt_tags",
                    "fingerprint_modules", "tracer_modules"):
            if key in data:
                kwargs[key] = tuple(data[key])
        if "schema_registry_module" in data:
            kwargs["schema_registry_module"] = data["schema_registry_module"]
        if "shim_pairs" in data:
            kwargs["shim_pairs"] = tuple(ShimPair.from_dict(pair)
                                         for pair in data["shim_pairs"])
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path) -> "AnalysisConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))


DEFAULT_CONFIG = AnalysisConfig()


#: Names that may appear in rule configuration (documented in README).
__all__ = ["AnalysisConfig", "ShimPair", "DEFAULT_CONFIG"]

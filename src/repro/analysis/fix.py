"""``--fix``: mechanical rewrites for a subset of findings.

Three fixers, all deliberately boring text surgery (no AST re-emission, so
untouched lines keep their bytes and diffs stay reviewable):

* **pragma insertion** (``race-discipline``, ``hot-path-alloc``) — insert
  a standalone ``# repro: allow[rule] -- TODO: <reason>`` line above the
  finding, matching its indentation.  The TODO is the point: the fix
  unblocks the gate while forcing a human to either justify or properly
  fix before review.
* **schema-constant rewrite** (``schema-discipline``) — replace an inline
  ``"family/vN"`` literal with the registered constant from
  :mod:`repro.schemas`, adding ``from repro import schemas`` when the
  module does not import it yet.  Tags with no registered constant are
  left alone (reported as skipped): inventing registry entries is a
  design decision, not a mechanical fix.
* **dead-shim-param removal** (``shim-drift`` "accepts ... but never
  forwards it") — delete the parameter from the shim's signature.

Fixes are applied bottom-up per file so earlier line numbers stay valid,
and the whole pass is idempotent: a second run over the fixed tree finds
nothing left to do (pragmas suppress, constants no longer match, params
are gone).  ``dry_run`` produces a unified diff instead of writing.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import schemas
from .findings import Finding
from .project import Project

#: Rules whose remediation may legitimately be "annotate with a reason".
PRAGMA_RULES = ("race-discipline", "hot-path-alloc")

_TAG_RE = re.compile(r"[A-Za-z_][\w.]*/v\d+\Z")
_DEAD_PARAM_RE = re.compile(r"accepts '(\w+)' but never forwards it")
_SCHEMA_TAG_IN_MSG_RE = re.compile(r"schema tag '([^']+)' spelled inline")
_IMPORTS_SCHEMAS_RE = re.compile(
    r"^\s*(from\s+repro\s+import\s+.*\bschemas\b"
    r"|from\s+\.+\s*import\s+.*\bschemas\b"
    r"|import\s+repro\.schemas\b)", re.MULTILINE)


def registered_constants() -> Dict[str, str]:
    """Map registered tag values to their constant names in repro.schemas."""
    constants: Dict[str, str] = {}
    for name in dir(schemas):
        if name.startswith("_"):
            continue
        value = getattr(schemas, name)
        if isinstance(value, str) and _TAG_RE.match(value):
            constants[value] = name
    return constants


@dataclass
class FixOutcome:
    """What one fix pass did (or would do, under dry-run)."""

    #: path -> unified diff text (only files with changes appear).
    diffs: Dict[str, str] = field(default_factory=dict)
    #: human-readable lines describing each edit.
    applied: List[str] = field(default_factory=list)
    #: findings no fixer covers (or covers but could not apply).
    skipped: List[Finding] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.diffs)

    def combined_diff(self) -> str:
        return "".join(self.diffs[path] for path in sorted(self.diffs))


def apply_fixes(project: Project, findings: List[Finding],
                dry_run: bool = False) -> FixOutcome:
    """Apply every available mechanical fix for ``findings``."""
    outcome = FixOutcome()
    constants = registered_constants()
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)

    modules = {module.rel_path: module for module in project.modules}
    for rel_path in sorted(by_path):
        module = modules.get(rel_path)
        if module is None:
            outcome.skipped.extend(by_path[rel_path])
            continue
        original = module.source
        lines = original.splitlines(keepends=True)
        needs_schemas_import = False

        # bottom-up so line numbers stay valid while we edit
        for finding in sorted(by_path[rel_path],
                              key=lambda f: f.line, reverse=True):
            if finding.rule in PRAGMA_RULES:
                inserted = _insert_pragma(lines, finding)
                if inserted:
                    outcome.applied.append(
                        f"{rel_path}:{finding.line}: pragma "
                        f"allow[{finding.rule}] inserted (TODO reason)")
                else:
                    outcome.skipped.append(finding)
            elif finding.rule == "schema-discipline":
                replaced = _replace_schema_literal(lines, finding, constants)
                if replaced:
                    needs_schemas_import = True
                    outcome.applied.append(
                        f"{rel_path}:{finding.line}: inline tag replaced "
                        f"with schemas.{replaced}")
                else:
                    outcome.skipped.append(finding)
            elif finding.rule == "shim-drift":
                match = _DEAD_PARAM_RE.search(finding.message)
                if match and _remove_parameter(lines, finding.line,
                                               match.group(1)):
                    outcome.applied.append(
                        f"{rel_path}:{finding.line}: dead shim parameter "
                        f"'{match.group(1)}' removed")
                else:
                    outcome.skipped.append(finding)
            else:
                outcome.skipped.append(finding)

        updated = "".join(lines)
        if needs_schemas_import and not _IMPORTS_SCHEMAS_RE.search(updated):
            lines = updated.splitlines(keepends=True)
            _insert_schemas_import(lines)
            updated = "".join(lines)

        if updated != original:
            diff = "".join(difflib.unified_diff(
                original.splitlines(keepends=True),
                updated.splitlines(keepends=True),
                fromfile=f"a/{rel_path}", tofile=f"b/{rel_path}"))
            outcome.diffs[rel_path] = diff
            if not dry_run:
                module.path.write_text(updated, encoding="utf-8")
    return outcome


# ----------------------------------------------------------------------
# individual fixers (operate on a keepends line list, in place)
# ----------------------------------------------------------------------
def _insert_pragma(lines: List[str], finding: Finding) -> bool:
    index = finding.line - 1
    if index < 0 or index >= len(lines):
        return False
    target = lines[index]
    above = lines[index - 1] if index > 0 else ""
    marker = f"allow[{finding.rule}"
    if marker.split("[")[0] and (f"repro: allow" in target
                                 or "repro: allow" in above):
        # Something is already annotated here; don't stack pragmas.
        return False
    indent = target[:len(target) - len(target.lstrip())]
    lines.insert(index, f"{indent}# repro: allow[{finding.rule}] -- "
                        f"TODO: justify or fix before merging\n")
    return True


def _replace_schema_literal(lines: List[str], finding: Finding,
                            constants: Dict[str, str]) -> Optional[str]:
    match = _SCHEMA_TAG_IN_MSG_RE.search(finding.message)
    if not match:
        return None
    tag = match.group(1)
    constant = constants.get(tag)
    if constant is None:
        return None
    index = finding.line - 1
    if index < 0 or index >= len(lines):
        return None
    line = lines[index]
    for quoted in (f'"{tag}"', f"'{tag}'"):
        if quoted in line:
            lines[index] = line.replace(quoted, f"schemas.{constant}", 1)
            return constant
    return None


def _insert_schemas_import(lines: List[str]) -> None:
    """Add ``from repro import schemas`` after the last top-level import."""
    last_import = None
    depth_hint = 0
    for number, line in enumerate(lines):
        stripped = line.strip()
        if line.startswith(("import ", "from ")):
            last_import = number
        elif stripped.startswith(('"""', "'''")):
            depth_hint += stripped.count('"""') + stripped.count("'''")
        elif stripped and not stripped.startswith("#") \
                and last_import is not None:
            break
    insert_at = (last_import + 1) if last_import is not None else 0
    lines.insert(insert_at, "from repro import schemas\n")


def _remove_parameter(lines: List[str], def_line: int, name: str) -> bool:
    """Delete parameter ``name`` from the signature starting at def_line."""
    start = def_line - 1
    if start < 0 or start >= len(lines):
        return False
    text = "".join(lines[start:])
    open_paren = text.find("(")
    if open_paren < 0:
        return False
    span = _matching_paren(text, open_paren)
    if span is None:
        return False
    inner_start, inner_end = open_paren + 1, span
    chunks = _split_params(text, inner_start, inner_end)
    for index, (chunk_start, chunk_end) in enumerate(chunks):
        chunk = text[chunk_start:chunk_end]
        param = re.match(r"\s*(\w+)", chunk)
        if param is None or param.group(1) != name:
            continue
        if index + 1 < len(chunks):           # eat the following comma
            cut_start, cut_end = chunk_start, chunks[index + 1][0]
        elif index > 0:                       # last param: eat the comma before
            cut_start, cut_end = chunks[index - 1][1], chunk_end
        else:                                 # only param
            cut_start, cut_end = chunk_start, chunk_end
        new_text = text[:cut_start] + text[cut_end:]
        del lines[start:]
        lines.extend(new_text.splitlines(keepends=True))
        return True
    return False


def _matching_paren(text: str, open_index: int) -> Optional[int]:
    depth = 0
    quote: Optional[str] = None
    index = open_index
    while index < len(text):
        char = text[index]
        if quote is not None:
            if char == "\\":
                index += 2
                continue
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
            if depth == 0:
                return index
        index += 1
    return None


def _split_params(text: str, start: int,
                  end: int) -> List[Tuple[int, int]]:
    """Spans of top-level comma-separated chunks inside ``text[start:end]``."""
    chunks: List[Tuple[int, int]] = []
    depth = 0
    quote: Optional[str] = None
    chunk_start = start
    index = start
    while index < end:
        char = text[index]
        if quote is not None:
            if char == "\\":
                index += 2
                continue
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        elif char == "," and depth == 0:
            chunks.append((chunk_start, index))
            chunk_start = index + 1
        index += 1
    if text[chunk_start:end].strip():
        chunks.append((chunk_start, end))
    return chunks

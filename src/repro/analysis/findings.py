"""Findings: what a checker reports, and the JSON report around them.

A :class:`Finding` pins one rule violation to a file, line and symbol.  Its
:meth:`Finding.identity` deliberately excludes the line/column so findings
stay matched against the committed baseline while unrelated edits move code
around — the same stability property the experiment store gets from content
keys instead of file paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import schemas

#: Schema tag written into every JSON report (registered centrally; v2
#: added the per-rule ``timing`` and fact-``cache`` blocks).
REPORT_SCHEMA = schemas.ANALYSIS_REPORT


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str                    # repo-relative posix path
    line: int
    col: int
    message: str
    symbol: Optional[str] = None  # enclosing function/class qualname

    def identity(self) -> Tuple[str, str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.symbol or "", self.message)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "symbol": self.symbol, "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Finding":
        return cls(rule=data["rule"], path=data["path"],
                   line=data.get("line", 0), col=data.get("col", 0),
                   message=data["message"], symbol=data.get("symbol"))

    def format(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.location()}: {self.rule}: {self.message}{where}"


@dataclass
class AnalysisReport:
    """The full result of one analysis run (see ``repro.schemas.ANALYSIS_REPORT``)."""

    roots: List[str]
    files_analyzed: int
    rules: List[Dict]                      # [{"name", "description"}]
    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    baseline_path: Optional[str] = None
    #: Baseline entries that no longer match any finding — candidates for
    #: removal so the grandfathered set only ever shrinks.
    stale_baseline: List[Dict] = field(default_factory=list)
    #: Per-rule wall time in seconds (plus "total"), v2 addition.
    timing: Dict[str, float] = field(default_factory=dict)
    #: Fact-cache statistics for this run, v2 addition.  ``enabled`` is
    #: False when the run went cold on purpose (--no-cache).
    cache_stats: Dict = field(default_factory=lambda: {"enabled": False})

    @property
    def exit_code(self) -> int:
        return 1 if self.new_findings else 0

    def per_rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict:
        return {
            "schema": REPORT_SCHEMA,
            "roots": list(self.roots),
            "files_analyzed": self.files_analyzed,
            "rules": list(self.rules),
            "findings": [finding.to_dict() for finding in self.findings],
            "new_findings": [finding.to_dict()
                             for finding in self.new_findings],
            "baseline": {
                "path": self.baseline_path,
                "matched": [finding.to_dict() for finding in self.baselined],
                "stale": list(self.stale_baseline),
            },
            "timing": {key: round(value, 6)
                       for key, value in sorted(self.timing.items())},
            "cache": dict(self.cache_stats),
            "summary": {
                "total": len(self.findings),
                "new": len(self.new_findings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed_count,
                "per_rule": self.per_rule_counts(),
            },
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=2) + "\n")
        return path

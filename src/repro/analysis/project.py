"""Load a source tree into parsed modules, with suppression pragmas.

The unit every checker sees is a :class:`Module`: one parsed file plus the
metadata checkers keep re-deriving — the repo-relative path, the path
*relative to the repro package* (what config globs match against), the
dotted module name, and the ``# repro: allow[rule]`` pragma map.

Every module also carries the sha256 of its source bytes, which is the key
of the incremental fact cache (:mod:`repro.analysis.cache`): when a warm
run finds a cache entry for a file's hash, the file's AST is not needed for
the summary-driven rules, so parsing is *lazy* — ``Module.tree`` parses on
first access and only the checkers that genuinely walk syntax pay for it.

Pragmas
-------
A finding is suppressed when the flagged line carries a trailing pragma::

    started = time.time()  # repro: allow[determinism] -- measured on purpose

or when the line directly above is a standalone pragma comment::

    # repro: allow[determinism]
    started = time.time()

``allow[*]`` suppresses every rule on that line; multiple rules separate
with commas (``allow[determinism, stage-purity]``).

A second marker, ``# repro: hot`` on (or directly above) a ``def`` line,
declares the function perf-critical and opts it into the
``hot-path-alloc`` rule (see :mod:`repro.analysis.checkers.hotpath`).
"""

from __future__ import annotations

import ast
import hashlib
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from .findings import Finding

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")
_HOT_RE = re.compile(r"#\s*repro:\s*hot\b")


def parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the set of rule names allowed there."""
    pragmas: Dict[int, Set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            rules = {rule.strip() for rule in match.group(1).split(",")
                     if rule.strip()}
            pragmas[number] = rules
    return pragmas


def parse_hot_markers(source: str) -> Set[int]:
    """1-based line numbers carrying a ``# repro: hot`` marker."""
    return {number for number, line in enumerate(source.splitlines(), start=1)
            if _HOT_RE.search(line)}


def content_sha256(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class Module:
    """One source file plus the lookups checkers need.

    ``tree`` is parsed lazily: construct with ``tree=None`` (cache hit) and
    the first checker that touches syntax triggers the parse.  Files that
    fail to parse are never turned into modules (see :meth:`Project.load`),
    so the lazy parse can only fail if the file changed mid-run.
    """

    def __init__(self, path: Path, rel_path: str, pkg_path: str,
                 module_name: str, source: str,
                 tree: Optional[ast.Module] = None,
                 pragmas: Optional[Dict[int, Set[str]]] = None,
                 sha256: str = ""):
        self.path = path
        self.rel_path = rel_path
        self.pkg_path = pkg_path
        self.module_name = module_name
        self.source = source
        self.pragmas = parse_pragmas(source) if pragmas is None else pragmas
        self.sha256 = sha256 or content_sha256(source)
        self.hot_lines = parse_hot_markers(source)
        self._tree = tree

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    @property
    def parsed(self) -> bool:
        """Whether the AST has been materialized (cache-hit files defer it)."""
        return self._tree is not None

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()

    def allows(self, rule: str, line: int) -> bool:
        """Whether a pragma suppresses ``rule`` for a finding at ``line``."""
        for candidate in (line, line - 1):
            rules = self.pragmas.get(candidate)
            if rules is None:
                continue
            if candidate == line - 1:
                # A pragma on the previous line only counts when that line
                # is a standalone comment, not trailing someone else's code.
                text = self.lines[candidate - 1].lstrip()
                if not text.startswith("#"):
                    continue
            if "*" in rules or rule in rules:
                return True
        return False

    def is_hot(self, def_line: int) -> bool:
        """Whether a ``def`` at ``def_line`` carries a ``# repro: hot``."""
        return (def_line in self.hot_lines
                or def_line - 1 in self.hot_lines)


class Project:
    """Every parsed module of one analysis run, indexed for checkers."""

    def __init__(self, modules: Sequence[Module], roots: Sequence[Path]):
        self.modules = list(modules)
        self.roots = [Path(root) for root in roots]
        self._by_name = {module.module_name: module for module in self.modules}
        self._by_pkg_path = {module.pkg_path: module for module in self.modules}
        #: Files that failed to parse, reported as findings by the runner.
        self.errors: List[Finding] = []
        #: Lazily-built interprocedural context (see analysis.callgraph).
        self._context = None

    # ------------------------------------------------------------------
    def module(self, name: str) -> Optional[Module]:
        """Look up a module by dotted name (``repro.serving.pool``)."""
        return self._by_name.get(name)

    def by_pkg_path(self, pkg_path: str) -> Optional[Module]:
        return self._by_pkg_path.get(pkg_path)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, paths: Sequence[Path],
             repo_root: Optional[Path] = None,
             defer_parse_for: Optional[Set[str]] = None) -> "Project":
        """Parse every ``.py`` file under ``paths`` into a project.

        ``repo_root`` anchors the repo-relative paths findings report;
        it defaults to the common parent that contains a ``src`` dir, else
        the current directory.  ``defer_parse_for`` is a set of content
        sha256 hashes known to the fact cache: files matching one are
        loaded without parsing (their AST materializes lazily if a
        syntax-walking checker needs it).
        """
        paths = [Path(path).resolve() for path in paths]
        if repo_root is None:
            repo_root = _guess_repo_root(paths)
        files: List[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        errors: List[Finding] = []
        modules: List[Module] = []
        seen: Set[Path] = set()
        for file_path in files:
            if file_path in seen or "__pycache__" in file_path.parts:
                continue
            seen.add(file_path)
            rel_path = _relative_posix(file_path, repo_root)
            source = file_path.read_text(encoding="utf-8")
            sha256 = content_sha256(source)
            tree: Optional[ast.Module] = None
            if not (defer_parse_for and sha256 in defer_parse_for):
                try:
                    tree = ast.parse(source, filename=str(file_path))
                except SyntaxError as error:
                    errors.append(Finding(
                        rule="syntax", path=rel_path,
                        line=error.lineno or 0, col=error.offset or 0,
                        message=f"file does not parse: {error.msg}"))
                    continue
            modules.append(Module(
                path=file_path, rel_path=rel_path,
                pkg_path=_package_relative(rel_path),
                module_name=_dotted_name(rel_path),
                source=source, tree=tree, sha256=sha256))
        project = cls(modules, roots=paths)
        project.errors = errors
        return project


# ----------------------------------------------------------------------
# path helpers
# ----------------------------------------------------------------------
def _guess_repo_root(paths: Sequence[Path]) -> Path:
    for path in paths:
        for candidate in [path] + list(path.parents):
            if (candidate / "src" / "repro").is_dir():
                return candidate
    return Path.cwd()


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _package_relative(rel_path: str) -> str:
    """Path relative to the ``repro`` package dir; config globs match this.

    ``src/repro/serving/pool.py`` -> ``serving/pool.py``.  Files outside the
    package (tests, fixtures under a tmp dir) keep their repo-relative path,
    so fixture trees can still exercise package-targeted rules by mirroring
    the layout.
    """
    parts = rel_path.split("/")
    if "repro" in parts:
        index = parts.index("repro")
        remainder = parts[index + 1:]
        if remainder:
            return "/".join(remainder)
    return rel_path


def _dotted_name(rel_path: str) -> str:
    parts = rel_path.split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    return ".".join(parts)

"""Per-file incremental fact cache for the analyzer.

Same content-addressed idiom as the experiment RunStore: an entry is keyed
by the sha256 of the file's *bytes* (never its path or mtime), fanned out
into two-character bucket directories.  Touching a file without changing
it therefore still hits; any edit — including to pragmas, which live in
the source — misses and re-analyzes exactly that file.

An entry stores two things:

* the module's :class:`~repro.analysis.callgraph.ModuleSummary`, which is
  all the interprocedural rules (determinism, race-discipline) read — so
  on a warm run those rules never touch the AST of an unchanged file;
* the *file-local* findings of every cacheable rule (fingerprint-coverage,
  tracer-discipline, schema-discipline, hot-path-alloc), which are a pure
  function of the file's content and the analysis config.

Entries are invalidated wholesale by the analyzer version stamp and by a
fingerprint of the :class:`~repro.analysis.config.AnalysisConfig`, because
both change what a summary or a cached finding means.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from .. import schemas
from .callgraph import SUMMARY_VERSION, ModuleSummary
from .findings import Finding
from .project import Module

#: Bump (together with SUMMARY_VERSION when relevant) on any change to the
#: cached layout or to the semantics of a cacheable rule.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-analysis-cache"


class FactCache:
    """Content-addressed store of per-file summaries and local findings."""

    def __init__(self, root, config_fingerprint: str = ""):
        self.root = Path(root)
        self.config_fingerprint = config_fingerprint
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._loaded: Dict[str, Optional[Dict]] = {}

    # ------------------------------------------------------------------
    def _path(self, sha256: str) -> Path:
        return self.root / sha256[:2] / f"{sha256}.json"

    def _entry(self, sha256: str) -> Optional[Dict]:
        """Load (memoized) and validate one entry, or None."""
        if sha256 in self._loaded:
            return self._loaded[sha256]
        entry: Optional[Dict] = None
        path = self._path(sha256)
        if path.is_file():
            try:
                candidate = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                candidate = None
            if (candidate is not None
                    and candidate.get("schema") == schemas.ANALYSIS_CACHE
                    and candidate.get("cache_version") == CACHE_VERSION
                    and candidate.get("summary_version") == SUMMARY_VERSION
                    and candidate.get("config") == self.config_fingerprint
                    and candidate.get("content_sha256") == sha256):
                entry = candidate
        self._loaded[sha256] = entry
        return entry

    # ------------------------------------------------------------------
    def load_summary(self, module: Module) -> Optional[ModuleSummary]:
        entry = self._entry(module.sha256)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return ModuleSummary.from_dict(entry["summary"])

    def store_summary(self, module: Module, summary: ModuleSummary) -> None:
        entry = self._entry(module.sha256) or {
            "schema": schemas.ANALYSIS_CACHE,
            "cache_version": CACHE_VERSION,
            "summary_version": SUMMARY_VERSION,
            "config": self.config_fingerprint,
            "content_sha256": module.sha256,
            "rel_path": module.rel_path,
            "findings": {},
        }
        entry["summary"] = summary.to_dict()
        self._write(module.sha256, entry)

    # ------------------------------------------------------------------
    def load_findings(self, module: Module,
                      rule: str) -> Optional[List[Finding]]:
        """Cached file-local findings of ``rule``, or None on miss."""
        entry = self._entry(module.sha256)
        if entry is None or rule not in entry.get("findings", {}):
            return None
        return [Finding(**data) for data in entry["findings"][rule]]

    def store_findings(self, module: Module, rule: str,
                       findings: List[Finding]) -> None:
        entry = self._entry(module.sha256)
        if entry is None or "summary" not in entry:
            # Findings piggyback on the summary entry; without one the
            # file changed under us mid-run — skip rather than corrupt.
            return
        entry["findings"][rule] = [finding.to_dict() for finding in findings]
        self._write(module.sha256, entry)

    # ------------------------------------------------------------------
    def cached_hashes(self) -> set:
        """Every content hash with a valid entry on disk (for lazy loads)."""
        hashes = set()
        if not self.root.is_dir():
            return hashes
        for path in self.root.glob("??/*.json"):
            hashes.add(path.stem)
        return hashes

    def _write(self, sha256: str, entry: Dict) -> None:
        path = self._path(sha256)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
        tmp.replace(path)
        self._loaded[sha256] = entry
        self.writes += 1

    def stats(self) -> Dict:
        return {"dir": str(self.root), "hits": self.hits,
                "misses": self.misses, "writes": self.writes}

"""Repo-aware static analysis: prove invariants before runtime.

The runtime test suite asserts that serving reports are byte-identical,
that stage caches hit, that disabled tracing is free.  This package proves
the *preconditions* for those properties statically, over the AST, so a
violation fails CI at the diff that introduces it instead of as a flaky
repro three PRs later.

Rules (see ``repro/analysis/checkers/``):

- ``determinism`` — no wall clocks / global RNG in virtual-time modules
- ``stage-purity`` — stage-reachable code does no I/O outside the RunStore
- ``fingerprint-coverage`` — ``fingerprint()`` hashes every field
- ``tracer-discipline`` — tracing is zero-cost when disabled
- ``shim-drift`` — legacy shims forward every replacement keyword

Usage::

    PYTHONPATH=src python -m repro.analysis src --json report.json

Suppress a finding in source with ``# repro: allow[rule] -- reason``;
grandfather pre-existing debt in ``benchmarks/baselines/
analysis_baseline.json`` (the gate fails only on *new* findings).
"""

from .baseline import (BASELINE_SCHEMA, diff_against_baseline, load_baseline,
                       save_baseline)
from .config import DEFAULT_CONFIG, AnalysisConfig, ShimPair
from .findings import REPORT_SCHEMA, AnalysisReport, Finding
from .project import Module, Project, parse_pragmas
from .registry import (Checker, available_checkers, get_checker,
                       register_checker, run_checkers)

__all__ = [
    "AnalysisConfig", "AnalysisReport", "BASELINE_SCHEMA", "Checker",
    "DEFAULT_CONFIG", "Finding", "Module", "Project", "REPORT_SCHEMA",
    "ShimPair", "available_checkers", "diff_against_baseline",
    "get_checker", "load_baseline", "parse_pragmas", "register_checker",
    "run_checkers", "save_baseline",
]

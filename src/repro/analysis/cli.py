"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit code is 0 when every finding is baselined or suppressed, 1 when any
*new* finding exists (or a file fails to parse), 2 on usage errors.  The
JSON report (``repro.analysis/v1``) is the machine interface CI consumes;
stdout is for humans.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .baseline import apply_baseline, save_baseline
from .config import AnalysisConfig
from .findings import AnalysisReport
from .project import Project
from .registry import available_checkers, run_checkers

DEFAULT_BASELINE = "benchmarks/baselines/analysis_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("Repo-aware static analysis: determinism, stage "
                     "purity, fingerprint coverage, tracer discipline, "
                     "shim drift."))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated subset of rules to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")
    parser.add_argument(
        "--config", default=None, metavar="PATH",
        help="JSON file overriding the built-in AnalysisConfig")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=(f"baseline of grandfathered findings (default: "
              f"{DEFAULT_BASELINE} when it exists)"))
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; every finding is new")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0")
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="write the repro.analysis/v1 JSON report here")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-finding lines; print the summary only")
    return parser


def _resolve_baseline(args) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    return default if default.exists() else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for name, description in available_checkers():
            print(f"{name:22s} {description}")
        return 0

    config = (AnalysisConfig.from_file(args.config) if args.config
              else AnalysisConfig())
    rules = ([rule.strip() for rule in args.rules.split(",") if rule.strip()]
             if args.rules else None)
    try:
        project = Project.load([Path(path) for path in args.paths])
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    findings, suppressed = run_checkers(project, config, rules)

    if args.update_baseline:
        target = (Path(args.baseline) if args.baseline
                  else Path(DEFAULT_BASELINE))
        save_baseline(target, findings)
        print(f"baseline updated: {target} ({len(findings)} finding(s))")
        return 0

    baseline_path = _resolve_baseline(args)
    new, baselined, stale = apply_baseline(findings, baseline_path)

    rule_docs = [{"name": name, "description": description}
                 for name, description in available_checkers()
                 if rules is None or name in rules]
    report = AnalysisReport(
        roots=[str(path) for path in args.paths],
        files_analyzed=len(project.modules),
        rules=rule_docs,
        findings=findings,
        new_findings=new,
        baselined=baselined,
        suppressed_count=suppressed,
        baseline_path=str(baseline_path) if baseline_path else None,
        stale_baseline=stale)

    if args.json_path:
        report.save(args.json_path)

    if not args.quiet:
        for finding in new:
            print(finding.format())
    summary = (f"{len(findings)} finding(s): {len(new)} new, "
               f"{len(baselined)} baselined, {suppressed} suppressed "
               f"({report.files_analyzed} files)")
    print(summary)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} no longer match; "
              f"run --update-baseline to shrink the baseline")
    if new:
        print("new findings fail the gate; fix them, add a "
              "'# repro: allow[rule]' pragma with a reason, or (for "
              "pre-existing debt only) re-baseline", file=sys.stderr)
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())

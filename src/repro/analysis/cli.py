"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit code is 0 when every finding is baselined or suppressed, 1 when any
*new* finding exists (or a file fails to parse), 2 on usage errors.  The
JSON report (``repro.analysis/v2``) is the machine interface CI consumes;
stdout is for humans.

Warm runs are incremental: per-file fact summaries and cacheable-rule
findings are stored content-addressed under ``--cache-dir`` (default
``.repro-analysis-cache``), so re-running after editing one file only
re-analyzes that file.  ``--no-cache`` forces a cold run.

``--fix`` applies the mechanical rewrites from :mod:`repro.analysis.fix`
(pragma insertion, schema-constant rewrites, dead-shim-param removal);
with ``--dry-run`` it prints a unified diff instead of writing and always
exits 0 — preview is never a gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .baseline import apply_baseline, save_baseline
from .cache import DEFAULT_CACHE_DIR, FactCache
from .config import AnalysisConfig
from .findings import AnalysisReport
from .fix import apply_fixes
from .project import Project
from .registry import available_checkers, run_analysis

DEFAULT_BASELINE = "benchmarks/baselines/analysis_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("Repo-aware static analysis: determinism, stage "
                     "purity, fingerprint coverage, tracer discipline, "
                     "shim drift, race discipline, hot-path allocation, "
                     "schema discipline."))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated subset of rules to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")
    parser.add_argument(
        "--config", default=None, metavar="PATH",
        help="JSON file overriding the built-in AnalysisConfig")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=(f"baseline of grandfathered findings (default: "
              f"{DEFAULT_BASELINE} when it exists)"))
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; every finding is new")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0")
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="write the repro.analysis/v2 JSON report here")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-finding lines; print the summary only")
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=(f"fact-cache directory for incremental warm runs "
              f"(default: {DEFAULT_CACHE_DIR})"))
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the fact cache; re-analyze every file from scratch")
    parser.add_argument(
        "--fix", action="store_true",
        help=("apply mechanical fixes for fixable findings (pragma "
              "insertion, schema-constant rewrites, dead shim params)"))
    parser.add_argument(
        "--dry-run", action="store_true",
        help="with --fix: print the unified diff, write nothing, exit 0")
    return parser


def _resolve_baseline(args) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    return default if default.exists() else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.dry_run and not args.fix:
        print("error: --dry-run only makes sense with --fix",
              file=sys.stderr)
        return 2

    if args.list_rules:
        for name, description in available_checkers():
            print(f"{name:22s} {description}")
        return 0

    config = (AnalysisConfig.from_file(args.config) if args.config
              else AnalysisConfig())
    rules = ([rule.strip() for rule in args.rules.split(",") if rule.strip()]
             if args.rules else None)

    cache = None
    if not args.no_cache:
        cache = FactCache(Path(args.cache_dir),
                          config_fingerprint=config.fingerprint())
    try:
        defer = cache.cached_hashes() if cache is not None else frozenset()
        project = Project.load([Path(path) for path in args.paths],
                               defer_parse_for=defer)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    run = run_analysis(project, config, rules, cache=cache)
    findings = run.findings

    if args.fix:
        outcome = apply_fixes(project, findings, dry_run=args.dry_run)
        if args.dry_run:
            sys.stdout.write(outcome.combined_diff())
            print(f"would fix {len(outcome.applied)} finding(s) in "
                  f"{len(outcome.diffs)} file(s); "
                  f"{len(outcome.skipped)} not auto-fixable")
            return 0
        for line in outcome.applied:
            print(f"fixed: {line}")
        print(f"fixed {len(outcome.applied)} finding(s) in "
              f"{len(outcome.diffs)} file(s); "
              f"{len(outcome.skipped)} not auto-fixable")
        return 0 if not outcome.skipped else 1

    if args.update_baseline:
        target = (Path(args.baseline) if args.baseline
                  else Path(DEFAULT_BASELINE))
        save_baseline(target, findings)
        print(f"baseline updated: {target} ({len(findings)} finding(s))")
        return 0

    baseline_path = _resolve_baseline(args)
    new, baselined, stale = apply_baseline(findings, baseline_path)

    rule_docs = [{"name": name, "description": description}
                 for name, description in available_checkers()
                 if rules is None or name in rules]
    report = AnalysisReport(
        roots=[str(path) for path in args.paths],
        files_analyzed=len(project.modules),
        rules=rule_docs,
        findings=findings,
        new_findings=new,
        baselined=baselined,
        suppressed_count=run.suppressed,
        baseline_path=str(baseline_path) if baseline_path else None,
        stale_baseline=stale,
        timing=run.timing,
        cache_stats=run.cache_stats)

    if args.json_path:
        report.save(args.json_path)

    if not args.quiet:
        for finding in new:
            print(finding.format())
    summary = (f"{len(findings)} finding(s): {len(new)} new, "
               f"{len(baselined)} baselined, {run.suppressed} suppressed "
               f"({report.files_analyzed} files)")
    print(summary)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} no longer match; "
              f"run --update-baseline to shrink the baseline")
    if new:
        print("new findings fail the gate; fix them with --fix, add a "
              "'# repro: allow[rule]' pragma with a reason, or (for "
              "pre-existing debt only) re-baseline", file=sys.stderr)
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())

"""Static import resolution shared by the checkers.

Two capabilities, both deliberately conservative (an unresolvable name is
*not* a finding — under-approximating keeps every checker's false-positive
rate near zero, which is what lets the CI gate be hard):

* :func:`import_map` — per-module mapping from local alias to the dotted
  name it denotes (``np`` -> ``numpy``, ``perf_counter`` ->
  ``time.perf_counter``), with relative imports resolved against the
  module's own package.
* :func:`resolve_attribute` — fold an ``ast.Attribute``/``ast.Name`` chain
  into a dotted name through that map (``np.random.default_rng`` ->
  ``numpy.random.default_rng``).
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from .project import Module


def _module_package(module: Module) -> str:
    """The dotted package a module's relative imports resolve against."""
    parts = module.module_name.split(".")
    if module.path.name == "__init__.py":
        return module.module_name
    return ".".join(parts[:-1])


def _resolve_relative(module: Module, node: ast.ImportFrom) -> Optional[str]:
    if node.level == 0:
        return node.module
    package_parts = _module_package(module).split(".")
    if node.level - 1 >= len(package_parts):
        return None
    base = package_parts[:len(package_parts) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def import_map(module: Module) -> Dict[str, str]:
    """Map every imported local name to the dotted name it refers to."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom):
            source = _resolve_relative(module, node)
            if source is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{source}.{alias.name}"
    return mapping


def resolve_attribute(node: ast.AST, mapping: Dict[str, str]) -> Optional[str]:
    """Dotted name for a Name/Attribute chain, or None when dynamic."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = mapping.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


def enclosing_symbols(tree: ast.Module) -> Dict[int, str]:
    """Map every AST node id to its enclosing function/class qualname."""
    symbols: Dict[int, str] = {}

    def visit(node: ast.AST, qualname: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_qualname = qualname
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_qualname = (f"{qualname}.{child.name}"
                                  if qualname else child.name)
                symbols[id(child)] = child_qualname
            symbols.setdefault(id(child), qualname)
            visit(child, child_qualname)

    visit(tree, "")
    return {node_id: name for node_id, name in symbols.items() if name}

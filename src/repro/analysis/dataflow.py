"""Generic fact propagation over the project call graph.

Two engines, both simple worklist fixpoints, both deliberately boolean
(a function either has the fact or it does not — the rules that need
richer lattices encode them as separate facts):

* :func:`reachable_from` — forward closure over call + spawn edges.  Used
  for the thread-context lattice: seed with every function handed to an
  executor ``submit`` plus the configured worker entry points, and the
  closure is the *worker-reachable* set the ``race-discipline`` rule
  polices.
* :func:`propagate_taint` — backward fold-up: a function is tainted when
  it holds a local fact or calls a tainted function.  Each tainted
  function remembers one witness step (the callee and line that tainted
  it), so findings can print the actual call chain down to the primal
  fact — ``pump -> _flush -> time.time`` — instead of asserting taint by
  fiat.  Used by the interprocedural ``determinism`` rule.

Both engines stop at caller-supplied boundaries (e.g. clock-boundary
modules whose *job* is reading the wall clock), which is how contracts
like "profiling owns the real clock" survive whole-program propagation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Set

from .callgraph import CallGraph


def reachable_from(graph: CallGraph, seeds: Iterable[str],
                   stop: Optional[Callable[[str], bool]] = None) -> Set[str]:
    """Forward closure of ``seeds`` over call and spawn edges."""
    reached: Set[str] = set()
    frontier: List[str] = [seed for seed in seeds
                           if graph.function(seed) is not None]
    while frontier:
        func_id = frontier.pop()
        if func_id in reached or (stop is not None and stop(func_id)):
            continue
        reached.add(func_id)
        for callee, _ in graph.callees(func_id):
            if callee not in reached:
                frontier.append(callee)
        for callee, _ in graph.spawn_edges.get(func_id, []):
            if callee not in reached:
                frontier.append(callee)
    return reached


class TaintStep(NamedTuple):
    """How a function became tainted: the primal fact or a callee hop."""

    #: Human-readable fact at this step ("wall-clock 'time.time'") when the
    #: taint is local, else "" for a pure fold-up step.
    fact: str
    #: Callee function id the taint flowed from ("" for a local fact).
    via: str
    #: Line (in the tainted function's file) of the fact or call site.
    line: int


def propagate_taint(graph: CallGraph, local: Dict[str, TaintStep],
                    stop: Optional[Callable[[str], bool]] = None
                    ) -> Dict[str, TaintStep]:
    """Backward-propagate local facts up the call graph.

    ``local`` maps function ids to their primal facts.  The result maps
    every function that can reach a fact (without crossing ``stop``) to
    its first witness step.  Deterministic: functions and callees are
    processed in sorted order, so the chosen witness is stable run-to-run.
    """
    tainted: Dict[str, TaintStep] = {}
    for func_id, step in local.items():
        if graph.function(func_id) is not None and not (
                stop is not None and stop(func_id)):
            tainted[func_id] = step

    # reverse adjacency over resolved call edges
    callers: Dict[str, List[str]] = {}
    for caller in graph.edges:
        for callee, _ in graph.edges[caller]:
            callers.setdefault(callee, []).append(caller)

    frontier = sorted(tainted)
    while frontier:
        next_frontier: Set[str] = set()
        for callee in frontier:
            for caller in sorted(callers.get(callee, [])):
                if caller in tainted or (stop is not None and stop(caller)):
                    continue
                site_line = min(site.line for target, site
                                in graph.edges[caller] if target == callee)
                tainted[caller] = TaintStep(fact="", via=callee,
                                            line=site_line)
                next_frontier.add(caller)
        frontier = sorted(next_frontier)
    return tainted


def witness_chain(tainted: Dict[str, TaintStep], func_id: str,
                  limit: int = 6) -> List[str]:
    """The call chain from ``func_id`` down to its primal fact.

    Returns short function names (last two id components) ending with the
    primal fact string, e.g. ``['engine.pump', 'stats._flush',
    "wall-clock 'time.time'"]``.
    """
    chain: List[str] = []
    current: Optional[str] = func_id
    for _ in range(limit):
        step = tainted.get(current or "")
        if step is None:
            break
        if step.fact:
            chain.append(step.fact)
            break
        chain.append(".".join(step.via.split(".")[-2:]))
        current = step.via
    return chain

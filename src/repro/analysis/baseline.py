"""Baseline: the committed set of grandfathered findings.

The gate fails on *new* findings only.  Pre-existing ones are recorded in a
committed JSON baseline and matched by :meth:`Finding.identity` — rule,
path, symbol and message, but **not** line/column — so unrelated edits
that move code never churn the baseline.  Matching is multiset-style: two
identical findings in one function need two baseline entries.

Stale entries (baselined findings that no longer occur) are reported so
the grandfathered set only ever shrinks; ``--update-baseline`` rewrites
the file from the current findings, which is also how the set shrinks to
zero over time.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .. import schemas
from .findings import Finding

BASELINE_SCHEMA = schemas.ANALYSIS_BASELINE


def load_baseline(path) -> List[Finding]:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    schema = data.get("schema")
    if schema != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema '{BASELINE_SCHEMA}', got '{schema}'")
    return [Finding.from_dict(entry) for entry in data.get("findings", [])]


def save_baseline(path, findings: Sequence[Finding]) -> Path:
    """Write ``findings`` as the new baseline (sorted, lines included for
    human orientation only — matching ignores them)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ordered = sorted(findings,
                     key=lambda f: (f.path, f.rule, f.symbol or "", f.message))
    document = {
        "schema": BASELINE_SCHEMA,
        "findings": [finding.to_dict() for finding in ordered],
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def diff_against_baseline(
        findings: Sequence[Finding], baseline: Sequence[Finding]
) -> Tuple[List[Finding], List[Finding], List[Dict]]:
    """Split ``findings`` into (new, baselined); also return stale entries.

    Multiset semantics on :meth:`Finding.identity`: each baseline entry
    absolves at most one current finding.
    """
    budget = Counter(entry.identity() for entry in baseline)
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        identity = finding.identity()
        if budget.get(identity, 0) > 0:
            budget[identity] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale: List[Dict] = []
    remaining = Counter(budget)
    for entry in baseline:
        identity = entry.identity()
        if remaining.get(identity, 0) > 0:
            remaining[identity] -= 1
            stale.append(entry.to_dict())
    return new, matched, stale


def apply_baseline(findings: Sequence[Finding],
                   baseline_path: Optional[Path]
                   ) -> Tuple[List[Finding], List[Finding], List[Dict]]:
    """Convenience wrapper: no baseline path means everything is new."""
    if baseline_path is None:
        return list(findings), [], []
    baseline = load_baseline(baseline_path)
    return diff_against_baseline(findings, baseline)

"""Pre-training and checkpoint caching for the named diffusion models."""

from __future__ import annotations

import os
import threading
from dataclasses import astuple, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.atomic import atomic_write

from ..data import PromptDataset, rooms, shapes10
from ..diffusion.training import train_autoencoder, train_denoiser
from ..models import DiffusionModel, build_model, get_model_spec

DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_ZOO_CACHE", Path(__file__).resolve().parents[3] / ".zoo_cache"))


@dataclass
class PretrainConfig:
    """How much training each zoo checkpoint receives.

    The defaults are sized so that a checkpoint trains in seconds while still
    moving the weights well away from their initialization (so that PTQ is
    applied to a genuinely "trained" distribution of weights/activations).
    """

    dataset_size: int = 96
    autoencoder_steps: int = 40
    denoiser_steps: int = 80
    batch_size: int = 8
    learning_rate: float = 2e-3
    seed: int = 0


def zoo_cache_path(name: str, config: PretrainConfig,
                   cache_dir: Optional[Path] = None) -> Path:
    """Deterministic cache file path for a model/config pair."""
    cache_dir = Path(cache_dir or DEFAULT_CACHE_DIR)
    tag = (f"{name}_ds{config.dataset_size}_ae{config.autoencoder_steps}"
           f"_dn{config.denoiser_steps}_bs{config.batch_size}_seed{config.seed}")
    return cache_dir / f"{tag}.npz"


def _training_data(name: str, config: PretrainConfig):
    """Return (images, prompts-or-None) for a model's training run."""
    spec = get_model_spec(name)
    if spec.task == "text-to-image":
        dataset = PromptDataset(config.dataset_size, image_size=spec.image_size,
                                seed=config.seed)
        return dataset.reference_images(), dataset.prompts
    if name == "ddim-cifar10":
        images, _ = shapes10(config.dataset_size, size=spec.image_size,
                             seed=config.seed)
        return images, None
    return rooms(config.dataset_size, size=spec.image_size, seed=config.seed), None


def pretrain(name: str, config: Optional[PretrainConfig] = None) -> DiffusionModel:
    """Train a fresh model of the given name and return it (no caching)."""
    config = config or PretrainConfig()
    spec = get_model_spec(name)
    model = build_model(name, rng=np.random.default_rng(spec.seed))
    images, prompts = _training_data(name, config)
    if model.autoencoder is not None:
        train_autoencoder(model, images, num_steps=config.autoencoder_steps,
                          batch_size=config.batch_size, lr=config.learning_rate,
                          seed=config.seed)
    train_denoiser(model, images, prompts=prompts, num_steps=config.denoiser_steps,
                   batch_size=config.batch_size, lr=config.learning_rate,
                   seed=config.seed)
    model.eval()
    return model


#: In-process checkpoint memo: repeated ``load_pretrained`` calls for the
#: same (name, config, cache_dir) return the already-loaded model object
#: instead of re-reading the .npz (or re-training).  The serving subsystem's
#: variant pool builds several quantized variants of one checkpoint, so this
#: turns N disk loads into one.
_LOADED_MODELS: Dict[Tuple, DiffusionModel] = {}

#: Guards _LOADED_MODELS: replica fleets warm their variant pools from
#: worker threads, and dict check-then-set is not atomic under free
#: threading.  Loads happen outside the lock (training/np.load can take
#: seconds); only the memo write is serialized, and a benign duplicate
#: load just replaces an identical entry.
_MEMO_LOCK = threading.Lock()


def _memo_key(name: str, config: PretrainConfig,
              cache_dir: Optional[Path]) -> Tuple:
    resolved = Path(cache_dir or DEFAULT_CACHE_DIR).resolve()
    return (name, astuple(config), str(resolved))


def clear_model_memo() -> None:
    """Drop every memoized checkpoint (mainly for tests)."""
    with _MEMO_LOCK:
        _LOADED_MODELS.clear()


def load_pretrained(name: str, config: Optional[PretrainConfig] = None,
                    cache_dir: Optional[Path] = None,
                    use_cache: bool = True,
                    refresh: bool = False) -> DiffusionModel:
    """Load (or train and cache) the pre-trained checkpoint for ``name``.

    The returned model is memoized in-process per ``(name, config,
    cache_dir)``: repeated calls hand back the *same* model object.  Callers
    that mutate a checkpoint (rather than quantizing a clone) should pass
    ``refresh=True``, which bypasses the memo, re-reads the disk cache (or
    re-trains) and replaces the memoized entry with the fresh model.
    """
    config = config or PretrainConfig()
    key = _memo_key(name, config, cache_dir)
    if use_cache and not refresh:
        with _MEMO_LOCK:
            cached = _LOADED_MODELS.get(key)
        if cached is not None:
            return cached
    path = zoo_cache_path(name, config, cache_dir)
    spec = get_model_spec(name)
    if use_cache and path.exists():
        model = build_model(name, rng=np.random.default_rng(spec.seed))
        with np.load(path) as archive:
            model.load_state_dict({key: archive[key] for key in archive.files})
        model.eval()
        with _MEMO_LOCK:
            _LOADED_MODELS[key] = model
        return model
    model = pretrain(name, config)
    if use_cache:
        save_checkpoint_atomic(path, model.state_dict())
        with _MEMO_LOCK:
            _LOADED_MODELS[key] = model
    return model


def save_checkpoint_atomic(path: Path, state: Dict[str, np.ndarray]) -> Path:
    """Write a checkpoint archive atomically (temp file + ``os.replace``).

    Parallel experiment runners and serving processes share the zoo cache;
    a reader must never see a partially-written ``.npz``
    (:func:`repro.core.atomic.atomic_write`).
    """
    return atomic_write(path, lambda handle: np.savez_compressed(handle, **state))

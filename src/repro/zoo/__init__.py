"""Model zoo: deterministic "pre-trained" checkpoints for the named models.

The paper quantizes published full-precision checkpoints (DDIM/CIFAR-10,
LDM/LSUN-Bedrooms, Stable Diffusion, SDXL).  Offline we produce equivalents
by training each scaled-down model for a short, fully deterministic run on
the synthetic datasets, then caching the resulting state dict on disk so
repeated experiments (and the benchmark harness) reuse the same weights.
"""

from .registry import (
    DEFAULT_CACHE_DIR,
    PretrainConfig,
    clear_model_memo,
    load_pretrained,
    pretrain,
    zoo_cache_path,
)

__all__ = [
    "load_pretrained",
    "pretrain",
    "PretrainConfig",
    "zoo_cache_path",
    "DEFAULT_CACHE_DIR",
    "clear_model_memo",
]
